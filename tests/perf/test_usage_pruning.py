"""Regression: ClientRecord.usage occupancy math is unchanged by pruning.

The fast path maintains a running sum of interval durations and prunes
expired intervals once per clock advance; the reference path re-sums the
whole deque on every read. Both must agree with a brute-force evaluation
over the *unpruned* interval list at every probe point.
"""

import pytest

from repro.gpu.backend import ClientRecord
from repro.perf import fastpath

WINDOW = 10.0

INTERVALS = [
    (0.0, 1.0),
    (2.0, 3.5),
    (5.0, 5.25),
    (8.0, 9.0),
    (12.0, 13.0),
    (13.0, 14.5),  # back-to-back with the previous interval
]


def brute_force(intervals, hold_start, now, window):
    horizon = now - window
    held = sum(
        min(end, now) - max(start, horizon)
        for start, end in intervals
        if end > horizon
    )
    if hold_start is not None:
        held += now - max(hold_start, horizon)
    return min(1.0, held / window)


def _push_elapsed(rec, pushed, now):
    """Push the intervals that have closed by *now* (like the backend:
    an interval is recorded only once the hold ends)."""
    for start, end in INTERVALS:
        if end <= now and (start, end) not in pushed:
            rec.push_interval(start, end)
            pushed.append((start, end))


@pytest.mark.parametrize("slow", [False, True], ids=["fast", "reference"])
def test_usage_matches_brute_force_at_every_probe(slow):
    rec = ClientRecord("c0", request=0.3, limit=0.6)
    pushed = []
    with fastpath.force(slow):
        # Monotonically advancing clock, probing straddled windows, fully
        # expired prefixes, and repeated reads at the same `now` (the fast
        # path prunes only once per advance).
        for now in (1.0, 3.0, 3.0, 4.0, 6.0, 9.5, 13.0, 14.5, 20.0, 23.9, 40.0):
            _push_elapsed(rec, pushed, now)
            expected = brute_force(pushed, None, now, WINDOW)
            assert rec.usage(now, WINDOW) == pytest.approx(expected, abs=1e-12)


def test_usage_with_open_hold_matches_brute_force():
    for slow in (False, True):
        rec = ClientRecord("c0", request=0.3, limit=0.6)
        for interval in INTERVALS:
            rec.push_interval(*interval)
        rec.hold_start = 15.0  # token currently held
        with fastpath.force(slow):
            for now in (15.0, 16.0, 24.0, 30.0):
                expected = brute_force(INTERVALS, 15.0, now, WINDOW)
                assert rec.usage(now, WINDOW) == pytest.approx(expected, abs=1e-12)


def test_fast_path_actually_prunes_expired_intervals():
    rec = ClientRecord("c0", request=0.3, limit=0.6)
    for interval in INTERVALS:
        rec.push_interval(*interval)
    with fastpath.force(False):
        rec.usage(40.0, WINDOW)  # horizon=30: every closed interval expired
    assert not rec.intervals
    assert rec._dur_sum == 0.0  # no float residue left behind
    # And an empty record still reads 0.
    with fastpath.force(False):
        assert rec.usage(41.0, WINDOW) == 0.0


def test_zero_window_is_zero_in_both_modes():
    rec = ClientRecord("c0", request=0.3, limit=0.6)
    for interval in INTERVALS:
        rec.push_interval(*interval)
    for slow in (False, True):
        with fastpath.force(slow):
            assert rec.usage(20.0, 0.0) == 0.0

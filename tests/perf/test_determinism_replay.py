"""Identical-seed replay: fast paths vs ``REPRO_SLOW_KERNEL`` reference.

Every optimization behind :mod:`repro.perf.fastpath` claims to be
behavior-preserving. These tests make that claim executable instead of a
code-review promise: the chaos and failover capstone scenarios are
replayed at the same seed in both modes with full observability
attached, and every artifact must match byte for byte —

* the scenario summary (placements, recovery rates, chaos log,
  promotions),
* the complete ObsHub snapshot (spans, Kubernetes-style events, the
  scheduler decision log, counters, time series — i.e. the observable
  event order), and
* the rendered Perfetto/Chrome trace.

A mismatch here means a "fast path" changed simulation behavior and is
always a bug, regardless of how much faster it is.
"""

import json

import pytest

from repro.obs.tracing import chrome_trace_json
from repro.perf import fastpath
from repro.perf.scenarios import chaos, failover


def _dump(value):
    return json.dumps(value, sort_keys=True, default=str)


def _behavior(obs):
    """The behavioral part of an ObsHub snapshot.

    Everything in the snapshot is simulated behavior and must replay
    byte-identically — except the ``repro_sim_events_total`` series,
    which samples ``env.events_processed``: a meter of how much work the
    *kernel* did, not of what the cluster did. The fast paths dispatch
    fewer events for the same behavior by design (coalesced wakes,
    tombstoned timers never reach the queue head), so that one series is
    the single permitted difference between modes.
    """
    out = dict(obs)
    out["series"] = {
        name: ts
        for name, ts in obs["series"].items()
        if name != "repro_sim_events_total"
    }
    return out


def _replay(scenario, label):
    """Run *scenario* once per mode, reference first (fresh state each)."""
    with fastpath.force(True):
        slow = scenario(obs_label=label)
    with fastpath.force(False):
        fast = scenario(obs_label=label)
    return fast, slow


@pytest.mark.parametrize("scenario", [chaos, failover], ids=lambda f: f.__name__)
def test_replay_is_byte_identical(scenario):
    fast, slow = _replay(scenario, f"replay-{scenario.__name__}")

    # Same virtual end time and the same simulated outcome, byte for byte.
    assert fast["sim_time"] == slow["sim_time"]
    assert _dump(fast["summary"]) == _dump(slow["summary"])

    # The observability snapshot is the event-order witness: spans,
    # Events, decision log, counters and sampled series all embed virtual
    # timestamps and sequence, so coalescing or reordering anything
    # observable would show up here.
    assert fast["obs"] is not None and slow["obs"] is not None
    assert _dump(_behavior(fast["obs"])) == _dump(_behavior(slow["obs"]))

    # And the artifact users actually open: the Perfetto/Chrome trace.
    assert chrome_trace_json(fast["obs"]["spans"]) == chrome_trace_json(
        slow["obs"]["spans"]
    )


def test_fast_mode_replay_is_stable():
    """Two identical-seed fast runs agree with each other too.

    Guards against nondeterminism *introduced by* a fast path (iteration
    over an unordered container, id()-keyed ordering leaks, ...), which a
    fast-vs-slow comparison alone could miss if it were flaky.
    """
    with fastpath.force(False):
        first = chaos(obs_label="replay-stability")
    with fastpath.force(False):
        second = chaos(obs_label="replay-stability")
    assert _dump(first["summary"]) == _dump(second["summary"])
    assert _dump(first["obs"]) == _dump(second["obs"])
    assert first["events"] == second["events"]

"""The hand-written fast clones must match the deepcopy reference path.

``apiserver._clone`` prefers an object's ``clone()`` method; on the fast
path Pod/Node/SharePod/Lease implement it with explicit field copies
instead of ``copy.deepcopy``. These tests pin the contract: identical
field values, deep independence of every mutable field, and the one
deliberate exception — the workload factory is shared by reference in
both modes (deepcopy nulls it out around the copy for the same reason).
"""

import pytest

from repro.cluster.leaderelection import Lease, LeaseSpec
from repro.cluster.objects import (
    ContainerSpec,
    Node,
    NodeStatus,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    PodStatus,
)
from repro.core.sharepod import SharePod, SharePodSpec, SharePodStatus
from repro.perf import fastpath


def _workload(ctx):  # shared-by-reference sentinel
    yield None


def make_pod():
    return Pod(
        metadata=ObjectMeta(
            name="web-0",
            namespace="prod",
            labels={"app": "web"},
            annotations={"note": "x"},
            owner_references=["rs/web"],
        ),
        spec=PodSpec(
            containers=[
                ContainerSpec(name="main", image="img", requests={"cpu": 1.0})
            ],
            node_name="node0",
            node_selector={"zone": "a"},
            workload=_workload,
        ),
        status=PodStatus(
            phase=PodPhase.RUNNING,
            message="ok",
            start_time=1.5,
            container_env={"NVIDIA_VISIBLE_DEVICES": "GPU-0"},
        ),
    )


def make_node():
    return Node(
        metadata=ObjectMeta(name="node0", labels={"zone": "a"}),
        status=NodeStatus(
            capacity={"cpu": 8.0},
            allocatable={"cpu": 6.0},
            ready=True,
            last_heartbeat=12.0,
            unhealthy_gpus=["GPU-7"],
        ),
    )


def make_sharepod():
    return SharePod(
        metadata=ObjectMeta(name="sp0", labels={"tier": "inference"}),
        spec=SharePodSpec(
            pod_spec=PodSpec(workload=_workload),
            gpu_request=0.3,
            gpu_limit=0.6,
            gpu_mem=0.25,
            gpu_id="vgpu-1",
            node_name="node0",
            sched_affinity="blue",
            restart_policy="reschedule",
        ),
        status=SharePodStatus(
            phase=PodPhase.RUNNING,
            gpu_uuid="GPU-1",
            pod_name="vgpu-holder-1",
            start_time=3.0,
            scheduled_time=2.0,
        ),
    )


def make_lease():
    return Lease(
        metadata=ObjectMeta(name="kubeshare-sched", namespace="kube-system"),
        spec=LeaseSpec(
            holder="replica-0",
            lease_duration=3.0,
            acquire_time=1.0,
            renew_time=9.0,
            epoch=4,
        ),
    )


FACTORIES = [make_pod, make_node, make_sharepod, make_lease]


@pytest.mark.parametrize("make", FACTORIES, ids=lambda f: f.__name__[5:])
def test_fast_clone_equals_deepcopy_clone(make):
    obj = make()
    with fastpath.force(False):
        fast = obj.clone()
    with fastpath.force(True):
        slow = obj.clone()
    # Dataclass repr covers every field recursively, so byte-equal reprs
    # mean field-equal objects (uid included: cloning must never draw a
    # fresh one).
    assert repr(fast) == repr(slow) == repr(obj)
    assert fast is not obj and slow is not obj


@pytest.mark.parametrize("make", FACTORIES, ids=lambda f: f.__name__[5:])
def test_fast_clone_is_deeply_independent(make):
    obj = make()
    with fastpath.force(False):
        dup = obj.clone()
    assert dup.metadata is not obj.metadata
    dup.metadata.labels["mutated"] = "yes"
    dup.metadata.owner_references.append("x")
    assert "mutated" not in obj.metadata.labels
    assert "x" not in obj.metadata.owner_references
    if hasattr(dup, "status"):
        assert dup.status is not obj.status
    if hasattr(dup, "spec"):
        assert dup.spec is not obj.spec


def test_workload_factory_is_shared_by_reference_in_both_modes():
    pod, sp = make_pod(), make_sharepod()
    with fastpath.force(False):
        assert pod.clone().spec.workload is _workload
        assert sp.clone().spec.pod_spec.workload is _workload
    with fastpath.force(True):
        assert pod.clone().spec.workload is _workload
        assert sp.clone().spec.pod_spec.workload is _workload
        # deepcopy nulls the factory only around the copy — the original
        # must get it back even on the reference path.
        assert pod.spec.workload is _workload
        assert sp.spec.pod_spec.workload is _workload

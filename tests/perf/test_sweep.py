"""Tests for the parallel sweep runner (``python -m repro.perf sweep``).

The merged report's byte-determinism is the contract CI's sweep smoke
job asserts with real worker processes; here the same properties are
checked in-process (processes=1) so the unit suite stays fast, plus the
seed-spec parser and the report's shape.
"""

import json

import pytest

from repro.perf.sweep import (
    parse_seed_list,
    run_seed,
    run_sweep,
    write_sweep_report,
)


class TestParseSeedList:
    def test_single_and_commas(self):
        assert parse_seed_list("5") == [5]
        assert parse_seed_list("3,1,2") == [1, 2, 3]

    def test_ranges(self):
        assert parse_seed_list("1-4") == [1, 2, 3, 4]
        assert parse_seed_list("1,5-7,3") == [1, 3, 5, 6, 7]

    def test_overlaps_deduplicate(self):
        assert parse_seed_list("1-3,2-4") == [1, 2, 3, 4]

    def test_negative_single_seed(self):
        assert parse_seed_list("-1") == [-1]

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            parse_seed_list("7-3")
        with pytest.raises(ValueError):
            parse_seed_list("")
        with pytest.raises(ValueError):
            parse_seed_list("x")


class TestRunSweep:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_sweep("nope", [1], log=lambda *_: None)

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("chaos", [1, 1], log=lambda *_: None)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("chaos", [], log=lambda *_: None)

    def test_report_shape_and_seed_order(self):
        report = run_sweep("chaos", [13, 11], log=lambda *_: None)
        assert report["suite"] == "repro-perf-sweep"
        assert report["scenario"] == "chaos"
        assert report["kernel"] == "fast"
        assert report["seeds"] == [11, 13]
        assert [r["seed"] for r in report["runs"]] == [11, 13]
        for run in report["runs"]:
            assert set(run) == {"scenario", "seed", "events", "sim_time", "summary"}

    def test_seed_actually_varies_the_run(self):
        # The chaos engine's fault RNG is seed-driven: a sweep must
        # explore different crash victims, not re-run the default. Any
        # one pair can collide (4 nodes), so check a small range.
        runs = run_sweep("chaos", list(range(11, 17)), log=lambda *_: None)["runs"]
        summaries = {json.dumps(r["summary"], sort_keys=True) for r in runs}
        assert len(summaries) > 1

    def test_merged_report_bytes_deterministic(self, tmp_path):
        paths = []
        for i in range(2):
            report = run_sweep("chaos", [11, 12], log=lambda *_: None)
            paths.append(write_sweep_report(report, str(tmp_path / f"s{i}.json")))
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b

    def test_no_host_timings_in_report(self, tmp_path):
        report = run_sweep("chaos", [11], log=lambda *_: None)
        text = open(
            write_sweep_report(report, str(tmp_path / "s.json"))
        ).read()
        assert "wall" not in text and "events_per_sec" not in text

    def test_reference_kernel_matches_fast_summaries(self):
        # The sweep inherits the replay contract: per-seed summaries are
        # kernel-mode independent even though event counts are not.
        fast = run_sweep("chaos", [11], log=lambda *_: None)
        slow = run_sweep("chaos", [11], slow=True, log=lambda *_: None)
        assert slow["kernel"] == "reference"

        def canon(r):
            return json.dumps(r["runs"][0]["summary"], sort_keys=True)

        assert canon(fast) == canon(slow)


class TestRunSeed:
    def test_worker_entry_point_is_self_contained(self):
        out = run_seed(("chaos", 11, False))
        assert out["scenario"] == "chaos"
        assert out["seed"] == 11
        assert out["events"] > 0

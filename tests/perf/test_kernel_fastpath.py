"""Unit tests for the sim-kernel fast paths: tombstones, the shared stop
sentinel, and condition detach."""

import pytest

from repro.perf import fastpath
from repro.sim import Environment
from repro.sim.environment import _STOP, EmptySchedule


def test_cancelled_timer_is_skipped_without_dispatch(env):
    fired = []
    stale = env.timeout(5.0, value="stale")
    live = env.timeout(10.0, value="live")
    stale.callbacks.append(lambda ev: fired.append(ev.value))
    live.callbacks.append(lambda ev: fired.append(ev.value))

    stale.cancel()
    assert stale.cancelled
    env.run()

    assert fired == ["live"]
    assert env.now == 10.0
    # The tombstone was discarded, never dispatched: its callbacks were
    # dropped and it did not count as a processed event.
    assert stale.callbacks is None
    assert env.events_processed == 1


def test_peek_and_step_agree_on_tombstones(env):
    a = env.timeout(1.0)
    b = env.timeout(2.0)
    c = env.timeout(3.0)
    a.cancel()
    b.cancel()

    # peek() must look through tombstoned heads to the first live event...
    assert env.peek() == 3.0
    # ...and step() must then dispatch exactly that event at that time.
    env.step()
    assert env.now == 3.0
    assert c.callbacks is None
    with pytest.raises(EmptySchedule):
        env.step()


def test_cancelling_a_processed_event_is_a_noop(env):
    t = env.timeout(1.0, value=42)
    env.run()
    assert t.callbacks is None
    t.cancel()
    assert not t.cancelled
    assert t.value == 42


def test_run_until_float_pushes_the_shared_sentinel(env):
    seen = []

    def probe():
        yield env.timeout(1.0)
        seen.extend(entry[3] for entry in env._queue)

    env.process(probe())
    env.run(until=5.0)
    assert env.now == 5.0
    # run(until=<float>) reuses the module-level singleton instead of
    # allocating a fresh stop event per call.
    assert any(entry is _STOP for entry in seen)


def test_stop_sentinel_is_safe_to_share_across_environments():
    e1, e2 = Environment(), Environment()
    e1.run(until=3.0)
    e2.run(until=4.0)
    e1.run(until=6.0)  # reused in the same environment too
    assert (e1.now, e2.now) == (6.0, 4.0)


def test_anyof_detaches_from_unfired_subevents_on_fast_path():
    with fastpath.force(False):
        env = Environment()
        slow_timer = env.timeout(100.0)
        cond = env.any_of([env.timeout(1.0), slow_timer])
        env.run(until=2.0)
        assert cond.callbacks is None  # condition fired and was processed
        # The fast path unsubscribes _check from the still-pending timer
        # so the dead condition is not pinned until t=100.
        assert cond._check not in slow_timer.callbacks


def test_anyof_leaves_subevents_attached_in_reference_mode():
    with fastpath.force(True):
        env = Environment()
        slow_timer = env.timeout(100.0)
        cond = env.any_of([env.timeout(1.0), slow_timer])
        env.run(until=2.0)
        assert cond.callbacks is None
        # Historical behavior: the check stays attached (and is a no-op
        # when the timer eventually fires).
        assert cond._check in slow_timer.callbacks
        env.run()
        assert env.now == 100.0


def test_allof_detach_does_not_lose_failures():
    """Detaching must not defuse anything: an AllOf still fails fast."""
    with fastpath.force(False):
        env = Environment()
        late = env.timeout(50.0)
        failing = env.event()
        cond = env.all_of([failing, late])
        caught = []

        def waiter():
            try:
                yield cond
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(waiter())
        failing.fail(RuntimeError("boom"))
        env.run(until=1.0)
        assert caught == ["boom"]
        assert cond._check not in late.callbacks

"""Behavioural verification of every Table 1 feature flag.

The feature matrix printed by ``repro.experiments.table1`` is backed by
behaviour, not assertion: each test here demonstrates the capability (or
its absence) through the live system.
"""

import pytest

from repro.baselines import (
    AliyunGPUShare,
    GaiaGPU,
    GPURequirements,
    KubeShareSystem,
)
from repro.cluster.objects import GPU_RESOURCE, PodPhase
from repro.experiments.table1 import feature_matrix
from repro.sim import Environment
from repro.workloads.jobs import InferenceJob


def build(system_cls, nodes=1, gpus_per_node=2):
    env = Environment()
    cluster = system_cls.make_cluster(env, nodes=nodes, gpus_per_node=gpus_per_node)
    system = system_cls(cluster)
    cluster.start()
    system.start()
    return env, cluster, system


class TestMatrixMatchesPaper:
    """The declared matrix equals the paper's Table 1."""

    PAPER = {
        "multi_gpu_per_node": {
            "Deepomatic": False, "Aliyun": True, "GaiaGPU": True, "KubeShare": True,
        },
        "fine_grained_allocation": {
            "Deepomatic": "limited", "Aliyun": "limited",
            "GaiaGPU": "limited", "KubeShare": True,
        },
        "memory_isolation": {
            "Deepomatic": False, "Aliyun": True, "GaiaGPU": True, "KubeShare": True,
        },
        "compute_isolation": {
            "Deepomatic": False, "Aliyun": False, "GaiaGPU": True, "KubeShare": True,
        },
        "first_class_identity": {
            "Deepomatic": False, "Aliyun": False, "GaiaGPU": False, "KubeShare": True,
        },
        "locality_constraints": {
            "Deepomatic": False, "Aliyun": False, "GaiaGPU": False, "KubeShare": True,
        },
        "coexists_with_kube_scheduler": {
            "Deepomatic": False, "Aliyun": False, "GaiaGPU": False, "KubeShare": True,
        },
    }

    @pytest.mark.parametrize("feature", sorted(PAPER))
    def test_row(self, feature):
        assert feature_matrix()[feature] == self.PAPER[feature]


class TestComputeIsolationBehaviour:
    """Aliyun really lets co-located jobs interfere; GaiaGPU/KubeShare don't."""

    def run_pair(self, system_cls):
        env, cluster, system = build(system_cls, nodes=1, gpus_per_node=1)
        for i in range(2):
            # each wants 70% of the GPU but only requests/reserves 30%
            job = InferenceJob.from_demand(f"j{i}", demand=0.7, duration=10.0)
            system.submit(
                f"j{i}",
                job.workload(),
                GPURequirements(request=0.3, limit=1.0, mem=0.3),
            )
        done = env.process(system.wait_all())
        env.run(until=done)
        return [s.duration for s in system.stats()]

    def test_aliyun_interference(self):
        durations = self.run_pair(AliyunGPUShare)
        # no throttling: both contend (1.4 appetite on 1.0 + contention)
        assert min(durations) > 12.0

    def test_kubeshare_guarantees_requests(self):
        durations = self.run_pair(KubeShareSystem)
        # elastic shares give each 0.5: 7.0 work / 0.5 = 14 s
        assert max(durations) == pytest.approx(14.0, rel=0.1)


class TestFirstClassIdentity:
    def test_kubeshare_accepts_explicit_gpuid(self):
        env, cluster, system = build(KubeShareSystem)
        ks = system.kubeshare
        system.submit("first", None, GPURequirements(0.3, 0.6, 0.3))
        env.run(until=8)
        gpuid = ks.get("first").spec.gpu_id
        sp = ks.make_sharepod(
            "second", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.3,
            workload=None, gpu_id=gpuid,
        )
        ks.submit(sp)
        env.run(until=16)
        assert ks.get("second").status.gpu_uuid == ks.get("first").status.gpu_uuid

    def test_extenders_expose_no_device_identity_to_users(self):
        """Extender systems choose the device internally; nothing in their
        submit interface can name a GPU."""
        import inspect

        for cls in (AliyunGPUShare, GaiaGPU):
            params = inspect.signature(cls.submit).parameters
            assert "gpu_id" not in params


class TestLocalityConstraints:
    def test_kubeshare_anti_affinity_separates(self):
        env, cluster, system = build(KubeShareSystem, nodes=1, gpus_per_node=2)
        for i in range(2):
            system.submit(
                f"j{i}", None, GPURequirements(0.3, 0.6, 0.2), anti_affinity="apart"
            )
        env.run(until=10)
        ks = system.kubeshare
        uuids = {ks.get(f"j{i}").status.gpu_uuid for i in range(2)}
        assert len(uuids) == 2

    def test_kubeshare_affinity_packs(self):
        env, cluster, system = build(KubeShareSystem, nodes=1, gpus_per_node=2)
        for i in range(2):
            system.submit(
                f"j{i}", None, GPURequirements(0.3, 0.6, 0.2), affinity="together"
            )
        env.run(until=10)
        ks = system.kubeshare
        uuids = {ks.get(f"j{i}").status.gpu_uuid for i in range(2)}
        assert len(uuids) == 1

    def test_kubeshare_exclusion_keeps_strangers_off(self):
        env, cluster, system = build(KubeShareSystem, nodes=1, gpus_per_node=2)
        system.submit(
            "tenant", None, GPURequirements(0.2, 0.5, 0.2), exclusion="teamA"
        )
        system.submit("stranger", None, GPURequirements(0.2, 0.5, 0.2))
        env.run(until=10)
        ks = system.kubeshare
        assert (
            ks.get("tenant").status.gpu_uuid != ks.get("stranger").status.gpu_uuid
        )

    def test_baselines_ignore_locality(self):
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=2)
        for i in range(2):
            system.submit(
                f"j{i}", None, GPURequirements(0.3, 0.6, 0.3), anti_affinity="apart"
            )
        env.run(until=10)
        devices = {
            cluster.api.get("Pod", f"j{i}").status.container_env[
                "NVIDIA_VISIBLE_DEVICES"
            ]
            for i in range(2)
        }
        assert len(devices) == 1  # bin-packed together despite the label


class TestCoexistence:
    def test_kubeshare_coexists_with_native_gpu_pods(self):
        """§4.6: a native pod can claim a whole GPU through kube-scheduler
        while KubeShare shares the others."""
        from repro.cluster.objects import ContainerSpec, ObjectMeta, Pod, PodSpec

        env, cluster, system = build(KubeShareSystem, nodes=1, gpus_per_node=2)
        native = Pod(
            metadata=ObjectMeta(name="native"),
            spec=PodSpec(
                containers=[ContainerSpec(requests={"cpu": 1, GPU_RESOURCE: 1})],
            ),
        )
        cluster.submit(native)
        system.submit("shared", None, GPURequirements(0.3, 0.6, 0.3))
        env.run(until=10)
        assert cluster.api.get("Pod", "native").status.phase is PodPhase.RUNNING
        assert system.kubeshare.get("shared").status.phase is PodPhase.RUNNING
        native_dev = cluster.api.get("Pod", "native").status.container_env[
            "NVIDIA_VISIBLE_DEVICES"
        ]
        assert system.kubeshare.get("shared").status.gpu_uuid != native_dev

    def test_extender_redefines_gpu_resource_cluster_wide(self):
        """An extender cluster advertises sliced units, so a native
        whole-GPU pod's request means something different (1 unit = 1%)."""
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=1)
        caps = cluster.api.nodes()[0].status.capacity
        assert caps[GPU_RESOURCE] == 100.0  # not 1.0: nvidia.com/gpu hijacked

"""Unit/integration tests for the baseline GPU-sharing systems."""

import pytest

from repro.baselines import (
    AliyunGPUShare,
    DeepomaticSharedPlugin,
    GaiaGPU,
    GPURequirements,
    KubeShareSystem,
    NativeKubernetes,
)
from repro.cluster.objects import GPU_RESOURCE, PodPhase
from repro.sim import Environment
from repro.workloads.jobs import InferenceJob

ALL_SYSTEMS = [
    NativeKubernetes,
    DeepomaticSharedPlugin,
    AliyunGPUShare,
    GaiaGPU,
    KubeShareSystem,
]


def build(system_cls, nodes=2, gpus_per_node=2):
    env = Environment()
    cluster = system_cls.make_cluster(env, nodes=nodes, gpus_per_node=gpus_per_node)
    system = system_cls(cluster)
    cluster.start()
    system.start()
    return env, cluster, system


def reqs(request=0.3, limit=0.6, mem=0.25):
    return GPURequirements(request=request, limit=limit, mem=mem)


class TestRequirementsValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            GPURequirements(request=0.7, limit=0.5, mem=0.2)

    def test_mem_range(self):
        with pytest.raises(ValueError):
            GPURequirements(request=0.1, limit=0.5, mem=0.0)


@pytest.mark.parametrize("system_cls", ALL_SYSTEMS, ids=lambda c: c.name)
class TestCommonInterface:
    def test_single_job_completes(self, system_cls):
        env, cluster, system = build(system_cls)
        job = InferenceJob.from_demand("j0", demand=0.3, duration=10.0)
        system.submit("j0", job.workload(), reqs())
        done = env.process(system.wait_all())
        env.run(until=done)
        stats = system.stats()[0]
        assert not stats.failed
        assert stats.duration == pytest.approx(10.0, rel=0.1)

    def test_six_jobs_complete(self, system_cls):
        env, cluster, system = build(system_cls)
        for i in range(6):
            job = InferenceJob.from_demand(f"j{i}", demand=0.3, duration=10.0)
            system.submit(f"j{i}", job.workload(), reqs())
        done = env.process(system.wait_all())
        env.run(until=done)
        assert sum(1 for s in system.stats() if s.failed) == 0


class TestNativeExclusivity:
    def test_one_job_per_gpu(self):
        env, cluster, system = build(NativeKubernetes, nodes=1, gpus_per_node=2)
        for i in range(2):
            system.submit(f"j{i}", None, reqs())
        env.run(until=10)
        pods = cluster.api.pods()
        devices = [
            p.status.container_env.get("NVIDIA_VISIBLE_DEVICES")
            for p in pods
            if p.status.phase is PodPhase.RUNNING
        ]
        assert len(devices) == 2
        assert len(set(devices)) == 2  # no sharing, ever

    def test_excess_jobs_queue(self):
        env, cluster, system = build(NativeKubernetes, nodes=1, gpus_per_node=2)
        for i in range(3):
            system.submit(f"j{i}", None, reqs())
        env.run(until=10)
        phases = [system.job_phase(h) for h in system.handles]
        assert phases.count(PodPhase.RUNNING) == 2
        assert phases.count(PodPhase.PENDING) == 1


class TestDeepomatic:
    def test_fractional_units_requested(self):
        env, cluster, system = build(DeepomaticSharedPlugin, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs(request=0.3))
        env.run(until=5)
        pod = cluster.api.get("Pod", "j0")
        assert pod.spec.resource_requests()[GPU_RESOURCE] == 30

    def test_no_isolation_env_injected(self):
        env, cluster, system = build(DeepomaticSharedPlugin, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs())
        env.run(until=5)
        pod = cluster.api.get("Pod", "j0")
        assert "LD_PRELOAD" not in pod.status.container_env

    def test_slices_interleave_across_gpus(self):
        """Round-robin unit picking spreads one pod's slices over multiple
        physical GPUs (the Figure 3a fragmentation)."""
        env, cluster, system = build(DeepomaticSharedPlugin, nodes=1, gpus_per_node=2)
        system.submit("j0", None, reqs(request=0.5))
        env.run(until=5)
        pod = cluster.api.get("Pod", "j0")
        visible = pod.status.container_env["NVIDIA_VISIBLE_DEVICES"].split(",")
        assert len(visible) == 2


class TestExtenderSystems:
    def test_aliyun_binds_node_and_device(self):
        env, cluster, system = build(AliyunGPUShare, nodes=2, gpus_per_node=2)
        system.submit("j0", None, reqs(mem=0.25))
        env.run(until=5)
        pod = cluster.api.get("Pod", "j0")
        assert pod.spec.node_name is not None  # extender pre-binds
        visible = pod.status.container_env["NVIDIA_VISIBLE_DEVICES"]
        assert "," not in visible  # a single physical device

    def test_aliyun_binpacks_by_memory(self):
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=2)
        for i in range(3):
            system.submit(f"j{i}", None, reqs(mem=0.3))
        env.run(until=5)
        devices = [
            cluster.api.get("Pod", f"j{i}").status.container_env[
                "NVIDIA_VISIBLE_DEVICES"
            ]
            for i in range(3)
        ]
        assert len(set(devices)) == 1  # all packed onto the fullest device

    def test_aliyun_memory_isolation_only(self):
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs())
        env.run(until=5)
        env_vars = cluster.api.get("Pod", "j0").status.container_env
        assert env_vars["KUBESHARE_ISOLATION"] == "memory"

    def test_aliyun_queues_when_memory_exhausted(self):
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs(mem=0.7))
        system.submit("j1", None, reqs(mem=0.7))
        env.run(until=5)
        assert system.job_phase(system.handles[0]) is PodPhase.RUNNING
        assert cluster.api.get("Pod", "j1") is None  # parked in extender

    def test_aliyun_retries_after_release(self):
        env, cluster, system = build(AliyunGPUShare, nodes=1, gpus_per_node=1)

        def quick(ctx):
            yield ctx.env.timeout(3.0)

        system.submit("j0", quick, reqs(mem=0.7))
        system.submit("j1", quick, reqs(mem=0.7))
        done = env.process(system.wait_all())
        env.run(until=done)
        assert all(not s.failed for s in system.stats())

    def test_gaiagpu_tracks_compute_too(self):
        env, cluster, system = build(GaiaGPU, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs(request=0.6, limit=0.8))
        system.submit("j1", None, reqs(request=0.6, limit=0.8))
        env.run(until=5)
        # second job cannot fit: 0.6 + 0.6 > 1.0 compute
        assert cluster.api.get("Pod", "j1") is None

    def test_gaiagpu_injects_compute_isolation(self):
        env, cluster, system = build(GaiaGPU, nodes=1, gpus_per_node=1)
        system.submit("j0", None, reqs())
        env.run(until=5)
        env_vars = cluster.api.get("Pod", "j0").status.container_env
        assert env_vars["KUBESHARE_ISOLATION"] == "fluid"
        assert env_vars["KUBESHARE_GPU_REQUEST"] == "0.3"

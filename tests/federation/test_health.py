"""The cluster health prober's state machine (Healthy → Suspect → Dead).

A partition and a whole-cluster outage are indistinguishable to the
prober — both are probe failures — which is exactly why ``Suspect``
exists as a buffer state: nothing is rescheduled until ``dead_after``
seconds of total silence.
"""

import pytest

from repro.federation import ClusterHealth, Federation, FederationConfig
from repro.sim import Environment


def small_config(**kw):
    kw.setdefault("members", ("a", "b"))
    kw.setdefault("nodes_per_cluster", 1)
    kw.setdefault("gpus_per_node", 1)
    kw.setdefault("replicas", 1)
    kw.setdefault("probe_interval", 0.5)
    kw.setdefault("probe_timeout", 0.2)
    kw.setdefault("suspect_after", 2)
    kw.setdefault("dead_after", 4.0)
    return FederationConfig(**kw)


@pytest.fixture
def fed():
    return Federation(Environment(), small_config()).start()


def states(fed):
    return {name: state.value for name, state in fed.prober.state.items()}


class TestHealthy:
    def test_reachable_members_stay_healthy(self, fed):
        fed.env.run(until=10.0)
        assert states(fed) == {"a": "Healthy", "b": "Healthy"}
        assert fed.prober.probe_failures_total == 0
        assert fed.prober.transitions == []

    def test_heartbeat_leases_renewed_in_federation_store(self, fed):
        fed.env.run(until=5.0)
        leases = {ls.metadata.name: ls for ls in fed.api.list("Lease")}
        for name in ("a", "b"):
            lease = leases[f"cluster-{name}"]
            assert lease.spec.holder == name
            assert lease.spec.renew_time > 4.0


class TestDegradation:
    def test_partition_degrades_to_suspect_not_dead(self, fed):
        fed.members["a"].partition(2.0)
        fed.env.run(until=3.5)
        assert fed.prober.state["a"] is ClusterHealth.SUSPECT
        fed.env.run(until=8.0)
        # The partition healed before dead_after: back to Healthy, and the
        # excursion never reached Dead.
        assert fed.prober.state["a"] is ClusterHealth.HEALTHY
        path = [(old, new) for _, n, old, new in fed.prober.transitions if n == "a"]
        assert path == [("Healthy", "Suspect"), ("Suspect", "Healthy")]

    def test_single_missed_probe_is_tolerated(self, fed):
        fed.members["a"].partition(0.1)  # one probe window
        fed.env.run(until=5.0)
        assert fed.prober.state["a"] is ClusterHealth.HEALTHY

    def test_sustained_silence_reaches_dead(self, fed):
        fed.members["a"].outage()
        fed.env.run(until=10.0)
        assert fed.prober.state["a"] is ClusterHealth.DEAD
        path = [(old, new) for _, n, old, new in fed.prober.transitions if n == "a"]
        assert path == [("Healthy", "Suspect"), ("Suspect", "Dead")]
        # Silence really lasted dead_after before the Dead verdict.
        dead_at = [t for t, n, _, new in fed.prober.transitions
                   if n == "a" and new == "Dead"][0]
        assert dead_at >= fed.config.dead_after

    def test_outage_and_partition_are_indistinguishable_probe_wise(self):
        outage = Federation(Environment(), small_config()).start()
        outage.members["a"].outage()
        outage.env.run(until=10.0)
        parted = Federation(Environment(), small_config()).start()
        parted.members["a"].partition(100.0)
        parted.env.run(until=10.0)
        assert [(o, n) for _, m, o, n in outage.prober.transitions if m == "a"] == \
               [(o, n) for _, m, o, n in parted.prober.transitions if m == "a"]


class TestRecovery:
    def test_dead_cluster_recovers_to_healthy(self, fed):
        fed.members["a"].outage(6.0)
        fed.env.run(until=20.0)
        assert fed.prober.state["a"] is ClusterHealth.HEALTHY
        path = [(old, new) for _, n, old, new in fed.prober.transitions if n == "a"]
        assert path[-1] == ("Dead", "Healthy")

    def test_recovery_callback_fires_only_from_dead(self):
        recovered = []
        fed = Federation(Environment(), small_config()).start()
        fed.prober.on_recovered = recovered.append
        fed.members["a"].partition(2.0)  # Suspect-depth excursion only
        fed.env.run(until=8.0)
        assert recovered == []
        fed.members["a"].partition(8.0)  # beyond dead_after
        fed.env.run(until=25.0)
        assert recovered == ["a"]

    def test_dead_callback_fires_once_per_death(self):
        deaths = []
        fed = Federation(Environment(), small_config()).start()
        fed.prober.on_dead = deaths.append
        fed.members["a"].outage()
        fed.env.run(until=30.0)
        assert deaths == ["a"]

    def test_healthy_members_view(self, fed):
        fed.members["a"].outage()
        fed.env.run(until=10.0)
        assert fed.prober.healthy_members() == ["b"]

"""Generation fencing on the global registry (:mod:`repro.federation.records`).

The fence is the whole exactly-once story: every (re)placement must win a
compare-and-swap on the record's generation before it may touch a member
cluster, so two concurrent actors can never both place the same record.
"""

import pytest

from repro.cluster.apiserver import APIServer
from repro.cluster.etcd import Etcd
from repro.federation import GlobalRegistry, StaleGeneration
from repro.sim import Environment


@pytest.fixture
def registry():
    env = Environment()
    return GlobalRegistry(APIServer(env, Etcd(env)))


class TestCreate:
    def test_fresh_record_is_unplaced_generation_zero(self, registry):
        record = registry.create("job0", {"gpu_request": 0.5})
        assert record.spec.cluster is None
        assert record.spec.generation == 0
        assert record.status.phase == "Pending"

    def test_template_is_stored(self, registry):
        registry.create("job0", {"gpu_request": 0.5, "gpu_mem": 0.3})
        assert registry.get("job0").spec.template["gpu_mem"] == 0.3


class TestAdvance:
    def test_advance_bumps_generation_and_assigns(self, registry):
        registry.create("job0", {})
        advanced = registry.advance("job0", "alpha", expect_generation=0)
        assert advanced.spec.cluster == "alpha"
        assert advanced.spec.generation == 1
        assert advanced.status.phase == "Placed"

    def test_stale_expectation_rejected(self, registry):
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        # A second actor still holding generation 0 loses the CAS.
        with pytest.raises(StaleGeneration):
            registry.advance("job0", "beta", expect_generation=0)
        # The winner's placement is untouched.
        record = registry.get("job0")
        assert record.spec.cluster == "alpha"
        assert record.spec.generation == 1

    def test_sequential_advances_compose(self, registry):
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        moved = registry.advance("job0", "beta", expect_generation=1)
        assert moved.spec.cluster == "beta"
        assert moved.spec.generation == 2

    def test_unknown_record_rejected(self, registry):
        with pytest.raises(StaleGeneration):
            registry.advance("ghost", "alpha", expect_generation=0)

    def test_terminal_record_cannot_be_replaced(self, registry):
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        assert registry.complete("job0", 1, "Completed")
        with pytest.raises(StaleGeneration):
            registry.advance("job0", "beta", expect_generation=1)


class TestComplete:
    def test_current_generation_completes(self, registry):
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        assert registry.complete("job0", 1, "Completed", "done")
        record = registry.get("job0")
        assert record.status.phase == "Completed"
        assert record.status.message == "done"

    def test_stale_generation_cannot_report_outcome(self, registry):
        """A fenced-off copy finishing on a healed cluster must not be able
        to overwrite the record's authoritative outcome."""
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        registry.advance("job0", "beta", expect_generation=1)
        assert not registry.complete("job0", 1, "Failed", "stale copy died")
        assert registry.get("job0").status.phase == "Placed"

    def test_terminal_record_is_immutable(self, registry):
        registry.create("job0", {})
        registry.advance("job0", "alpha", expect_generation=0)
        assert registry.complete("job0", 1, "Completed")
        assert not registry.complete("job0", 1, "Failed")
        assert registry.get("job0").status.phase == "Completed"


class TestViews:
    def test_assigned_to_lists_live_records_sorted(self, registry):
        for name in ("b", "a", "c"):
            registry.create(name, {})
        registry.advance("b", "alpha", expect_generation=0)
        registry.advance("a", "alpha", expect_generation=0)
        registry.advance("c", "beta", expect_generation=0)
        assert [r.metadata.name for r in registry.assigned_to("alpha")] == ["a", "b"]

    def test_assigned_to_excludes_terminal(self, registry):
        registry.create("a", {})
        registry.advance("a", "alpha", expect_generation=0)
        registry.complete("a", 1, "Completed")
        assert registry.assigned_to("alpha") == []

"""End-to-end federation semantics: two-tier placement, static stability
under partition, exactly-once evacuation from a dead cluster, and the
stale-copy reconciliation that runs when a cluster returns.
"""

import pytest

from repro.chaos import ChaosEngine
from repro.federation import (
    ANN_GENERATION,
    ANN_RECORD,
    ClusterHealth,
    Federation,
    FederationConfig,
    StaleGeneration,
)
from repro.sim import Environment
from repro.workloads.jobs import TrainingJob


def small_config(**kw):
    kw.setdefault("members", ("alpha", "beta"))
    kw.setdefault("nodes_per_cluster", 1)
    kw.setdefault("gpus_per_node", 2)
    kw.setdefault("replicas", 1)
    kw.setdefault("probe_interval", 0.5)
    kw.setdefault("probe_timeout", 0.2)
    kw.setdefault("suspect_after", 2)
    kw.setdefault("dead_after", 4.0)
    return FederationConfig(**kw)


def submit_job(fed, name, steps=40, gpu_request=0.45):
    job = TrainingJob(name, steps=steps, step_work=0.05)
    return fed.submit(
        name,
        gpu_request=gpu_request,
        gpu_limit=1.0,
        gpu_mem=0.3,
        workload_factory=job.workload,
    )


def current_generation_copies(fed):
    """record name → [(cluster, generation)] of live copies at the
    record's *current* generation — the double-placement invariant says
    every list here has length ≤ 1."""
    out = {}
    for name, copies in fed.live_copies().items():
        record = fed.registry.get(name)
        if record is None:
            continue
        out[name] = [
            (cluster, gen)
            for cluster, _, gen in copies
            if gen == record.spec.generation
        ]
    return out


class TestPlacement:
    def test_jobs_place_run_and_fold_back(self):
        fed = Federation(Environment(), small_config()).start()
        for i in range(4):
            submit_job(fed, f"job{i}")
        fed.env.run(until=40.0)
        assert fed.placer.placed_total == 4
        assert fed.completed_records() == ["job0", "job1", "job2", "job3"]
        assert fed.live_copies() == {}

    def test_member_scheduler_owns_gpu_choice(self):
        """The federation never writes a gpu_id — the member's own
        Algorithm 1 scheduler assigns the vGPU after the copy lands."""
        fed = Federation(Environment(), small_config()).start()
        submit_job(fed, "job0")
        fed.env.run(until=10.0)
        copies = [
            sp
            for member in fed.members.values()
            for sp in member.api.list("SharePod")
            if sp.metadata.annotations.get(ANN_RECORD) == "job0"
        ]
        assert len(copies) == 1
        assert copies[0].spec.gpu_id is not None  # assigned by the member
        assert copies[0].metadata.annotations[ANN_GENERATION] == "1"

    def test_overload_defers_until_capacity_frees(self):
        config = small_config(members=("alpha",), gpus_per_node=1)
        fed = Federation(Environment(), config).start()
        # 0.6 each on a single 1.0-util GPU: the second must wait its turn.
        submit_job(fed, "first", steps=30, gpu_request=0.6)
        submit_job(fed, "second", steps=30, gpu_request=0.6)
        fed.env.run(until=60.0)
        assert fed.placer.deferred_total >= 1
        assert fed.completed_records() == ["first", "second"]

    def test_suspect_cluster_receives_no_new_work(self):
        fed = Federation(Environment(), small_config()).start()
        fed.env.run(until=2.0)
        fed.members["alpha"].partition(3.0)
        fed.env.run(until=4.5)
        assert fed.prober.state["alpha"] is ClusterHealth.SUSPECT
        submit_job(fed, "job0")
        fed.env.run(until=30.0)
        copies = fed.live_copies().get("job0", [])
        placed_on = {c for c, _, _ in copies}
        assert "alpha" not in placed_on
        assert fed.registry.get("job0").spec.cluster == "beta"


class TestStaticStability:
    def test_partitioned_cluster_keeps_serving_local_work(self):
        """A partition cuts the federation link only: jobs already running
        on the member finish undisturbed, and nothing is rescheduled."""
        fed = Federation(Environment(), small_config()).start()
        submit_job(fed, "job0", steps=100)
        fed.env.run(until=3.0)
        owner = fed.registry.get("job0").spec.cluster
        fed.members[owner].partition(3.0)  # Suspect-depth, heals before dead
        fed.env.run(until=60.0)
        assert fed.placer.rescheduled_total == 0
        assert fed.registry.get("job0").spec.cluster == owner
        assert fed.registry.get("job0").spec.generation == 1
        assert fed.completed_records() == ["job0"]


class TestEvacuation:
    def test_dead_cluster_workloads_reschedule_exactly_once(self):
        fed = Federation(Environment(), small_config()).start()
        for i in range(3):
            submit_job(fed, f"job{i}", steps=200)
        fed.env.run(until=3.0)
        owners = {n: fed.registry.get(n).spec.cluster for n in ("job0", "job1", "job2")}
        victim = "alpha" if list(owners.values()).count("alpha") else "beta"
        moved = [n for n, c in owners.items() if c == victim]
        fed.members[victim].outage()
        fed.env.run(until=120.0)
        assert fed.placer.rescheduled_total == len(moved)
        assert fed.placer.fence_rejections_total == 0
        for name in moved:
            record = fed.registry.get(name)
            assert record.spec.cluster != victim
            assert record.spec.generation == 2
        assert fed.completed_records() == ["job0", "job1", "job2"]
        # No record ever holds two live copies at its current generation.
        for copies in current_generation_copies(fed).values():
            assert len(copies) <= 1

    def test_concurrent_evacuators_fence_to_one_winner(self):
        """Two evacuation sweeps racing over the same dead cluster: the
        generation CAS lets exactly one (re)placement through per record."""
        fed = Federation(Environment(), small_config()).start()
        submit_job(fed, "job0", steps=200)
        fed.env.run(until=3.0)
        victim = fed.registry.get("job0").spec.cluster
        fed.members[victim].outage()
        fed.env.run(until=10.0)
        assert fed.prober.state[victim] is ClusterHealth.DEAD
        # A second, duplicate Dead notification — as a healed-then-dead
        # flap would produce.
        fed.placer.on_cluster_dead(victim)
        fed.env.run(until=120.0)
        total_placements = fed.placer.rescheduled_total
        rejected = fed.placer.fence_rejections_total
        assert total_placements == 1  # one winner
        assert fed.registry.get("job0").spec.generation == 2
        assert fed.completed_records() == ["job0"]
        assert rejected <= 1  # the loser lost the CAS, silently

    def test_direct_stale_advance_is_rejected(self):
        fed = Federation(Environment(), small_config()).start()
        submit_job(fed, "job0")
        fed.env.run(until=3.0)
        with pytest.raises(StaleGeneration):
            fed.registry.advance("job0", "beta", expect_generation=0)


class TestHealMidReschedule:
    def test_partition_healing_after_evacuation_cannot_double_place(self):
        """The ISSUE's headline race: a cluster partitioned long enough to
        be declared Dead keeps running its copies (it never crashed); the
        placer evacuates; then the partition heals. The stale-generation
        copies on the returning cluster are fenced off and deleted, each
        record completes exactly once, and no record ever has two live
        copies at its current generation."""
        fed = Federation(Environment(), small_config()).start()
        for i in range(2):
            submit_job(fed, f"job{i}", steps=400)
        fed.env.run(until=3.0)
        owners = {n: fed.registry.get(n).spec.cluster for n in ("job0", "job1")}
        victim = "alpha" if list(owners.values()).count("alpha") else "beta"
        moved = [n for n, c in owners.items() if c == victim]
        # Partition past dead_after, healing shortly after the evacuation
        # sweep begins.
        fed.members[victim].partition(8.0)
        fed.env.run(until=30.0)
        assert fed.prober.state[victim] is ClusterHealth.HEALTHY
        # Evacuated once each; the healed side was fenced off and revoked.
        assert fed.placer.rescheduled_total == len(moved)
        assert fed.placer.revoked_stale_total == len(moved)
        for name in moved:
            assert fed.registry.get(name).spec.cluster != victim
        for copies in current_generation_copies(fed).values():
            assert len(copies) <= 1
        fed.env.run(until=150.0)
        assert fed.completed_records() == ["job0", "job1"]
        # The stale copies' outcomes never overwrote the records (each
        # record completed at its current generation, exactly once).
        for name in moved:
            assert fed.registry.get(name).spec.generation == 2


class TestChaosIntegration:
    def test_cluster_outage_fault_kind(self):
        fed = Federation(Environment(), small_config()).start()
        engine = ChaosEngine(
            fed.members["alpha"].cluster, seed=3
        ).register_federation(fed)
        engine.cluster_outage(at=2.0, target="alpha")
        engine.start()
        fed.env.run(until=12.0)
        assert fed.prober.state["alpha"] is ClusterHealth.DEAD
        (_, fault, target, outcome), = engine.log
        assert target == "alpha"
        assert "dark permanently" in outcome

    def test_federation_partition_fault_kind(self):
        fed = Federation(Environment(), small_config()).start()
        engine = ChaosEngine(
            fed.members["alpha"].cluster, seed=3
        ).register_federation(fed)
        engine.federation_partition(at=2.0, duration=2.0, target="beta")
        engine.start()
        fed.env.run(until=5.0)
        assert fed.prober.state["beta"] is ClusterHealth.SUSPECT
        fed.env.run(until=12.0)
        assert fed.prober.state["beta"] is ClusterHealth.HEALTHY

    def test_unregistered_federation_is_noop(self):
        fed = Federation(Environment(), small_config()).start()
        engine = ChaosEngine(fed.members["alpha"].cluster, seed=3)
        engine.cluster_outage(at=1.0)
        engine.start()
        fed.env.run(until=10.0)
        (_, _, _, outcome), = engine.log
        assert outcome.startswith("no-op")
        assert fed.prober.state["alpha"] is ClusterHealth.HEALTHY

    def test_seeded_member_pick_is_deterministic(self):
        def victims():
            fed = Federation(Environment(), small_config()).start()
            engine = ChaosEngine(
                fed.members["alpha"].cluster, seed=11
            ).register_federation(fed)
            engine.federation_partition(at=1.0, duration=1.0)
            engine.start()
            fed.env.run(until=3.0)
            return [t for _, _, t, _ in engine.log]

        assert victims() == victims()


class TestDeterminism:
    def test_identical_seeds_replay_identically(self):
        from repro.analysis.resets import reset_all

        def run():
            reset_all()  # fresh-process counters for an exact replay
            fed = Federation(Environment(), small_config()).start()
            for i in range(3):
                submit_job(fed, f"job{i}", steps=100)
            fed.env.run(until=5.0)
            fed.members["alpha"].outage()
            fed.env.run(until=90.0)
            return {
                "completed": fed.completed_records(),
                "rescheduled": fed.placer.rescheduled_total,
                "transitions": fed.prober.transitions,
                "records": [
                    (r.metadata.name, r.spec.cluster, r.spec.generation)
                    for r in fed.registry.list()
                ],
            }

        assert run() == run()

"""Unit tests for the SharePod CRD and its spec validation (§4.1/§4.2)."""

import pytest

from repro.core.sharepod import SharePod, SharePodSpec, SpecError
from repro.cluster.objects import ObjectMeta, PodSpec


def valid_spec(**over):
    kwargs = dict(gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.25)
    kwargs.update(over)
    return SharePodSpec(**kwargs)


class TestValidation:
    def test_valid_spec_passes(self):
        valid_spec().validate()

    @pytest.mark.parametrize("request_", [-0.1, 1.1])
    def test_request_range(self, request_):
        with pytest.raises(SpecError):
            valid_spec(gpu_request=request_, gpu_limit=1.0).validate()

    @pytest.mark.parametrize("limit", [0.0, 1.5])
    def test_limit_range(self, limit):
        with pytest.raises(SpecError):
            valid_spec(gpu_limit=limit).validate()

    def test_request_must_not_exceed_limit(self):
        with pytest.raises(SpecError, match="must not exceed"):
            valid_spec(gpu_request=0.7, gpu_limit=0.6).validate()

    @pytest.mark.parametrize("mem", [0.0, 1.5])
    def test_mem_range(self, mem):
        with pytest.raises(SpecError):
            valid_spec(gpu_mem=mem).validate()

    def test_empty_label_rejected(self):
        with pytest.raises(SpecError):
            valid_spec(sched_affinity="").validate()

    def test_fractional_values_allowed_anywhere_in_range(self):
        valid_spec(gpu_request=0.123456, gpu_limit=0.654321).validate()

    def test_zero_request_is_best_effort(self):
        valid_spec(gpu_request=0.0).validate()


class TestCloning:
    def test_clone_shares_workload_deepcopies_rest(self):
        def wl(ctx):
            yield None

        sp = SharePod(
            metadata=ObjectMeta(name="s", labels={"a": "1"}),
            spec=valid_spec(pod_spec=PodSpec(workload=wl)),
        )
        dup = sp.clone()
        dup.metadata.labels["a"] = "2"
        dup.spec.gpu_request = 0.9
        assert sp.metadata.labels["a"] == "1"
        assert sp.spec.gpu_request == 0.3
        assert dup.spec.pod_spec.workload is wl
        assert sp.spec.pod_spec.workload is wl


class TestFromDict:
    def test_minimal_manifest(self):
        sp = SharePod.from_dict(
            {
                "metadata": {"name": "pod1"},
                "spec": {"gpu_request": 0.4, "gpu_limit": 0.6, "gpu_mem": 0.25},
            }
        )
        assert sp.name == "pod1"
        assert sp.spec.gpu_request == 0.4

    def test_full_manifest(self):
        def wl(ctx):
            yield None

        sp = SharePod.from_dict(
            {
                "metadata": {
                    "name": "pod1",
                    "namespace": "team",
                    "labels": {"app": "train"},
                },
                "spec": {
                    "gpu_request": 0.4,
                    "gpu_limit": 0.6,
                    "gpu_mem": 0.25,
                    "gpu_id": "vgpu-abc",
                    "sched_affinity": "grp",
                    "sched_anti_affinity": "solo",
                    "sched_exclusion": "tenant1",
                    "workload": wl,
                },
            }
        )
        assert sp.metadata.namespace == "team"
        assert sp.spec.gpu_id == "vgpu-abc"
        assert sp.spec.sched_affinity == "grp"
        assert sp.spec.pod_spec.workload is wl

    def test_missing_name_rejected(self):
        with pytest.raises(SpecError, match="name"):
            SharePod.from_dict({"spec": {"gpu_mem": 0.5}})

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            SharePod.from_dict(
                {
                    "metadata": {"name": "p"},
                    "spec": {"gpu_mem": 0.5, "gpu_fraction": 0.5},
                }
            )

    def test_invalid_values_rejected(self):
        with pytest.raises(SpecError):
            SharePod.from_dict(
                {
                    "metadata": {"name": "p"},
                    "spec": {"gpu_request": 0.9, "gpu_limit": 0.5, "gpu_mem": 0.5},
                }
            )

"""Unit tests for vGPU objects and the pool (§4.4)."""

import pytest

from repro.core.vgpu import VGPU, VGPUPhase, VGPUPool, new_gpuid


class TestGpuId:
    def test_ids_are_unique_and_hashed(self):
        ids = {new_gpuid() for _ in range(100)}
        assert len(ids) == 100
        assert all(i.startswith("vgpu-") for i in ids)


class TestVGPU:
    def test_fresh_vgpu_is_creating_and_idle(self):
        v = VGPU(gpuid="g1")
        assert v.phase is VGPUPhase.CREATING
        assert not v.materialized
        assert v.idle

    def test_materialized_once_uuid_known(self):
        v = VGPU(gpuid="g1", uuid="GPU-abc")
        assert v.materialized

    def test_idle_tracks_attachments(self):
        v = VGPU(gpuid="g1")
        v.attached.add("default/sp1")
        assert not v.idle


class TestPool:
    def test_add_and_get(self):
        pool = VGPUPool()
        v = pool.add(VGPU(gpuid="g1"))
        assert pool.get("g1") is v
        assert "g1" in pool
        assert len(pool) == 1

    def test_duplicate_add_rejected(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1"))
        with pytest.raises(ValueError):
            pool.add(VGPU(gpuid="g1"))

    def test_remove(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1"))
        removed = pool.remove("g1")
        assert removed.gpuid == "g1"
        assert pool.remove("g1") is None

    def test_list_sorted_by_gpuid(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="b"))
        pool.add(VGPU(gpuid="a"))
        assert [v.gpuid for v in pool.list()] == ["a", "b"]

    def test_idle_vgpus_excludes_attached_and_deleting(self):
        pool = VGPUPool()
        busy = pool.add(VGPU(gpuid="busy"))
        busy.attached.add("x")
        dying = pool.add(VGPU(gpuid="dying"))
        dying.phase = VGPUPhase.DELETING
        pool.add(VGPU(gpuid="free", phase=VGPUPhase.IDLE))
        assert [v.gpuid for v in pool.idle_vgpus()] == ["free"]

    def test_uuid_lookups(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1", uuid="GPU-1", placeholder_pod="vgpu-holder-g1"))
        assert pool.by_uuid("GPU-1").gpuid == "g1"
        assert pool.by_uuid("GPU-zzz") is None
        assert pool.by_placeholder("vgpu-holder-g1").gpuid == "g1"
        assert pool.by_placeholder("other") is None

    def test_gpuid_to_uuid_mapping(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1", uuid="GPU-1"))
        assert pool.gpuid_to_uuid("g1") == "GPU-1"
        assert pool.gpuid_to_uuid("ghost") is None

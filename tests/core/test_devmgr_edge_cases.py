"""Edge-case tests for KubeShare-DevMgr and KubeShare-Sched controllers."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import PodPhase
from repro.core import HybridPolicy, KubeShare
from repro.core.devmgr import PLACEHOLDER_PREFIX
from repro.core.scheduler import build_device_views
from repro.core.sharepod import SharePod, SharePodSpec
from repro.core.vgpu import VGPU, VGPUPhase, VGPUPool
from repro.cluster.objects import ObjectMeta

TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


def train(work):
    def wl(ctx):
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        try:
            yield from api.cu_launch_kernel(cu, work)
        finally:
            api.cu_ctx_destroy(cu)

    return wl


class TestBuildDeviceViews:
    def test_derives_labels_and_residuals(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1", phase=VGPUPhase.ACTIVE, uuid="GPU-1"))
        sp = SharePod(
            metadata=ObjectMeta(name="s1"),
            spec=SharePodSpec(
                gpu_request=0.4, gpu_limit=0.8, gpu_mem=0.3, gpu_id="g1",
                sched_affinity="team", sched_anti_affinity="solo",
                sched_exclusion="tenant",
            ),
        )
        views = build_device_views(pool, [sp])
        assert len(views) == 1
        v = views[0]
        assert v.util == pytest.approx(0.6)
        assert v.mem == pytest.approx(0.7)
        assert v.aff == {"team"}
        assert v.anti_aff == {"solo"}
        assert v.excl == "tenant"
        assert not v.idle

    def test_terminal_sharepods_do_not_count(self):
        pool = VGPUPool()
        pool.add(VGPU(gpuid="g1", phase=VGPUPhase.IDLE, uuid="GPU-1"))
        sp = SharePod(
            metadata=ObjectMeta(name="done"),
            spec=SharePodSpec(gpu_request=0.9, gpu_limit=1.0, gpu_mem=0.9, gpu_id="g1"),
        )
        sp.status.phase = PodPhase.SUCCEEDED
        views = build_device_views(pool, [sp])
        assert views[0].idle
        assert views[0].util == pytest.approx(1.0)

    def test_assigned_but_unmaterialized_gpuid_gets_a_view(self):
        pool = VGPUPool()  # empty: DevMgr has not created the vGPU yet
        sp = SharePod(
            metadata=ObjectMeta(name="inflight"),
            spec=SharePodSpec(gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5,
                              gpu_id="vgpu-new"),
        )
        views = build_device_views(pool, [sp])
        assert [v.gpuid for v in views] == ["vgpu-new"]
        assert views[0].util == pytest.approx(0.5)

    def test_unscheduled_sharepods_ignored(self):
        sp = SharePod(
            metadata=ObjectMeta(name="pending"),
            spec=SharePodSpec(gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5),
        )
        assert build_device_views(VGPUPool(), [sp]) == []


class TestDevMgrLifecycle:
    @pytest.fixture
    def stack(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        ks = KubeShare(cluster, isolation="token").start()
        return cluster, ks

    def test_gpuid_uuid_mapping_recorded(self, stack):
        cluster, ks = stack
        ks.submit(ks.make_sharepod(
            "j", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5, workload=None
        ))
        wait = cluster.env.process(ks.wait_for_phase("j", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        sp = ks.get("j")
        assert ks.pool.gpuid_to_uuid(sp.spec.gpu_id) == sp.status.gpu_uuid

    def test_timings_recorded_for_fig10(self, stack):
        cluster, ks = stack
        ks.submit(ks.make_sharepod(
            "j", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5, workload=None
        ))
        wait = cluster.env.process(ks.wait_for_phase("j", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        timing = ks.devmgr.timings["default/j"]
        assert (
            timing["sharepod_created"]
            <= timing["vgpu_requested"]
            <= timing["vgpu_ready"]
            <= timing["pod_created"]
            <= timing["pod_running"]
        )

    def test_hybrid_policy_releases_after_ttl(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        ks = KubeShare(
            cluster, isolation="token",
            policy=HybridPolicy(max_idle=2, idle_ttl=5.0),
        ).start()
        ks.submit(ks.make_sharepod(
            "j", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5,
            workload=train(1.0),
        ))
        done = env.process(ks.wait_all_terminal(["j"]))
        env.run(until=done)
        assert len(ks.pool) == 1  # kept warm initially
        env.run(until=env.now + 6.0)
        assert len(ks.pool) == 0  # TTL expired → released

    def test_ttl_cancelled_by_reuse(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        ks = KubeShare(
            cluster, isolation="token",
            policy=HybridPolicy(max_idle=2, idle_ttl=8.0),
        ).start()
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5,
            workload=train(1.0),
        ))
        done = env.process(ks.wait_all_terminal(["j1"]))
        env.run(until=done)
        # reuse the idle vGPU before the TTL fires
        ks.submit(ks.make_sharepod(
            "j2", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5, workload=None
        ))
        wait = env.process(ks.wait_for_phase("j2", [PodPhase.RUNNING]))
        env.run(until=wait)
        env.run(until=env.now + 10.0)
        assert len(ks.pool) == 1  # still alive: the TTL must not kill it

    def test_two_sharepods_same_new_vgpu_single_placeholder(self, stack):
        """Concurrent sharePods packed on one new GPUID must not race into
        creating two placeholders."""
        cluster, ks = stack
        for i in range(3):
            ks.submit(ks.make_sharepod(
                f"j{i}", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.25,
                workload=None,
            ))
        cluster.env.run(until=10)
        holders = [
            p for p in cluster.api.pods() if p.name.startswith(PLACEHOLDER_PREFIX)
        ]
        assert len(holders) == 1
        assert ks.devmgr.vgpus_created_total == 1
        for i in range(3):
            assert ks.get(f"j{i}").status.phase is PodPhase.RUNNING

    def test_deleting_one_of_two_keeps_vgpu(self, stack):
        cluster, ks = stack
        for i in range(2):
            ks.submit(ks.make_sharepod(
                f"j{i}", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.25,
                workload=None,
            ))
        cluster.env.run(until=10)
        ks.delete("j0")
        cluster.env.run(until=cluster.env.now + 3)
        assert len(ks.pool) == 1  # j1 still attached
        assert ks.get("j1").status.phase is PodPhase.RUNNING

    def test_sched_wall_times_recorded(self, stack):
        cluster, ks = stack
        ks.submit(ks.make_sharepod(
            "j", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.3, workload=None
        ))
        cluster.env.run(until=5)
        assert len(ks.sched.algo_wall_times) >= 1
        n, seconds = ks.sched.algo_wall_times[0]
        assert n >= 1 and seconds >= 0.0

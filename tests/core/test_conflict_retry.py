"""Optimistic-concurrency behaviour under concurrent SharePod writers.

The HA control plane leans on two properties of the apiserver: a write
with a stale resourceVersion surfaces :class:`Conflict` (the CAS that
leader election and fencing reuse), and :meth:`APIServer.patch` re-reads
before every retry so a conflicting writer's changes are never silently
overwritten — the pattern DevMgr and the scheduler use for every
status/spec mutation.

These tests deliberately perform the hazardous get→update shape to
assert that Conflict fires; the lint rule they would trip exists to
keep that shape out of *controllers*, not out of its own tests.
"""
# repro-lint: disable=RPR004 - deliberate get→update races are the test subject

import pytest

from repro.cluster.apiserver import APIServer, Conflict
from repro.cluster.objects import ObjectMeta, PodPhase
from repro.core.sharepod import SharePod, SharePodSpec
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    api = APIServer(env)
    api.register_crd("SharePod")
    return api


def make_sp(name="sp1"):
    return SharePod(
        metadata=ObjectMeta(name=name),
        spec=SharePodSpec(gpu_request=0.4, gpu_limit=0.6, gpu_mem=0.25),
    )


class TestConflictSurfaces:
    def test_second_writer_with_same_resource_version_conflicts(self, api):
        api.create(make_sp())
        # Two controllers read the same revision...
        first = api.get("SharePod", "sp1")
        second = api.get("SharePod", "sp1")
        first.spec.gpu_id = "vgpu-aaa"
        api.update(first)
        # ...the slower writer's CAS must fail, not clobber.
        second.spec.gpu_id = "vgpu-bbb"
        with pytest.raises(Conflict):
            api.update(second)
        assert api.get("SharePod", "sp1").spec.gpu_id == "vgpu-aaa"

    def test_update_after_reread_succeeds(self, api):
        api.create(make_sp())
        loser = api.get("SharePod", "sp1")
        winner = api.get("SharePod", "sp1")
        winner.spec.gpu_id = "vgpu-aaa"
        api.update(winner)
        with pytest.raises(Conflict):
            api.update(loser)
        # The retry protocol: re-read, re-apply, re-write.
        fresh = api.get("SharePod", "sp1")
        fresh.status.phase = PodPhase.RUNNING
        api.update(fresh)
        stored = api.get("SharePod", "sp1")
        assert stored.spec.gpu_id == "vgpu-aaa"  # winner's change preserved
        assert stored.status.phase is PodPhase.RUNNING


class TestPatchRereads:
    def test_patch_preserves_concurrent_writers_changes(self, api):
        """DevMgr-style status patch racing a scheduler-style spec patch:
        patch re-reads on Conflict, so both mutations land."""
        api.create(make_sp())
        interfered = []

        def devmgr_mutate(sp):
            # A competing writer sneaks in between patch's read and write
            # on the first attempt only (simulated interleaving).
            if not interfered:
                interfered.append(True)
                other = api.get("SharePod", "sp1")
                other.spec.gpu_id = "vgpu-aaa"
                api.update(other)
            sp.status.phase = PodPhase.RUNNING
            sp.status.pod_name = "sp1"

        api.patch("SharePod", "sp1", devmgr_mutate)
        stored = api.get("SharePod", "sp1")
        # Both the competing spec write and the patched status survived.
        assert stored.spec.gpu_id == "vgpu-aaa"
        assert stored.status.phase is PodPhase.RUNNING
        assert stored.status.pod_name == "sp1"

    def test_patch_retries_are_bounded(self, api):
        api.create(make_sp())

        def always_interfere(sp):
            other = api.get("SharePod", "sp1")
            other.metadata.labels["tick"] = str(
                int(other.metadata.labels.get("tick", "0")) + 1
            )
            api.update(other)
            sp.status.phase = PodPhase.RUNNING

        with pytest.raises(Conflict):
            api.patch("SharePod", "sp1", always_interfere, retries=3)

    def test_mutate_sees_latest_object_on_every_attempt(self, api):
        """The re-read is what makes retry safe: mutate must observe the
        competing writer's value, never the stale first read."""
        api.create(make_sp())
        seen = []
        interfered = []

        def mutate(sp):
            seen.append(sp.spec.gpu_id)
            if not interfered:
                interfered.append(True)
                other = api.get("SharePod", "sp1")
                other.spec.gpu_id = "vgpu-ccc"
                api.update(other)
            sp.status.message = "bound"

        api.patch("SharePod", "sp1", mutate)
        assert seen == [None, "vgpu-ccc"]

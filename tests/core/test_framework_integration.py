"""Integration tests: KubeShare controllers on a live simulated cluster.

These exercise the complete §4 pipeline: client submits a SharePodSpec →
KubeShare-Sched assigns a GPUID (Algorithm 1) → KubeShare-DevMgr acquires
the GPU via a placeholder pod, binds explicitly, installs the device
library → the workload runs isolated → teardown returns the GPU.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import GPU_RESOURCE, PodPhase
from repro.core import KubeShare, ReservationPolicy
from repro.core.devmgr import PLACEHOLDER_PREFIX
from repro.core.vgpu import VGPUPhase
from repro.gpu.device import GpuOutOfMemory

TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


@pytest.fixture
def ks_cluster(env):
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    ks = KubeShare(cluster, isolation="token").start()
    return cluster, ks


def train(work, mem_bytes=2 * 2**30):
    def wl(ctx):
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        try:
            api.cu_mem_alloc(cu, mem_bytes)
            yield from api.cu_launch_kernel(cu, work)
        finally:
            api.cu_ctx_destroy(cu)
        return "done"

    return wl


def finish(cluster, ks, names):
    done = cluster.env.process(ks.wait_all_terminal(names))
    cluster.env.run(until=done)


class TestLifecycle:
    def test_single_sharepod_end_to_end(self, ks_cluster):
        cluster, ks = ks_cluster
        sp = ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(2.0),
        )
        ks.submit(sp)
        finish(cluster, ks, ["j1"])
        got = ks.get("j1")
        assert got.status.phase is PodPhase.SUCCEEDED
        assert got.spec.gpu_id is not None
        assert got.status.gpu_uuid is not None
        assert got.spec.node_name is not None

    def test_real_pod_carries_device_library_env(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.4, gpu_limit=0.8, gpu_mem=0.25,
            workload=train(1.0),
        ))
        wait = cluster.env.process(ks.wait_for_phase("j1", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        pod = cluster.api.get("Pod", "j1")
        env_vars = pod.spec.containers[0].env
        assert "libgemhook" in env_vars["LD_PRELOAD"]
        assert env_vars["KUBESHARE_GPU_REQUEST"] == "0.4"
        assert env_vars["KUBESHARE_GPU_LIMIT"] == "0.8"
        assert env_vars["KUBESHARE_GPU_MEM"] == "0.25"
        assert env_vars["NVIDIA_VISIBLE_DEVICES"].startswith("GPU-")

    def test_placeholder_pod_holds_the_physical_gpu(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3, workload=None,
        ))
        wait = cluster.env.process(ks.wait_for_phase("j1", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        holders = [
            p for p in cluster.api.pods() if p.name.startswith(PLACEHOLDER_PREFIX)
        ]
        assert len(holders) == 1
        assert holders[0].spec.resource_requests()[GPU_RESOURCE] == 1
        # the sharePod's own pod must NOT request an integer GPU
        pod = cluster.api.get("Pod", "j1")
        assert GPU_RESOURCE not in pod.spec.resource_requests()

    def test_two_sharepods_pack_one_gpu(self, ks_cluster):
        cluster, ks = ks_cluster
        for i in range(2):
            ks.submit(ks.make_sharepod(
                f"j{i}", gpu_request=0.4, gpu_limit=0.8, gpu_mem=0.3,
                workload=train(2.0),
            ))
        finish(cluster, ks, ["j0", "j1"])
        uuids = {ks.get(f"j{i}").status.gpu_uuid for i in range(2)}
        assert len(uuids) == 1  # same physical GPU
        assert ks.devmgr.vgpus_created_total == 1

    def test_oversized_requests_spread_to_two_gpus(self, ks_cluster):
        cluster, ks = ks_cluster
        for i in range(2):
            ks.submit(ks.make_sharepod(
                f"j{i}", gpu_request=0.7, gpu_limit=1.0, gpu_mem=0.3,
                workload=train(1.0),
            ))
        finish(cluster, ks, ["j0", "j1"])
        uuids = {ks.get(f"j{i}").status.gpu_uuid for i in range(2)}
        assert len(uuids) == 2

    def test_on_demand_policy_releases_gpu_after_completion(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(1.0),
        ))
        finish(cluster, ks, ["j1"])
        cluster.env.run(until=cluster.env.now + 2)
        assert len(ks.pool) == 0
        assert ks.devmgr.vgpus_released_total == 1
        # the placeholder is gone so the GPU is native-allocatable again
        assert not any(
            p.name.startswith(PLACEHOLDER_PREFIX) for p in cluster.api.pods()
        )

    def test_reservation_policy_keeps_idle_vgpu(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        ks = KubeShare(
            cluster, isolation="token", policy=ReservationPolicy(max_idle=None)
        ).start()
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(1.0),
        ))
        finish(cluster, ks, ["j1"])
        env.run(until=env.now + 2)
        assert len(ks.pool) == 1
        assert ks.pool.list()[0].phase is VGPUPhase.IDLE

    def test_idle_vgpu_reused_without_new_placeholder(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        ks = KubeShare(
            cluster, isolation="token", policy=ReservationPolicy(max_idle=None)
        ).start()
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(1.0),
        ))
        finish(cluster, ks, ["j1"])
        ks.submit(ks.make_sharepod(
            "j2", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(1.0),
        ))
        finish(cluster, ks, ["j2"])
        assert ks.devmgr.vgpus_created_total == 1  # reused, not recreated
        assert ks.get("j2").status.phase is PodPhase.SUCCEEDED

    def test_delete_running_sharepod_tears_down(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "svc", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3, workload=None,
        ))
        wait = cluster.env.process(ks.wait_for_phase("svc", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        ks.delete("svc")
        cluster.env.run(until=cluster.env.now + 3)
        assert cluster.api.get("Pod", "svc") is None
        assert len(ks.pool) == 0  # on-demand release


class TestIsolationThroughStack:
    def test_limit_enforced_for_real_workload(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "slow", gpu_request=0.2, gpu_limit=0.5, gpu_mem=0.3,
            workload=train(6.0),
        ))
        finish(cluster, ks, ["slow"])
        sp = ks.get("slow")
        duration = sp.status.finish_time - sp.status.start_time
        # 6.0 work at limit 0.5 ⇒ ~12 s; the sliding window allows a brief
        # full-rate transient while it fills (~1.25 s of head start).
        assert duration >= 6.0 / 0.5 - 2.6

    def test_memory_quota_enforced_through_stack(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "piggy", gpu_request=0.2, gpu_limit=0.5, gpu_mem=0.1,
            workload=train(1.0, mem_bytes=4 * 2**30),  # > 10% of 16GB
        ))
        finish(cluster, ks, ["piggy"])
        sp = ks.get("piggy")
        assert sp.status.phase is PodPhase.FAILED
        assert "GpuOutOfMemory" in sp.status.message or "quota" in sp.status.message

    def test_elastic_sharing_through_stack(self, ks_cluster):
        """Two jobs with summed requests < 1 split the residual fairly."""
        cluster, ks = ks_cluster
        for i, (req, lim) in enumerate([(0.3, 0.6), (0.4, 0.6)]):
            ks.submit(ks.make_sharepod(
                f"j{i}", gpu_request=req, gpu_limit=lim, gpu_mem=0.3,
                workload=train(5.0), affinity="pack",
            ))
        finish(cluster, ks, ["j0", "j1"])
        for i in range(2):
            sp = ks.get(f"j{i}")
            duration = sp.status.finish_time - sp.status.start_time
            # both should run at ~0.5 ⇒ ~10 s (allow token overhead)
            assert duration == pytest.approx(10.0, rel=0.15)


class TestSchedulerControllerBehaviour:
    def test_unschedulable_affinity_conflict_fails_sharepod(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "a", gpu_request=0.9, gpu_limit=1.0, gpu_mem=0.9,
            workload=None, affinity="grp",
        ))
        wait = cluster.env.process(ks.wait_for_phase("a", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        # same affinity, but no capacity left on that device
        ks.submit(ks.make_sharepod(
            "b", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.5,
            workload=None, affinity="grp",
        ))
        wait = cluster.env.process(ks.wait_for_phase("b", TERMINAL))
        cluster.env.run(until=wait)
        sp = ks.get("b")
        assert sp.status.phase is PodPhase.FAILED
        assert "unschedulable" in sp.status.message

    def test_saturated_cluster_defers_then_schedules(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        ks = KubeShare(cluster, isolation="token").start()
        ks.submit(ks.make_sharepod(
            "first", gpu_request=0.9, gpu_limit=1.0, gpu_mem=0.9,
            workload=train(3.0),
        ))
        ks.submit(ks.make_sharepod(
            "second", gpu_request=0.9, gpu_limit=1.0, gpu_mem=0.9,
            workload=train(3.0),
        ))
        finish(cluster, ks, ["first", "second"])
        assert ks.get("first").status.phase is PodPhase.SUCCEEDED
        assert ks.get("second").status.phase is PodPhase.SUCCEEDED
        # second could only start after first finished and freed the GPU
        assert ks.get("second").status.start_time > ks.get("first").status.finish_time

    def test_user_pinned_gpuid_respected(self, ks_cluster):
        """GPUs are first-class: a user can bind to an explicit GPUID."""
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "first", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.3,
            workload=None,
        ))
        wait = cluster.env.process(ks.wait_for_phase("first", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        gpuid = ks.get("first").spec.gpu_id
        ks.submit(ks.make_sharepod(
            "pinned", gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.3,
            workload=None, gpu_id=gpuid,
        ))
        wait = cluster.env.process(ks.wait_for_phase("pinned", [PodPhase.RUNNING]))
        cluster.env.run(until=wait)
        assert ks.get("pinned").status.gpu_uuid == ks.get("first").status.gpu_uuid
        assert ks.sched.scheduled_total == 1  # the pinned one bypassed Sched

"""Unit + property tests for Algorithm 1 (locality & resource aware
scheduling, paper §4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import (
    DeviceView,
    RequestView,
    schedule_request,
)


def dev(gpuid, util=1.0, mem=1.0, aff=(), anti=(), excl=None, idle=None):
    view = DeviceView(
        gpuid=gpuid,
        util=util,
        mem=mem,
        aff=set(aff),
        anti_aff=set(anti),
        excl=excl,
    )
    view.idle = (
        idle
        if idle is not None
        else (util == 1.0 and mem == 1.0 and not aff and not anti and excl is None)
    )
    return view


class TestAffinityStep:
    """Lines 1-14: requests with an affinity label."""

    def test_joins_device_with_matching_label(self):
        devices = [dev("d1", util=0.5, mem=0.5, aff={"team"})]
        d = schedule_request(RequestView(util=0.2, mem=0.2, aff="team"), devices)
        assert d.gpuid == "d1" and not d.is_new

    def test_rejected_on_exclusion_mismatch(self):
        devices = [dev("d1", aff={"team"}, excl="other", idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1, aff="team"), devices)
        assert d.rejected
        assert "exclusion" in d.reason

    def test_rejected_when_anti_affinity_already_present(self):
        devices = [dev("d1", aff={"team"}, anti={"solo"}, idle=False)]
        d = schedule_request(
            RequestView(util=0.1, mem=0.1, aff="team", anti_aff="solo"), devices
        )
        assert d.rejected

    def test_rejected_on_insufficient_resources(self):
        devices = [dev("d1", util=0.1, mem=0.9, aff={"team"}, idle=False)]
        d = schedule_request(RequestView(util=0.5, mem=0.1, aff="team"), devices)
        assert d.rejected
        assert "capacity" in d.reason

    def test_new_label_prefers_idle_device(self):
        devices = [
            dev("busy", util=0.5, mem=0.5, idle=False),
            dev("idle", util=1.0, mem=1.0),
        ]
        d = schedule_request(RequestView(util=0.2, mem=0.2, aff="fresh"), devices)
        assert d.gpuid == "idle"

    def test_new_label_creates_device_when_none_idle(self):
        devices = [dev("busy", util=0.5, mem=0.5, idle=False)]
        d = schedule_request(RequestView(util=0.2, mem=0.2, aff="fresh"), devices)
        assert d.is_new
        assert d.gpuid not in ("busy",)

    def test_affinity_label_recorded_on_chosen_device(self):
        devices = [dev("idle")]
        schedule_request(
            RequestView(util=0.2, mem=0.2, aff="t", anti_aff="x", excl="e"), devices
        )
        chosen = devices[0]
        assert "t" in chosen.aff
        assert "x" in chosen.anti_aff
        assert chosen.excl == "e"
        assert not chosen.idle

    def test_sequential_affinity_requests_pack_together(self):
        devices = [dev("idle1"), dev("idle2")]
        d1 = schedule_request(RequestView(util=0.3, mem=0.3, aff="t"), devices)
        d2 = schedule_request(RequestView(util=0.3, mem=0.3, aff="t"), devices)
        assert d1.gpuid == d2.gpuid


class TestFilterStep:
    """Lines 15-20: candidate filtering for label-free requests."""

    def test_exclusion_mismatch_filtered(self):
        devices = [dev("d1", util=0.9, mem=0.9, excl="teamA", idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1, excl="teamB"), devices)
        assert d.is_new

    def test_matching_exclusion_allowed(self):
        devices = [dev("d1", util=0.9, mem=0.9, excl="teamA", idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1, excl="teamA"), devices)
        assert d.gpuid == "d1"

    def test_unlabeled_request_avoids_exclusive_device(self):
        devices = [dev("d1", util=0.9, mem=0.9, excl="teamA", idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1), devices)
        assert d.is_new

    def test_anti_affinity_filters_device(self):
        devices = [dev("d1", util=0.9, mem=0.9, anti={"solo"}, idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1, anti_aff="solo"), devices)
        assert d.is_new

    def test_resource_shortage_filters_device(self):
        devices = [dev("d1", util=0.05, mem=0.9, idle=False)]
        d = schedule_request(RequestView(util=0.1, mem=0.1), devices)
        assert d.is_new

    def test_idle_device_passes_unconditionally(self):
        # An idle vGPU has no containers: stale labels don't filter it.
        devices = [dev("d1", util=1.0, mem=1.0, idle=True)]
        d = schedule_request(RequestView(util=0.5, mem=0.5, excl="x"), devices)
        assert d.gpuid == "d1"


class TestPlacementStep:
    """Lines 21-26: best fit on unlabeled, worst fit on labeled."""

    def test_best_fit_among_unlabeled(self):
        devices = [
            dev("loose", util=0.9, mem=0.9, idle=False),
            dev("tight", util=0.3, mem=0.3, idle=False),
        ]
        d = schedule_request(RequestView(util=0.2, mem=0.2), devices)
        assert d.gpuid == "tight"

    def test_unlabeled_preferred_over_labeled(self):
        devices = [
            dev("labeled", util=0.9, mem=0.9, aff={"t"}, idle=False),
            dev("plain", util=0.3, mem=0.3, idle=False),
        ]
        d = schedule_request(RequestView(util=0.2, mem=0.2), devices)
        assert d.gpuid == "plain"

    def test_worst_fit_among_labeled_when_no_plain_fits(self):
        devices = [
            dev("lab1", util=0.4, mem=0.4, aff={"a"}, idle=False),
            dev("lab2", util=0.8, mem=0.8, aff={"b"}, idle=False),
        ]
        d = schedule_request(RequestView(util=0.2, mem=0.2), devices)
        # worst fit: the labeled device with the most leftover
        assert d.gpuid == "lab2"

    def test_new_device_as_last_resort(self):
        devices = [dev("full", util=0.05, mem=0.05, idle=False)]
        d = schedule_request(RequestView(util=0.5, mem=0.5), devices)
        assert d.is_new

    def test_resources_deducted_from_chosen_view(self):
        devices = [dev("d1", util=1.0, mem=1.0, idle=True)]
        schedule_request(RequestView(util=0.3, mem=0.4), devices)
        assert devices[0].util == pytest.approx(0.7)
        assert devices[0].mem == pytest.approx(0.6)

    def test_deterministic_tiebreak_by_gpuid(self):
        devices = [
            dev("b", util=0.5, mem=0.5, idle=False),
            dev("a", util=0.5, mem=0.5, idle=False),
        ]
        d = schedule_request(RequestView(util=0.2, mem=0.2), devices)
        assert d.gpuid == "a"


# -- property tests ---------------------------------------------------------

label_strategy = st.one_of(st.none(), st.sampled_from(["red", "blue", "green"]))

request_strategy = st.builds(
    RequestView,
    util=st.floats(0.01, 0.6),
    mem=st.floats(0.01, 0.6),
    aff=label_strategy,
    anti_aff=label_strategy,
    excl=label_strategy,
)


@st.composite
def request_sequences(draw):
    return draw(st.lists(request_strategy, min_size=1, max_size=30))


class TestSequenceProperties:
    """Invariants over arbitrary request sequences (fresh pool)."""

    @given(requests=request_sequences())
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_violated(self, requests):
        devices = []
        for r in requests:
            schedule_request(r, devices)
        for d in devices:
            assert d.util >= -1e-9
            assert d.mem >= -1e-9

    @given(requests=request_sequences())
    @settings(max_examples=150, deadline=None)
    def test_exclusion_never_mixed(self, requests):
        devices = []
        placements = []
        for r in requests:
            decision = schedule_request(r, devices)
            if not decision.rejected:
                placements.append((r, decision.gpuid))
        by_dev = {}
        for r, gpuid in placements:
            by_dev.setdefault(gpuid, []).append(r)
        for gpuid, rs in by_dev.items():
            excls = {r.excl for r in rs}
            assert len(excls) == 1, f"mixed exclusion labels on {gpuid}: {excls}"

    @given(requests=request_sequences())
    @settings(max_examples=150, deadline=None)
    def test_anti_affinity_never_colocated(self, requests):
        devices = []
        placements = []
        for r in requests:
            decision = schedule_request(r, devices)
            if not decision.rejected:
                placements.append((r, decision.gpuid))
        by_dev = {}
        for r, gpuid in placements:
            by_dev.setdefault(gpuid, []).append(r)
        for gpuid, rs in by_dev.items():
            antis = [r.anti_aff for r in rs if r.anti_aff is not None]
            assert len(antis) == len(set(antis)), (
                f"anti-affinity label co-located on {gpuid}"
            )

    @given(requests=request_sequences())
    @settings(max_examples=150, deadline=None)
    def test_affinity_always_colocated(self, requests):
        devices = []
        placements = []
        for r in requests:
            decision = schedule_request(r, devices)
            if not decision.rejected:
                placements.append((r, decision.gpuid))
        by_label = {}
        for r, gpuid in placements:
            if r.aff is not None:
                by_label.setdefault(r.aff, set()).add(gpuid)
        for label, gpuids in by_label.items():
            assert len(gpuids) == 1, f"affinity {label} spread over {gpuids}"

    @given(requests=request_sequences())
    @settings(max_examples=100, deadline=None)
    def test_label_free_requests_never_rejected(self, requests):
        devices = []
        for r in requests:
            if r.aff is None:
                decision = schedule_request(r, devices)
                # a fresh device can always be created
                assert not decision.rejected
            else:
                schedule_request(r, devices)

"""DevMgr recovery: vGPU teardown on GPU/node death and SharePod policy.

When a physical GPU dies (or its node goes NotReady), KubeShare-DevMgr
must tear the affected vGPUs down, release the placeholder, and either
fail the attached SharePods (``restart_policy="never"``) or push them
back through Algorithm 1 (``restart_policy="reschedule"``).
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import GPU_RESOURCE, PodPhase
from repro.core import KubeShare

TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


@pytest.fixture
def ks_cluster(env):
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    ks = KubeShare(cluster, isolation="token").start()
    return cluster, ks


def train(work, mem_bytes=2 * 2**30):
    def wl(ctx):
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        try:
            api.cu_mem_alloc(cu, mem_bytes)
            yield from api.cu_launch_kernel(cu, work)
        finally:
            api.cu_ctx_destroy(cu)
        return "done"

    return wl


def kill_gpu(cluster, uuid):
    """Fail a physical GPU the way the chaos engine does: device error,
    token-daemon drain, device-plugin health flip."""
    gpu = cluster.gpu_by_uuid(uuid)
    node = cluster.node(gpu.node_name)
    gpu.fail()
    node.backend.fail_device(uuid)
    node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=False)


def run_until_running(cluster, ks, name):
    wait = cluster.env.process(ks.wait_for_phase(name, [PodPhase.RUNNING]))
    cluster.env.run(until=wait)
    return ks.get(name)


class TestGpuDeathTeardown:
    def test_vgpu_torn_down_when_its_gpu_dies(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(30.0),
        ))
        sp = run_until_running(cluster, ks, "j1")
        uuid = sp.status.gpu_uuid
        assert len(ks.pool.list()) == 1

        kill_gpu(cluster, uuid)
        cluster.env.run(until=cluster.env.now + 5)
        assert ks.pool.list() == []
        assert ks.devmgr.vgpus_torn_down_total == 1
        # the placeholder pod is gone too
        holders = [p for p in cluster.api.list("Pod")
                   if p.metadata.name.startswith("vgpu-holder-")]
        assert holders == []

    def test_never_policy_fails_the_sharepod(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(30.0),  # restart_policy defaults to "never"
        ))
        sp = run_until_running(cluster, ks, "j1")
        kill_gpu(cluster, sp.status.gpu_uuid)
        cluster.env.run(until=cluster.env.now + 5)
        got = ks.get("j1")
        assert got.status.phase is PodPhase.FAILED
        assert ks.devmgr.sharepods_rescheduled_total == 0

    def test_reschedule_policy_moves_the_sharepod(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(5.0), restart_policy="reschedule",
        ))
        sp = run_until_running(cluster, ks, "j1")
        dead = sp.status.gpu_uuid
        kill_gpu(cluster, dead)

        # It must come back RUNNING on a different physical GPU...
        deadline = cluster.env.now + 30
        while cluster.env.now < deadline:
            cluster.env.run(until=cluster.env.now + 1)
            got = ks.get("j1")
            if got.status.phase is PodPhase.RUNNING and got.status.gpu_uuid != dead:
                break
        got = ks.get("j1")
        assert got.status.phase is PodPhase.RUNNING
        assert got.status.gpu_uuid is not None and got.status.gpu_uuid != dead
        assert ks.devmgr.sharepods_rescheduled_total >= 1

        # ...and run to completion there.
        done = cluster.env.process(ks.wait_all_terminal(["j1"]))
        cluster.env.run(until=done)
        assert ks.get("j1").status.phase is PodPhase.SUCCEEDED

    def test_idle_vgpu_on_dead_gpu_is_released(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(1.0),
        ))
        done = cluster.env.process(ks.wait_all_terminal(["j1"]))
        cluster.env.run(until=done)
        # The vGPU lingers idle in the pool (reuse window). Kill its GPU.
        vgpus = ks.pool.list()
        if vgpus:  # pool policy may have released it already
            kill_gpu(cluster, vgpus[0].uuid)
            cluster.env.run(until=cluster.env.now + 5)
            assert ks.pool.list() == []


class TestNodeDeathTeardown:
    def test_node_not_ready_tears_down_its_vgpus(self, ks_cluster):
        cluster, ks = ks_cluster
        ks.submit(ks.make_sharepod(
            "j1", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.3,
            workload=train(60.0), restart_policy="reschedule",
        ))
        sp = run_until_running(cluster, ks, "j1")
        victim = cluster.node(sp.spec.node_name)
        survivor = [n for n in cluster.nodes if n is not victim][0]
        victim.crash()

        # lease 4 s + monitor tick: NotReady, then teardown + reschedule
        deadline = cluster.env.now + 40
        while cluster.env.now < deadline:
            cluster.env.run(until=cluster.env.now + 1)
            got = ks.get("j1")
            if (got.status.phase is PodPhase.RUNNING
                    and got.spec.node_name == survivor.name):
                break
        got = ks.get("j1")
        assert got.spec.node_name == survivor.name
        assert got.status.phase is PodPhase.RUNNING
        assert all(v.node_name != victim.name for v in ks.pool.list())

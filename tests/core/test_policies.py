"""Unit tests for vGPU pool policies (§4.4)."""

import pytest

from repro.core.policies import HybridPolicy, OnDemandPolicy, ReservationPolicy
from repro.core.vgpu import VGPU, VGPUPhase, VGPUPool


def pool_with_idle(n):
    pool = VGPUPool()
    for i in range(n):
        pool.add(VGPU(gpuid=f"g{i}", phase=VGPUPhase.IDLE))
    return pool


class TestOnDemand:
    def test_always_releases(self):
        pool = pool_with_idle(1)
        assert OnDemandPolicy().release_on_idle(pool, pool.get("g0"))


class TestReservation:
    def test_unbounded_keeps_everything(self):
        pool = pool_with_idle(10)
        policy = ReservationPolicy(max_idle=None)
        assert not policy.release_on_idle(pool, pool.get("g0"))
        assert policy.idle_ttl is None

    def test_bounded_releases_beyond_max(self):
        policy = ReservationPolicy(max_idle=2)
        assert not policy.release_on_idle(pool_with_idle(2), VGPU(gpuid="x"))
        assert policy.release_on_idle(pool_with_idle(3), VGPU(gpuid="x"))

    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            ReservationPolicy(max_idle=-1)


class TestHybrid:
    def test_combines_count_and_ttl(self):
        policy = HybridPolicy(max_idle=1, idle_ttl=10.0)
        assert policy.idle_ttl == 10.0
        assert not policy.release_on_idle(pool_with_idle(1), VGPU(gpuid="x"))
        assert policy.release_on_idle(pool_with_idle(2), VGPU(gpuid="x"))
        assert policy.release_on_ttl(pool_with_idle(1), VGPU(gpuid="x"))

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            HybridPolicy(idle_ttl=0)

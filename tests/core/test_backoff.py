"""The shared retry-delay vocabulary (:mod:`repro.core.backoff`).

Every retry loop in the simulator — controller requeue, revocation
requeue, informer reconnect, elector error ticks, inter-cluster RPC —
delegates here, so these properties underwrite all of them: determinism
(same name ⇒ same delay stream, across processes), exponential floors,
hard caps, and per-key state that resets cleanly.
"""

import pytest

from repro.core.backoff import DecorrelatedJitter, expo_backoff


class TestExpoBackoff:
    def test_doubles_from_base(self):
        assert expo_backoff(1, base=0.5, cap=8.0) == 0.5
        assert expo_backoff(2, base=0.5, cap=8.0) == 1.0
        assert expo_backoff(3, base=0.5, cap=8.0) == 2.0

    def test_capped(self):
        assert expo_backoff(50, base=0.5, cap=8.0) == 8.0

    def test_count_below_one_is_base(self):
        assert expo_backoff(0, base=0.5, cap=8.0) == 0.5
        assert expo_backoff(-3, base=0.5, cap=8.0) == 0.5


class TestDecorrelatedJitter:
    def test_stream_is_deterministic_per_name(self):
        a = [DecorrelatedJitter("x", 0.1, 2.0).next("k", n) for n in range(1, 8)]
        b = [DecorrelatedJitter("x", 0.1, 2.0).next("k", n) for n in range(1, 8)]
        assert a == b

    def test_different_names_decorrelate(self):
        a = [DecorrelatedJitter("x", 0.1, 2.0).next("k", n) for n in range(1, 8)]
        b = [DecorrelatedJitter("y", 0.1, 2.0).next("k", n) for n in range(1, 8)]
        assert a != b

    def test_never_undercuts_exponential_floor(self):
        policy = DecorrelatedJitter("floor", 0.1, 2.0)
        for n in range(1, 12):
            delay = policy.next("k", n)
            assert delay >= min(0.1 * 2 ** (n - 1), 2.0) - 1e-12
            assert delay <= 2.0 + 1e-12

    def test_streak_counts_and_resets(self):
        policy = DecorrelatedJitter("s", 0.1, 2.0)
        policy.next("k")
        policy.next("k")
        assert policy.streak("k") == 2
        policy.reset("k")
        assert policy.streak("k") == 0
        assert "k" not in policy

    def test_pending_lists_keys_sorted(self):
        policy = DecorrelatedJitter("p", 0.1, 2.0)
        policy.next("b")
        policy.next("a")
        assert policy.pending() == ["a", "b"]
        policy.reset("a")
        policy.reset("b")
        assert policy.pending() == []

    def test_keys_are_independent(self):
        policy = DecorrelatedJitter("i", 0.1, 2.0)
        for _ in range(6):
            policy.next("hot")
        first_cold = policy.next("cold")
        # A fresh key starts from the base schedule, not the hot key's.
        assert first_cold <= 3 * 0.1 + 1e-12

    def test_explicit_rng_overrides_seed(self):
        import random

        a = DecorrelatedJitter("x", 0.1, 2.0, rng=random.Random(7)).next("k")
        b = DecorrelatedJitter("y", 0.1, 2.0, rng=random.Random(7)).next("k")
        assert a == pytest.approx(b)

"""Property tests: the calendar queue is observationally identical to the
reference heap.

:class:`repro.sim.calqueue.CalendarQueue` promises the exact ``(time,
priority, seq)`` pop order of :class:`HeapQueue` for *any* interleaving
of pushes and pops — that equivalence is what lets the perf harness
demand byte-identical summaries across kernel modes. Hypothesis drives
both backends through adversarial sequences covering the cases where the
bucketed design could plausibly diverge:

* same-tick ties (entries at the same time, ordered by priority then
  sequence number inside one bucket's lazy sort),
* far-future entries that park in the overflow heap and must surface
  through one or more window rebases,
* below-window pushes right after a rebase (the clamp-into-bucket-0
  boundary case),
* cancel/reschedule via tombstones drained by the environment's shared
  ``_pop_live`` helper, exactly as the kernel does it.
"""

from itertools import count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calqueue import CalendarQueue, HeapQueue
from repro.sim.environment import _pop_live

# Times mix a coarse grid (forcing same-tick collisions), a dense near
# range, and a far range that lands well past a 64-bucket x 0.05s window
# so entries park in the overflow heap and resurface via rebases.
_TIMES = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0, 5.0]),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=500.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_PRIORITIES = st.integers(min_value=0, max_value=2)

_PUSH_POP_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES, _PRIORITIES),
        st.tuples(st.just("pop")),
    ),
    max_size=300,
)


def _small_calendar() -> CalendarQueue:
    # A deliberately tiny window (64 buckets x 0.05s = 3.2s) so the far
    # time range overflows and mid-size runs trigger several rebases and
    # the adaptive width/bucket-count resizing.
    return CalendarQueue(width=0.05, nbuckets=64)


class TestPopOrderEquivalence:
    @given(ops=_PUSH_POP_OPS)
    @settings(max_examples=150, deadline=None)
    def test_interleaved_push_pop_identical(self, ops):
        heap, cal = HeapQueue(), _small_calendar()
        seq = count()
        now = 0.0  # pushes are now-relative, like Environment.schedule
        for op in ops:
            if op[0] == "push":
                entry = (now + op[1], op[2], next(seq), None)
                heap.push(entry)
                cal.push(entry)
            else:
                assert len(heap) == len(cal)
                if not len(heap):
                    continue
                a, b = heap.pop(), cal.pop()
                assert a == b
                now = a[0]
        while len(heap):
            assert heap.pop() == cal.pop()
        assert len(cal) == 0

    @given(
        times=st.lists(_TIMES, min_size=1, max_size=200),
        priorities=st.lists(_PRIORITIES, min_size=1, max_size=200),
    )
    @settings(max_examples=150, deadline=None)
    def test_bulk_load_drains_in_sorted_order(self, times, priorities):
        # Absolute (not now-relative) times: pushes may land below the
        # window after a mid-drain rebase, hitting the bucket-0 clamp.
        cal = _small_calendar()
        entries = [
            (t, priorities[i % len(priorities)], i, None)
            for i, t in enumerate(times)
        ]
        for e in entries:
            cal.push(e)
        assert [cal.pop() for _ in entries] == sorted(entries)


class _Ev:
    """Just enough of an Event for the ``_pop_live`` tombstone drain."""

    __slots__ = ("callbacks", "_cancelled")

    def __init__(self) -> None:
        self.callbacks = []
        self._cancelled = False


_KERNEL_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _TIMES, _PRIORITIES),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10**6)),
        st.tuples(
            st.just("reschedule"),
            st.integers(min_value=0, max_value=10**6),
            _TIMES,
            _PRIORITIES,
        ),
    ),
    max_size=200,
)


class TestKernelTombstoneEquivalence:
    @given(ops=_KERNEL_OPS)
    @settings(max_examples=150, deadline=None)
    def test_cancel_reschedule_pop_live_identical(self, ops):
        """Drive both backends through the environment's actual drain.

        Cancellation is lazy — a tombstoned event flows through either
        backend and is discarded by ``_pop_live`` — and a reschedule is
        cancel + fresh entry with a new sequence number, exactly what
        ``Timeout``/``Process`` rescheduling does. The *live* pop
        sequences must match entry for entry.
        """
        heap, cal = HeapQueue(), _small_calendar()
        seq = count()
        pending = []  # events scheduled and not yet cancelled

        def schedule(t, prio):
            ev = _Ev()
            entry = (t, prio, next(seq), ev)
            heap.push(entry)
            cal.push(entry)
            pending.append((t, prio, ev))

        for op in ops:
            if op[0] == "schedule":
                schedule(op[1], op[2])
            elif op[0] == "cancel" and pending:
                _, _, ev = pending.pop(op[1] % len(pending))
                ev._cancelled = True
            elif op[0] == "reschedule" and pending:
                t, prio, ev = pending.pop(op[1] % len(pending))
                ev._cancelled = True
                schedule(t + 1.0, prio)

        while True:
            try:
                a = _pop_live(heap.pop)
            except IndexError:
                a = None
            try:
                b = _pop_live(cal.pop)
            except IndexError:
                b = None
            assert a == b
            if a is None:
                break


class TestBoundaryRegressions:
    """Deterministic witnesses for the docstring's boundary cases."""

    def test_same_tick_priority_ties(self):
        cal = _small_calendar()
        entries = [(5.0, p, s, None) for s, p in enumerate([2, 0, 1, 0, 2, 1])]
        for e in entries:
            cal.push(e)
        # One bucket, one lazy sort: priority breaks the time tie, then
        # the sequence number breaks the priority tie.
        assert [cal.pop() for _ in entries] == sorted(entries)

    def test_far_future_survives_multiple_rebases(self):
        cal = _small_calendar()
        far = (9_999.0, 0, 0, None)
        cal.push(far)
        near = [(float(i), 0, i + 1, None) for i in range(1, 40)]
        for e in near:
            cal.push(e)
        drained = [cal.pop() for _ in range(len(near) + 1)]
        assert drained == sorted(near) + [far]

    def test_below_window_push_after_rebase(self):
        cal = _small_calendar()
        cal.push((100.0, 0, 0, None))
        assert cal.pop()[0] == 100.0  # window now starts around t=100
        late = (1.0, 0, 1, None)  # maps below the base: bucket-0 clamp
        ahead = (100.5, 0, 2, None)
        cal.push(ahead)
        cal.push(late)
        assert cal.pop() == late
        assert cal.pop() == ahead

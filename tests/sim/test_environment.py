"""Unit tests for the Environment: clock, run(), determinism."""

import pytest

from repro.sim import EmptySchedule, Environment


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=7.5).now == 7.5

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2.0

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_time_stops_clock(self, env):
        def ticker(env):
            while True:
                yield env.timeout(1)

        env.process(ticker(env))
        env.run(until=10)
        assert env.now == 10.0

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(3)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"
        assert env.now == 3.0

    def test_run_until_past_raises(self, env):
        env.process(iter_timeout(env, 5))
        env.run(until=4)
        with pytest.raises(ValueError):
            env.run(until=2)

    def test_run_until_never_triggered_event_raises(self, env):
        ev = env.event()  # nobody will trigger this
        env.timeout(1)
        with pytest.raises(RuntimeError):
            env.run(until=ev)

    def test_run_drains_queue(self, env):
        done = []

        def proc(env):
            yield env.timeout(2)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]
        assert env.peek() == float("inf")

    def test_events_at_until_time_still_run(self, env):
        fired = []

        def proc(env):
            yield env.timeout(10)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=10)
        assert fired == [10.0]


def iter_timeout(env, t):
    yield env.timeout(t)


class TestProcessSemantics:
    def test_return_value(self, env):
        def proc(env):
            yield env.timeout(1)
            return 99

        p = env.process(proc(env))
        env.run()
        assert p.value == 99

    def test_exit_legacy_style(self, env):
        def proc(env):
            yield env.timeout(1)
            env.exit("bye")

        p = env.process(proc(env))
        env.run()
        assert p.value == "bye"

    def test_process_is_waitable(self, env):
        def worker(env):
            yield env.timeout(4)
            return "product"

        def boss(env):
            result = yield env.process(worker(env))
            return (env.now, result)

        b = env.process(boss(env))
        env.run()
        assert b.value == (4.0, "product")

    def test_unhandled_process_failure_crashes_run(self, env):
        def proc(env):
            yield env.timeout(1)
            raise KeyError("oops")

        env.process(proc(env))
        with pytest.raises(KeyError):
            env.run()

    def test_waiting_process_can_catch_failure(self, env):
        def bad(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def guard(env):
            try:
                yield env.process(bad(env))
            except ValueError as err:
                return str(err)

        g = env.process(guard(env))
        env.run()
        assert g.value == "inner"

    def test_yield_non_event_fails_process(self, env):
        def proc(env):
            yield 42  # not an Event

        env.process(proc(env))
        with pytest.raises(RuntimeError, match="non-event"):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(ValueError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yield_already_processed_event_continues(self, env):
        def proc(env):
            t = env.timeout(1)
            yield t
            # yield the same (now processed) event again: resumes instantly
            yield t
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1.0

    def test_active_process_visible_inside(self, env):
        seen = []

        def proc(env):
            seen.append(env.active_process)
            yield env.timeout(0)

        p = env.process(proc(env))
        env.run()
        assert seen == [p]
        assert env.active_process is None


class TestDeterminism:
    def test_fifo_order_for_simultaneous_events(self, env):
        order = []

        def make(tag):
            def proc(env):
                yield env.timeout(5)
                order.append(tag)

            return proc

        for tag in "abcde":
            env.process(make(tag)(env))
        env.run()
        assert order == list("abcde")

    def test_two_runs_are_identical(self):
        def trace_run():
            env = Environment()
            trace = []

            def worker(env, wid, delay):
                for i in range(3):
                    yield env.timeout(delay)
                    trace.append((env.now, wid, i))

            for wid, delay in enumerate([1.0, 1.5, 0.5]):
                env.process(worker(env, wid, delay))
            env.run()
            return trace

        assert trace_run() == trace_run()

"""Unit tests for Resource / Container / Store primitives."""

import pytest

from repro.sim import (
    Container,
    Environment,
    FilterStore,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_counts(self, env):
        res = Resource(env, capacity=2)

        def user(env, res, hold):
            with res.request() as req:
                yield req
                yield env.timeout(hold)

        env.process(user(env, res, 5))
        env.process(user(env, res, 5))
        env.process(user(env, res, 5))
        env.run(until=1)
        assert res.count == 2
        assert len(res.queue) == 1
        env.run()
        assert res.count == 0

    def test_fifo_grant_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(env, res, tag):
            with res.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        for tag in "abc":
            env.process(user(env, res, tag))
        env.run()
        assert order == list("abc")

    def test_release_frees_slot_for_waiter(self, env):
        res = Resource(env, capacity=1)
        times = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def waiter(env, res):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                times.append(env.now)

        env.process(holder(env, res))
        env.process(waiter(env, res))
        env.run()
        assert times == [10.0]

    def test_release_foreign_request_raises(self, env):
        res = Resource(env, capacity=1)

        def proc(env, res):
            req = res.request()
            yield req
            res.release(req)
            with pytest.raises(RuntimeError):
                res.release(req)

        env.process(proc(env, res))
        env.run()

    def test_cancel_pending_request_via_with(self, env):
        res = Resource(env, capacity=1)
        got_it = []

        def holder(env, res):
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def impatient(env, res):
            yield env.timeout(1)
            req = res.request()
            result = yield req | env.timeout(2)
            if req not in result:
                req.cancel()
                got_it.append("gave up")
            else:
                res.release(req)

        def third(env, res):
            yield env.timeout(4)
            with res.request() as req:
                yield req
                got_it.append(env.now)

        env.process(holder(env, res))
        env.process(impatient(env, res))
        env.process(third(env, res))
        env.run()
        assert got_it == ["gave up", 10.0]


class TestPriorityResource:
    def test_low_priority_value_served_first(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def user(env, prio, tag):
            yield env.timeout(1)
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)
                yield env.timeout(1)

        env.process(holder(env))
        env.process(user(env, 5, "low"))
        env.process(user(env, 1, "high"))
        env.run()
        assert order == ["high", "low"]


class TestContainer:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=1, init=2)

    def test_put_get_levels(self, env):
        tank = Container(env, capacity=10, init=5)

        def proc(env, tank):
            yield tank.get(3)
            assert tank.level == 2
            yield tank.put(8)
            assert tank.level == 10

        env.process(proc(env, tank))
        env.run()
        assert tank.level == 10

    def test_get_blocks_until_available(self, env):
        tank = Container(env, capacity=10, init=0)
        times = []

        def consumer(env, tank):
            yield tank.get(4)
            times.append(env.now)

        def producer(env, tank):
            yield env.timeout(3)
            yield tank.put(2)
            yield env.timeout(3)
            yield tank.put(2)

        env.process(consumer(env, tank))
        env.process(producer(env, tank))
        env.run()
        assert times == [6.0]

    def test_put_blocks_at_capacity(self, env):
        tank = Container(env, capacity=5, init=5)
        times = []

        def producer(env, tank):
            yield tank.put(3)
            times.append(env.now)

        def consumer(env, tank):
            yield env.timeout(2)
            yield tank.get(3)

        env.process(producer(env, tank))
        env.process(consumer(env, tank))
        env.run()
        assert times == [2.0]

    def test_invalid_amounts(self, env):
        tank = Container(env, capacity=5)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)


class TestStore:
    def test_fifo(self, env):
        store = Store(env)
        received = []

        def producer(env, store):
            for item in ["x", "y", "z"]:
                yield store.put(item)

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert received == ["x", "y", "z"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        times = []

        def consumer(env, store):
            yield store.get()
            times.append(env.now)

        def producer(env, store):
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert times == [7.0]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer(env, store):
            yield store.put(1)
            yield store.put(2)
            times.append(env.now)

        def consumer(env, store):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert times == [5.0]

    def test_items_visible(self, env):
        store = Store(env)

        def proc(env, store):
            yield store.put("a")
            yield store.put("b")

        env.process(proc(env, store))
        env.run()
        assert store.items == ["a", "b"]


class TestFilterStore:
    def test_filter_skips_non_matching(self, env):
        store = FilterStore(env)
        got = []

        def producer(env, store):
            for item in [1, 2, 3, 4]:
                yield store.put(item)

        def picky(env, store):
            item = yield store.get(lambda x: x % 2 == 0)
            got.append(item)

        env.process(producer(env, store))
        env.process(picky(env, store))
        env.run()
        assert got == [2]
        assert store.items == [1, 3, 4]

    def test_filter_waits_for_match(self, env):
        store = FilterStore(env)
        got = []

        def picky(env, store):
            item = yield store.get(lambda x: x == "wanted")
            got.append((env.now, item))

        def producer(env, store):
            yield env.timeout(1)
            yield store.put("other")
            yield env.timeout(1)
            yield store.put("wanted")

        env.process(picky(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [(2.0, "wanted")]


class TestPriorityStore:
    def test_items_pop_in_priority_order(self, env):
        store = PriorityStore(env)
        got = []

        def producer(env, store):
            yield store.put(PriorityItem(3, "c"))
            yield store.put(PriorityItem(1, "a"))
            yield store.put(PriorityItem(2, "b"))

        def consumer(env, store):
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                got.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["a", "b", "c"]

    def test_equal_priority_is_fifo(self, env):
        store = PriorityStore(env)
        got = []

        def producer(env, store):
            for tag in ["first", "second"]:
                yield store.put(PriorityItem(1, tag))

        def consumer(env, store):
            yield env.timeout(1)
            for _ in range(2):
                item = yield store.get()
                got.append(item.item)

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert got == ["first", "second"]

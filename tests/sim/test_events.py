"""Unit tests for the event primitives of the DES kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Timeout,
)


@pytest.fixture
def env():
    return Environment()


class TestEventStates:
    def test_fresh_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_unavailable_until_triggered(self, env):
        ev = env.event()
        with pytest.raises(AttributeError):
            _ = ev.value

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_fail_sets_not_ok(self, env):
        ev = env.event()
        exc = ValueError("boom")
        ev.fail(exc)
        assert ev.triggered
        assert not ev.ok
        assert ev.value is exc

    def test_trigger_copies_outcome(self, env):
        src = env.event()
        src.succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.triggered and dst.ok and dst.value == "payload"

    def test_trigger_from_untriggered_raises(self, env):
        src = env.event()
        dst = env.event()
        with pytest.raises(RuntimeError):
            dst.trigger(src)

    def test_processed_after_run(self, env):
        ev = env.event()
        ev.succeed()
        env.run()
        assert ev.processed


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1)

    def test_timeout_fires_at_delay(self, env):
        times = []

        def proc(env):
            yield env.timeout(5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [5.0]

    def test_timeout_carries_value(self, env):
        results = []

        def proc(env):
            v = yield env.timeout(1, value="done")
            results.append(v)

        env.process(proc(env))
        env.run()
        assert results == ["done"]

    def test_zero_delay_allowed(self, env):
        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc(env):
            t1 = env.timeout(2, value="a")
            t2 = env.timeout(5, value="b")
            result = yield env.all_of([t1, t2])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (5.0, ["a", "b"])

    def test_any_of_fires_on_first(self, env):
        def proc(env):
            t1 = env.timeout(2, value="fast")
            t2 = env.timeout(5, value="slow")
            result = yield env.any_of([t1, t2])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value[0] == 2.0
        assert p.value[1] == ["fast"]

    def test_and_operator(self, env):
        def proc(env):
            yield env.timeout(1) & env.timeout(3)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 3.0

    def test_or_operator(self, env):
        def proc(env):
            yield env.timeout(1) | env.timeout(3)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 1.0

    def test_empty_all_of_fires_immediately(self, env):
        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0

    def test_condition_failure_propagates(self, env):
        def failer(env):
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter(env):
            f = env.process(failer(env))
            t = env.timeout(10)
            with pytest.raises(ValueError):
                yield env.all_of([f, t])
            return "handled"

        p = env.process(waiter(env))
        env.run()
        assert p.value == "handled"

    def test_condition_value_mapping(self, env):
        def proc(env):
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(2, value="y")
            result = yield AllOf(env, [t1, t2])
            return (result[t1], result[t2], t1 in result, len(list(result.keys())))

        p = env.process(proc(env))
        env.run()
        assert p.value == ("x", "y", True, 2)

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AnyOf(env, [env.timeout(1), other.timeout(1)])


class TestInterrupt:
    def test_interrupt_reaches_process(self, env):
        log = []

        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt as err:
                log.append((env.now, err.cause))

        def attacker(env, victim_proc):
            yield env.timeout(3)
            victim_proc.interrupt("stop it")

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert log == [(3.0, "stop it")]

    def test_interrupted_process_can_continue(self, env):
        def victim(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        def attacker(env, v):
            yield env.timeout(2)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert v.value == 7.0

    def test_interrupt_dead_process_raises(self, env):
        def quick(env):
            yield env.timeout(1)

        def late(env, q):
            yield env.timeout(5)
            with pytest.raises(RuntimeError):
                q.interrupt()

        q = env.process(quick(env))
        env.process(late(env, q))
        env.run()

    def test_self_interrupt_rejected(self, env):
        def proc(env):
            me = env.active_process
            with pytest.raises(RuntimeError):
                me.interrupt()
            yield env.timeout(0)

        env.process(proc(env))
        env.run()

    def test_interrupt_does_not_double_resume(self, env):
        """After an interrupt, the original target must not resume us."""
        resumes = []

        def victim(env):
            try:
                yield env.timeout(10)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(20)
            resumes.append("after")

        def attacker(env, v):
            yield env.timeout(1)
            v.interrupt()

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run()
        assert resumes == ["interrupt", "after"]

"""Additional DES kernel edge cases and stress scenarios."""

import pytest

from repro.sim import (
    AnyOf,
    ConditionValue,
    Environment,
    Interrupt,
)


@pytest.fixture
def env():
    return Environment()


class TestConditionEdgeCases:
    def test_nested_conditions_flatten_values(self, env):
        def proc(env):
            t1 = env.timeout(1, value="a")
            t2 = env.timeout(2, value="b")
            t3 = env.timeout(3, value="c")
            result = yield (t1 & t2) & t3
            return list(result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["a", "b", "c"]

    def test_mixed_and_or(self, env):
        def proc(env):
            fast = env.timeout(1, value="fast")
            slow = env.timeout(10, value="slow")
            med = env.timeout(2, value="med")
            yield (fast & med) | slow
            return env.now

        p = env.process(proc(env))
        env.run(until=20)
        assert p.value == 2.0

    def test_anyof_with_already_processed_event(self, env):
        def proc(env):
            t = env.timeout(1)
            yield t
            # t is processed; AnyOf should fire immediately
            yield AnyOf(env, [t, env.timeout(100)])
            return env.now

        p = env.process(proc(env))
        env.run(until=5)
        assert p.value == 1.0

    def test_condition_value_equality(self, env):
        ev = env.event()
        ev.succeed(1)
        env.run()
        cv = ConditionValue()
        cv.events.append(ev)
        assert cv == {ev: 1}
        assert cv == cv
        with pytest.raises(KeyError):
            _ = cv[env.event()]


class TestEventOrdering:
    def test_urgent_initialize_beats_normal_events(self, env):
        order = []

        def early(env):
            order.append("early")
            yield env.timeout(0)

        def trigger(env):
            yield env.timeout(1)
            # Creating a process schedules its Initialize URGENT at t=1,
            # before the pending NORMAL timeout also due at t=1.
            env.process(early(env))

        def normal(env):
            yield env.timeout(1)
            order.append("normal")

        env.process(trigger(env))
        env.process(normal(env))
        env.run()
        assert order == ["early", "normal"]

    def test_many_simultaneous_timeouts_fifo(self, env):
        fired = []

        def make(i):
            def proc(env):
                yield env.timeout(1)
                fired.append(i)

            return proc

        for i in range(200):
            env.process(make(i)(env))
        env.run()
        assert fired == list(range(200))


class TestProcessStress:
    def test_deep_process_chains(self, env):
        def leaf(env):
            yield env.timeout(1)
            return 1

        def node(env, depth):
            if depth == 0:
                value = yield env.process(leaf(env))
            else:
                value = yield env.process(node(env, depth - 1))
            return value + 1

        p = env.process(node(env, 50))
        env.run()
        assert p.value == 52

    def test_interrupt_storm(self, env):
        """Many interrupts against one process must each be delivered."""
        caught = []

        def victim(env):
            for _ in range(10):
                try:
                    yield env.timeout(100)
                except Interrupt as err:
                    caught.append(err.cause)

        def attacker(env, v):
            for i in range(10):
                yield env.timeout(1)
                if v.is_alive:
                    v.interrupt(i)

        v = env.process(victim(env))
        env.process(attacker(env, v))
        env.run(until=50)
        assert caught == list(range(10))

    def test_event_shared_by_many_waiters(self, env):
        gate = env.event()
        woken = []

        def waiter(env, i):
            value = yield gate
            woken.append((i, value))

        for i in range(20):
            env.process(waiter(env, i))

        def opener(env):
            yield env.timeout(3)
            gate.succeed("go")

        env.process(opener(env))
        env.run()
        assert len(woken) == 20
        assert all(v == "go" for _, v in woken)

    def test_failed_event_defused_by_all_waiters(self, env):
        gate = env.event()
        outcomes = []

        def waiter(env):
            try:
                yield gate
            except ValueError:
                outcomes.append("caught")

        for _ in range(3):
            env.process(waiter(env))

        def failer(env):
            yield env.timeout(1)
            gate.fail(ValueError("boom"))

        env.process(failer(env))
        env.run()
        assert outcomes == ["caught"] * 3

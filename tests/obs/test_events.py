"""Kubernetes-style Event semantics: dedup/count, apiserver write-through,
and outage buffering (observability must never take a controller down)."""

import pytest

from repro.cluster.apiserver import APIServer
from repro.cluster.objects import ObjectMeta
from repro.obs.kevents import EVENT_WARNING, EventRecorder, events_table
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    server = APIServer(env)
    server.register_crd("SharePod")
    server.register_crd("Event")
    return server


def tick(env, until):
    """Advance virtual time (the recorder stamps events with env.now)."""

    def idle():
        yield env.timeout(until - env.now)

    proc = env.process(idle())
    env.run(until=proc)


class TestDedup:
    def test_identical_emits_bump_count(self, env):
        rec = EventRecorder(env)
        first = rec.emit("FailedScheduling", "no GPU fits", "SharePod", "sp0")
        tick(env, 3.0)
        second = rec.emit("FailedScheduling", "no GPU fits", "SharePod", "sp0")
        assert second is first
        assert len(rec.ledger) == 1
        assert first.count == 2
        assert first.first_time == 0.0
        assert first.last_time == 3.0
        assert rec.emitted_total == 2

    def test_dedup_key_includes_message_and_source(self, env):
        rec = EventRecorder(env)
        rec.emit("FailedScheduling", "no GPU fits", "SharePod", "sp0")
        rec.emit("FailedScheduling", "node cordoned", "SharePod", "sp0")
        rec.emit("FailedScheduling", "no GPU fits", "SharePod", "sp0", source="shadow")
        assert len(rec.ledger) == 3
        assert all(e.count == 1 for e in rec.ledger)

    def test_dedup_key_includes_involved_object(self, env):
        rec = EventRecorder(env)
        rec.emit("Evicted", "node lost", "Pod", "p0")
        rec.emit("Evicted", "node lost", "Pod", "p1")
        assert len(rec.ledger) == 2

    def test_uids_are_recorder_local(self, env):
        # Event uids come from the recorder's own counter, so emitting
        # events must not shift the shared ObjectMeta uid sequence (the
        # tracing-on-vs-off determinism guarantee rests on this).
        before = ObjectMeta(name="probe-a").uid
        rec = EventRecorder(env)
        ev = rec.emit("Scheduled", "bound", "SharePod", "sp0")
        after = ObjectMeta(name="probe-b").uid
        assert ev.metadata.uid.startswith("evt-")
        n_before = int(before.split("-")[1])
        n_after = int(after.split("-")[1])
        assert n_after == n_before + 1

    def test_views(self, env):
        rec = EventRecorder(env)
        rec.emit("Scheduled", "bound", "SharePod", "sp0")
        rec.emit("Evicted", "node lost", "Pod", "p0", type=EVENT_WARNING)
        assert [e.reason for e in rec.for_object("sp0")] == ["Scheduled"]
        assert rec.for_object("sp0", kind="Pod") == []
        assert [e.involved_name for e in rec.by_reason("Evicted")] == ["p0"]
        table = events_table(rec.to_dicts())
        assert "Scheduled" in table and "pod/p0" in table


class TestWriteThrough:
    def test_event_stored_through_apiserver(self, env, api):
        rec = EventRecorder(env, api=api)
        rec.emit("Scheduled", "bound to GPU0", "SharePod", "sp0")
        [stored] = api.list("Event")
        assert stored.reason == "Scheduled"
        assert stored.count == 1
        assert rec.pending_writes == 0

    def test_repeat_emit_patches_stored_count(self, env, api):
        rec = EventRecorder(env, api=api)
        rec.emit("FailedScheduling", "no fit", "SharePod", "sp0")
        tick(env, 2.0)
        rec.emit("FailedScheduling", "no fit", "SharePod", "sp0")
        [stored] = api.list("Event")
        assert stored.count == 2
        assert stored.last_time == 2.0

    def test_outage_buffers_instead_of_raising(self, env, api):
        rec = EventRecorder(env, api=api)
        api.set_outage(5.0)
        rec.emit("Evicted", "node lost", "Pod", "p0")  # must not raise
        assert rec.pending_writes == 1
        assert rec.failed_writes == 1
        assert len(rec.ledger) == 1  # the local ledger is the truth

    def test_backlog_flushes_after_outage(self, env, api):
        rec = EventRecorder(env, api=api)
        api.set_outage(5.0)
        rec.emit("Evicted", "node lost", "Pod", "p0")
        rec.emit("Evicted", "node lost", "Pod", "p1")
        assert rec.pending_writes == 2
        tick(env, 6.0)  # outage over
        rec.emit("Scheduled", "bound", "SharePod", "sp0")  # triggers flush
        assert rec.pending_writes == 0
        stored = {e.involved_name for e in api.list("Event")}
        assert stored == {"p0", "p1", "sp0"}

    def test_explicit_flush_drains_backlog(self, env, api):
        rec = EventRecorder(env, api=api)
        api.set_outage(5.0)
        rec.emit("Evicted", "node lost", "Pod", "p0")
        tick(env, 6.0)
        assert rec.flush() == 1
        assert rec.pending_writes == 0

"""Wall-clock profiler: dispatch semantics preserved, attribution named,
folded output well-formed, hook installed/removed cleanly."""

import pytest

from repro.obs.profile import WallProfiler
from repro.obs.runtime import ObsHub, disable, enable
from repro.sim import Environment, environment as env_mod


@pytest.fixture(autouse=True)
def _clean_hook():
    yield
    env_mod.set_profile_hook(None)


def _busy_env():
    env = Environment()

    def worker(n):
        for _ in range(n):
            sum(range(500))
            yield env.timeout(1.0)

    env.process(worker(5), name="kubeshare-sched:reconcile")
    env.process(worker(3), name="kubelet:node00")
    return env


class TestDispatch:
    def test_schedule_identical_with_and_without_profiler(self):
        def trace(profiled):
            env = Environment()
            log = []

            def worker(name, delay):
                for i in range(4):
                    log.append((round(env.now, 6), name, i))
                    yield env.timeout(delay)

            env.process(worker("a", 1.0), name="a")
            env.process(worker("b", 1.5), name="b")
            prof = WallProfiler(env).install() if profiled else None
            env.run(until=10.0)
            if prof is not None:
                prof.uninstall()
            return log, env.events_processed

        plain = trace(profiled=False)
        profiled = trace(profiled=True)
        assert plain == profiled

    def test_exceptions_propagate_and_are_still_sampled(self):
        env = Environment()

        def boom():
            yield env.timeout(1.0)
            raise RuntimeError("kaboom")

        env.process(boom(), name="faulty:proc")
        prof = WallProfiler(env).install()
        with pytest.raises(RuntimeError, match="kaboom"):
            env.run(until=5.0)
        assert any(frames[0] == "faulty" for frames in prof.samples)

    def test_uninstall_restores_plain_dispatch(self):
        env = _busy_env()
        prof = WallProfiler(env).install()
        env.run(until=2.0)
        seen = prof.dispatches
        assert seen > 0
        prof.uninstall()
        env.run(until=10.0)
        assert prof.dispatches == seen  # no samples after uninstall
        assert env_mod._PROFILE is None


class TestAttribution:
    def test_subsystem_is_first_name_segment(self):
        env = _busy_env()
        prof = WallProfiler(env).install()
        env.run(until=10.0)
        prof.uninstall()
        subsystems = {name for name, _ in prof.by_subsystem()}
        assert "kubeshare-sched" in subsystems
        assert "kubelet" in subsystems
        assert prof.attributed_fraction() >= 0.9
        assert prof.total_seconds > 0

    def test_span_stack_extends_frames(self):
        env = Environment()
        hub = enable(ObsHub(env, label="prof"))
        try:
            def worker():
                with hub.tracer.span("reconcile", "kubeshare-sched"):
                    yield env.timeout(1.0)
                    with hub.tracer.span("bind", "kubeshare-sched"):
                        yield env.timeout(1.0)

            env.process(worker(), name="kubeshare-sched:worker")
            hub.start_profiler()
            env.run(until=5.0)
            stacks = set(hub.profiler.samples)
        finally:
            disable()
        assert any("reconcile" in frames for frames in stacks)
        assert any(
            frames[-2:] == ("reconcile", "bind") for frames in stacks
        ), stacks

    def test_folded_lines_are_speedscope_parsable(self, tmp_path):
        env = _busy_env()
        prof = WallProfiler(env).install()
        env.run(until=10.0)
        prof.uninstall()
        paths = prof.export(str(tmp_path), "smoke")
        assert [p.rsplit("/", 1)[-1] for p in paths] == [
            "smoke.folded",
            "smoke.profile.json",
        ]
        with open(paths[0]) as fh:
            for line in fh.read().strip().splitlines():
                stack, _, count = line.rpartition(" ")
                assert stack, line
                assert int(count) > 0  # integer counts, no floats
                assert " " not in stack  # frames must not contain spaces


class TestHubLifecycle:
    def test_disable_uninstalls_profiler(self):
        env = Environment()
        hub = enable(ObsHub(env, label="prof").start_profiler())
        assert env_mod._PROFILE is hub.profiler
        disable()
        assert env_mod._PROFILE is None

"""Streaming histogram mechanics: Prometheus bucket semantics, exact
per-window percentiles, and registry integration."""

import pytest

from repro.metrics.collector import (
    DEFAULT_LATENCY_BOUNDARIES,
    Histogram,
    MetricsRegistry,
)


class TestBuckets:
    def test_le_semantics_are_inclusive(self):
        h = Histogram(boundaries=(1.0, 2.0))
        h.observe(0.0, 1.0)  # == bound -> first bucket
        h.observe(0.0, 1.5)
        h.observe(0.0, 9.0)  # overflow -> +Inf
        assert h.bucket_counts == [1, 1, 1]
        assert h.cumulative_le(1.0) == 1
        assert h.cumulative_le(2.0) == 2
        assert h.count == 3
        assert h.sum == pytest.approx(11.5)

    def test_cumulative_le_rejects_non_boundaries(self):
        h = Histogram(name="repro_x_seconds", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="not a bucket boundary"):
            h.cumulative_le(1.5)

    def test_boundaries_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=())

    def test_time_must_be_monotonic(self):
        h = Histogram()
        h.observe(5.0, 0.1)
        h.observe(5.0, 0.1)  # same instant fine
        with pytest.raises(ValueError, match="backwards"):
            h.observe(4.0, 0.1)


class TestPercentiles:
    def test_exact_nearest_rank(self):
        h = Histogram(boundaries=(100.0,))
        for i in range(1, 101):
            h.observe(float(i), float(i))
        assert h.percentile(0.50) == 50.0
        assert h.percentile(0.95) == 95.0
        assert h.percentile(0.99) == 99.0
        assert h.percentile(1.0) == 100.0

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.5) == 0.0


class TestWindows:
    def test_windows_align_to_virtual_time_grid(self):
        h = Histogram(boundaries=(10.0,), window=10.0)
        h.observe(1.0, 1.0)
        h.observe(9.0, 3.0)
        h.observe(12.0, 5.0)  # rolls the [0, 10) window closed
        assert len(h.windows) == 1
        win = h.windows[0]
        assert (win["start"], win["end"], win["count"]) == (0.0, 10.0, 2)
        assert win["p50"] == 1.0 and win["max"] == 3.0

    def test_gap_skips_empty_windows(self):
        h = Histogram(boundaries=(10.0,), window=10.0)
        h.observe(1.0, 1.0)
        h.observe(55.0, 2.0)  # nothing recorded for [10,50)
        assert [w["start"] for w in h.windows] == [0.0]
        d = h.to_dict()
        # The open [50, 60) window is included non-destructively.
        assert [w["start"] for w in d["windows"]] == [0.0, 50.0]
        assert len(h.windows) == 1

    def test_to_dict_has_prometheus_and_percentile_views(self):
        h = Histogram(boundaries=(1.0,), window=10.0)
        h.observe(0.5, 0.5)
        d = h.to_dict()
        assert d["boundaries"] == [1.0]
        assert d["bucket_counts"] == [1, 0]
        assert d["count"] == 1 and d["sum"] == 0.5
        assert d["p50"] == 0.5 and d["p99"] == 0.5 and d["max"] == 0.5
        assert d["samples_dropped"] == 0

    def test_sample_cap_drops_but_keeps_counts(self):
        h = Histogram(boundaries=(10.0,), max_samples=2)
        for i in range(5):
            h.observe(float(i), 1.0)
        assert h.count == 5
        assert h.samples_dropped == 3


class TestRegistry:
    def test_get_or_create_and_observe(self):
        reg = MetricsRegistry()
        reg.observe("repro_x_seconds", 1.0, 0.2, boundaries=(1.0, 2.0))
        reg.observe("repro_x_seconds", 2.0, 1.5)
        h = reg.histogram("repro_x_seconds")
        assert h.count == 2
        assert h.bucket_counts == [1, 1, 0]

    def test_conflicting_boundaries_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("repro_x_seconds", boundaries=(1.0,))
        with pytest.raises(ValueError, match="different boundaries"):
            reg.histogram("repro_x_seconds", boundaries=(2.0,))

    def test_default_boundaries_include_slo_thresholds(self):
        # The default SLO thresholds must be exact bucket boundaries so
        # "good" reads straight off the cumulative counts.
        assert 10.0 in DEFAULT_LATENCY_BOUNDARIES
        assert 30.0 in DEFAULT_LATENCY_BOUNDARIES

"""Span nesting, error propagation, and Chrome trace export.

The satellite case: spans open across an apiserver outage must close
with ``error`` status instead of leaking open when the operation inside
them blows up (including the enclosing process being killed mid-span).
"""

import json

import pytest

from repro.cluster.apiserver import APIServer, ServiceUnavailable
from repro.obs.tracing import Tracer, chrome_trace_events, chrome_trace_json
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer(env):
    return Tracer(env)


class TestNesting:
    def test_child_inherits_parent_and_trace_id(self, env, tracer):
        def proc():
            with tracer.span("outer", "ctl", trace_id="default/sp0") as outer:
                yield env.timeout(1)
                with tracer.span("inner", "ctl") as inner:
                    yield env.timeout(1)
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == "default/sp0"

        p = env.process(proc())
        env.run(until=p)
        outer, inner = tracer.spans
        assert outer.status == "ok" and inner.status == "ok"
        assert (outer.start, outer.end) == (0.0, 2.0)
        assert (inner.start, inner.end) == (1.0, 2.0)

    def test_sibling_processes_do_not_cross_parent(self, env, tracer):
        def worker(name):
            with tracer.span(name, "ctl"):
                yield env.timeout(2)

        env.process(worker("a"))
        env.process(worker("b"))
        env.run(until=3)
        a, b = tracer.spans
        assert a.parent_id is None and b.parent_id is None

    def test_detached_span_neither_parents_nor_joins_stack(self, env, tracer):
        def proc():
            root = tracer.start("journey", "sharepod:sp0", detached=True)
            with tracer.span("work", "ctl") as work:
                yield env.timeout(1)
            assert root.parent_id is None
            assert work.parent_id is None  # detached span never on the stack
            tracer.end(root)

        p = env.process(proc())
        env.run(until=p)

    def test_instant_parents_to_stack_top(self, env, tracer):
        def proc():
            with tracer.span("outer", "ctl", trace_id="default/sp0") as outer:
                yield env.timeout(1)
                mark = tracer.instant("bind", "ctl")
            assert mark.parent_id == outer.span_id
            assert mark.trace_id == "default/sp0"
            assert mark.instant and mark.duration == 0.0

        p = env.process(proc())
        env.run(until=p)

    def test_max_spans_drops_not_grows(self, env):
        small = Tracer(env, max_spans=2)
        for i in range(5):
            small.end(small.start(f"s{i}", "t"))
        assert len(small.spans) == 2
        assert small.dropped == 3


class TestErrorClose:
    def test_exception_closes_error_and_reraises(self, env, tracer):
        def proc():
            try:
                with tracer.span("doomed", "ctl"):
                    yield env.timeout(1)
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            yield env.timeout(0)

        p = env.process(proc())
        env.run(until=p)
        [span] = tracer.spans
        assert span.status == "error"
        assert span.end == 1.0
        assert tracer.open_spans() == []

    def test_apiserver_outage_closes_span_with_error(self, env, tracer):
        api = APIServer(env)
        api.set_outage(10.0)

        def controller():
            try:
                with tracer.span("reconcile", "devmgr", key="default/sp0"):
                    yield env.timeout(1)
                    api.list("Pod")  # 503: inside the outage window
            except ServiceUnavailable:
                pass
            yield env.timeout(0)

        p = env.process(controller())
        env.run(until=p)
        [span] = tracer.spans
        assert span.status == "error"
        assert span.end is not None
        assert tracer.open_spans() == []

    def test_killed_process_does_not_leak_span(self, env, tracer):
        # A controller replica crashed mid-reconcile: the span must not
        # stay open forever on a dead process's stack.
        def controller():
            from repro.sim import Interrupt

            try:
                with tracer.span("reconcile", "devmgr"):
                    yield env.timeout(100)
            except Interrupt:
                pass

        proc = env.process(controller())

        def chaos():
            yield env.timeout(2)
            proc.interrupt("replica crashed")

        env.process(chaos())
        env.run(until=5)
        [span] = tracer.spans
        assert span.end == 2.0
        assert span.status == "error"
        assert tracer.open_spans() == []

    def test_close_open_flushes_remaining(self, env, tracer):
        root = tracer.start("journey", "sharepod:sp0", detached=True)
        assert tracer.open_spans() == [root]
        assert tracer.close_open() == 1
        assert root.status == "open"
        assert tracer.open_spans() == []


class TestChromeExport:
    def test_export_structure(self, env, tracer):
        def proc():
            with tracer.span("outer", "ctl", trace_id="default/sp0"):
                yield env.timeout(1.5)
                tracer.instant("bind", "apiserver")

        p = env.process(proc())
        env.run(until=p)
        events = chrome_trace_events(tracer.to_dicts())
        meta = [e for e in events if e["ph"] == "M"]
        # process_name + one thread_name per track.
        assert {m["args"]["name"] for m in meta} == {
            "repro (virtual time)", "ctl", "apiserver",
        }
        [dur] = [e for e in events if e["ph"] == "X"]
        assert dur["ts"] == 0.0 and dur["dur"] == 1.5e6  # seconds → µs
        assert dur["args"]["trace_id"] == "default/sp0"
        [inst] = [e for e in events if e["ph"] == "i"]
        assert inst["ts"] == 1.5e6

    def test_json_round_trips(self, env, tracer):
        tracer.end(tracer.start("s", "t"))
        doc = json.loads(chrome_trace_json(tracer.to_dicts()))
        assert doc["displayTimeUnit"] == "ms"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

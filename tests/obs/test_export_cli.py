"""Artifact round-trips (``export_dir`` / CLI ``export``) and the
``cluster="..."`` labeling of federation metric families."""

import json
import os

import pytest

from repro.analysis.resets import reset_all
from repro.cluster import Cluster, ClusterConfig
from repro.core import KubeShare
from repro.federation import Federation, FederationConfig
from repro.obs import ObsHub, disable, enable
from repro.obs import artifact as artifact_mod
from repro.obs.cli import main as cli_main
from repro.obs.promfmt import prometheus_text
from repro.sim import Environment
from repro.workloads.jobs import InferenceJob, TrainingJob


@pytest.fixture
def observed_hub():
    """A small observed single-cluster run, still enabled (not snapshot)."""
    reset_all()
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    hub = enable(
        ObsHub(env, label="roundtrip")
        .attach_cluster(cluster)
        .start_sampler()
        .start_slo()
    )
    ks = KubeShare(cluster, isolation="token").start()
    hub.attach_kubeshare(ks)
    for i in range(2):
        job = InferenceJob.from_demand(f"job{i}", demand=0.3, duration=100.0)
        ks.submit(
            ks.make_sharepod(
                f"sp{i}",
                gpu_request=0.3,
                gpu_limit=0.5,
                gpu_mem=0.3,
                workload=job.workload(),
            )
        )
    env.run(until=20.0)
    yield hub
    disable()


class TestExportRoundTrip:
    def test_export_dir_artifact_loads_back_identically(self, observed_hub, tmp_path):
        paths = observed_hub.export_dir(str(tmp_path))
        art_path = paths[0]
        assert art_path.endswith("roundtrip.json")
        loaded = artifact_mod.load(art_path)
        snap = observed_hub.snapshot()
        for key in ("label", "counters", "series", "histograms", "slo"):
            assert loaded[key] == snap[key], key
        assert len(loaded["spans"]) == len(snap["spans"])

    def test_prometheus_text_identical_live_and_from_artifact(
        self, observed_hub, tmp_path
    ):
        live = prometheus_text(observed_hub.metrics)
        art_path = observed_hub.save(str(tmp_path / "art.json"))
        art = artifact_mod.load(art_path)
        out = tmp_path / "exported"
        artifact_mod.export_all(art, str(out), "rt")
        assert (out / "rt.prom").read_text() == live
        # Histogram families survive the trip.
        assert "# TYPE repro_sharepod_schedule_seconds histogram" in live
        assert 'repro_sharepod_schedule_seconds_bucket{le="+Inf"} 2' in live

    def test_cli_export_writes_same_files_as_export_dir(
        self, observed_hub, tmp_path, capsys
    ):
        direct = tmp_path / "direct"
        via_cli = tmp_path / "cli"
        direct_paths = observed_hub.export_dir(str(direct))
        art_path = observed_hub.save(str(tmp_path / "art.json"))
        rc = cli_main(
            ["export", "--artifact", art_path, "--dir", str(via_cli), "--label",
             "roundtrip"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        # No profiler armed -> no .folded/.profile.json from either path.
        direct_names = sorted(os.path.basename(p) for p in direct_paths)
        cli_names = sorted(os.listdir(via_cli))
        assert cli_names == direct_names
        for name in cli_names:
            if name.endswith((".prom", ".events.txt", ".slo.json")):
                assert (via_cli / name).read_text() == (direct / name).read_text()

    def test_cli_report_and_slo_render_from_artifact(
        self, observed_hub, tmp_path, capsys
    ):
        art_path = observed_hub.save(str(tmp_path / "art.json"))
        assert cli_main(["report", "--artifact", art_path]) == 0
        report = capsys.readouterr().out
        assert "repro_sharepod_schedule_seconds" in report
        assert "p99" in report
        assert cli_main(["slo", "--artifact", art_path]) == 0
        slo_out = capsys.readouterr().out
        assert "sharepod-schedule-latency" in slo_out
        assert "MET" in slo_out


class TestFederationLabels:
    @pytest.fixture
    def fed_hub(self):
        reset_all()
        env = Environment()
        fed = Federation(
            env,
            FederationConfig(
                members=("alpha", "beta"),
                nodes_per_cluster=1,
                gpus_per_node=1,
                replicas=1,
            ),
        ).start()
        hub = enable(
            ObsHub(env, label="fed").attach_federation(fed).start_sampler()
        )
        for i in range(2):
            job = TrainingJob(f"job{i}", steps=20, step_work=0.05)
            fed.submit(
                f"job{i}",
                gpu_request=0.6,
                gpu_limit=1.0,
                gpu_mem=0.3,
                workload_factory=job.workload,
            )
        env.run(until=15.0)
        yield hub
        disable()

    def test_member_series_carry_cluster_labels(self, fed_hub):
        series = fed_hub.metrics.series
        for member in ("alpha", "beta"):
            assert f'repro_etcd_revision{{cluster="{member}"}}' in series
            assert (
                f'repro_workqueue_depth{{queue="kube-scheduler",cluster="{member}"}}'
                in series
            )
        # The unlabeled single-cluster spelling must NOT appear alongside.
        assert "repro_etcd_revision" not in series

    def test_cluster_labels_reach_prometheus_exposition(self, fed_hub):
        text = prometheus_text(fed_hub.metrics)
        assert 'repro_etcd_revision{cluster="alpha"}' in text
        assert 'repro_etcd_revision{cluster="beta"}' in text
        assert text.count("# TYPE repro_etcd_revision gauge") == 1

    def test_federation_placement_latency_histogram_fills(self, fed_hub):
        hist = fed_hub.metrics.histogram("repro_federation_place_seconds")
        assert hist.count >= 2
        assert hist.percentile(0.5) >= 0.0

    def test_labeled_families_survive_export_roundtrip(self, fed_hub, tmp_path):
        live = prometheus_text(fed_hub.metrics)
        art_path = fed_hub.save(str(tmp_path / "fed.json"))
        art = artifact_mod.load(art_path)
        artifact_mod.export_all(art, str(tmp_path), "fed")
        assert (tmp_path / "fed.prom").read_text() == live
        with open(art_path) as fh:
            raw = json.load(fh)
        assert any('cluster="alpha"' in name for name in raw["series"])

"""End-to-end observability: the full SharePod journey is captured, and
arming the hub does not perturb the schedule (identical-seed replay)."""

import os

import pytest

from repro.analysis.resets import reset_all
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import PodPhase
from repro.core import KubeShare
from repro.obs import ObsHub, disable, enable, install_from_env
from repro.sim import Environment
from repro.workloads.jobs import InferenceJob

HORIZON = 30.0
N_PODS = 3


def run_scenario(observed: bool):
    """One deterministic small run; returns (outcome dict, hub or None)."""
    reset_all()
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    hub = None
    if observed:
        # Every subsystem armed at once — histograms, SLO evaluator, and
        # the wall-clock profiler — so the replay test below witnesses
        # the full stack leaving the schedule untouched.
        hub = enable(
            ObsHub(env, label="obs-it")
            .attach_cluster(cluster)
            .start_sampler()
            .start_slo()
            .start_profiler()
        )
    ks = KubeShare(cluster, isolation="token").start()
    if hub is not None:
        hub.attach_kubeshare(ks)
    for i in range(N_PODS):
        job = InferenceJob.from_demand(f"job{i}", demand=0.3, duration=200.0)
        ks.submit(
            ks.make_sharepod(
                f"sp{i}",
                gpu_request=0.3,
                gpu_limit=0.5,
                gpu_mem=0.3,
                workload=job.workload(),
            )
        )
    env.run(until=HORIZON)
    outcome = {
        "placement": {
            f"sp{i}": (
                ks.get(f"sp{i}").status.phase,
                ks.get(f"sp{i}").spec.gpu_id,
                ks.get(f"sp{i}").status.pod_name,
            )
            for i in range(N_PODS)
        },
        "pod_uids": sorted(p.metadata.uid for p in cluster.api.list("Pod")),
    }
    disable()
    return outcome, hub


@pytest.fixture
def observed_run():
    outcome, hub = run_scenario(observed=True)
    return outcome, hub


class TestJourneyCapture:
    def test_sharepods_run_and_roots_close_ok(self, observed_run):
        outcome, hub = observed_run
        for name, (phase, gpu_id, pod_name) in outcome["placement"].items():
            assert phase is PodPhase.RUNNING, f"{name}: {phase}"
            assert gpu_id is not None and pod_name is not None
        for key, root in hub.roots.items():
            assert root.end is not None and root.status == "ok", key

    def test_spans_cover_every_layer(self, observed_run):
        _, hub = observed_run
        names = {s.name for s in hub.tracer.spans}
        tracks = {s.track for s in hub.tracer.spans}
        assert "reconcile" in names
        assert "container.start" in names
        assert "token.grant" in names
        assert "cuLaunchKernel" in names
        assert "create SharePod" in names  # apiserver instants
        assert "apiserver" in tracks
        assert any(t.startswith("kubelet:") for t in tracks)
        assert any(t.startswith("app:") for t in tracks)
        assert hub.tracer.dropped == 0

    def test_journey_is_stitched_by_trace_id(self, observed_run):
        _, hub = observed_run
        story = hub.tracer.for_trace("default/sp0")
        tracks = {s.track for s in story}
        # The one trace crosses the apiserver, the scheduler/devmgr
        # controllers, the kubelet, and the in-container app track.
        assert len(tracks) >= 4

    def test_events_tell_the_placement_story(self, observed_run):
        _, hub = observed_run
        reasons = {e.reason for e in hub.events.ledger}
        assert {"Scheduled", "Bound", "Started", "VGPUCreated"} <= reasons
        # Write-through: the events are also listable via the apiserver.
        stored = hub.events.api.list("Event")
        assert len(stored) == len(hub.events.ledger)
        assert hub.events.pending_writes == 0

    def test_decisions_recorded_per_sharepod(self, observed_run):
        _, hub = observed_run
        for i in range(N_PODS):
            recs = hub.decisions.for_sharepod(f"sp{i}")
            assert recs, f"sp{i} has no decision record"
            assert all(not r.rejected for r in recs)
            assert recs[-1].chosen is not None

    def test_sampler_populates_metric_families(self, observed_run):
        _, hub = observed_run
        series = hub.metrics.series
        assert len(series["repro_etcd_revision"]) > 0
        assert any(n.startswith("repro_gpu_quota_occupancy{") for n in series)
        assert any(n.startswith("repro_workqueue_depth{") for n in series)
        assert any(n.startswith("repro_informer_lag{") for n in series)
        counters = hub.metrics.counters
        assert any(n.startswith("repro_token_grants_total{") for n in counters)
        assert any(n.startswith("repro_api_writes_total{") for n in counters)

    def test_histograms_capture_hot_seam_latencies(self, observed_run):
        _, hub = observed_run
        hists = hub.metrics.histograms
        assert hub.metrics.histogram("repro_sharepod_schedule_seconds").count == N_PODS
        assert hub.metrics.histogram("repro_sharepod_journey_seconds").count == N_PODS
        assert hub.metrics.histogram("repro_algo1_pass_seconds").count >= N_PODS
        assert hub.metrics.histogram("repro_token_wait_seconds").count > 0
        assert any(
            n.startswith("repro_reconcile_duration_seconds{") for n in hists
        )
        assert any(n.startswith("repro_informer_lag_revisions{") for n in hists)
        # Journey >= schedule latency for the same pods, and percentiles
        # are ordered.
        journey = hub.metrics.histogram("repro_sharepod_journey_seconds")
        sched = hub.metrics.histogram("repro_sharepod_schedule_seconds")
        assert journey.percentile(0.5) >= sched.percentile(0.5)
        assert sched.percentile(0.99) >= sched.percentile(0.5)

    def test_slo_attainment_healthy_run_no_alerts(self, observed_run):
        _, hub = observed_run
        report = hub.slo.to_dict()
        assert report["alerts"] == []
        by_name = {s["name"]: s for s in report["slos"]}
        assert by_name["sharepod-schedule-latency"]["attainment"] == 1.0
        assert by_name["sharepod-journey-latency"]["attainment"] == 1.0

    def test_profiler_attributes_host_time(self, observed_run):
        _, hub = observed_run
        prof = hub.profiler
        assert prof.dispatches > 0
        assert prof.total_seconds > 0
        assert prof.attributed_fraction() >= 0.9
        lines = prof.folded_lines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_export_dir_writes_all_artifacts(self, observed_run, tmp_path):
        _, hub = observed_run
        paths = hub.export_dir(str(tmp_path))
        assert [os.path.basename(p) for p in paths] == [
            "obs-it.json",
            "obs-it.trace.json",
            "obs-it.events.txt",
            "obs-it.prom",
            "obs-it.slo.json",
            "obs-it.folded",
            "obs-it.profile.json",
        ]
        for p in paths:
            assert os.path.getsize(p) > 0


class TestDeterminism:
    def test_observed_run_replays_identically(self):
        plain, _ = run_scenario(observed=False)
        observed, _ = run_scenario(observed=True)
        assert plain["placement"] == observed["placement"]
        assert plain["pod_uids"] == observed["pod_uids"]


class TestInstallFromEnv:
    def test_disabled_by_default(self, monkeypatch, env, small_cluster):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert install_from_env(small_cluster) is None
        monkeypatch.setenv("REPRO_OBS", "0")
        assert install_from_env(small_cluster) is None

    def test_enabled_when_opted_in(self, monkeypatch, env, small_cluster):
        monkeypatch.setenv("REPRO_OBS", "1")
        hub = install_from_env(small_cluster, label="smoke")
        assert hub is not None
        assert hub.label == "smoke"
        assert hub.events.api is small_cluster.api
        disable()

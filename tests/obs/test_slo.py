"""SLO engine: burn-rate math, the multi-window state machine, and the
Events it emits — all in virtual time on a bare hub."""

import pytest

from repro.obs.runtime import ObsHub, disable
from repro.obs.slo import SLO, BurnRatePolicy, SLOEvaluator, default_slos
from repro.sim import Environment


FAST_PAGE = BurnRatePolicy("page", factor=10.0, long_window=10.0, short_window=3.0)

LATENCY_SLO = SLO(
    name="latency",
    objective=0.99,
    kind="latency",
    family="repro_sharepod_schedule_seconds",
    threshold=10.0,
    windows=(FAST_PAGE,),
)


@pytest.fixture
def hub():
    h = ObsHub(Environment(), label="slo-test")
    yield h
    disable()


def _evaluator(hub, slo=LATENCY_SLO, **kw):
    kw.setdefault("interval", 1.0)
    ev = SLOEvaluator(hub, slos=[slo], **kw)
    ev.start()
    return ev


class TestDefaults:
    def test_default_slos_cover_the_three_stories(self):
        names = {s.name for s in default_slos()}
        assert names == {
            "sharepod-schedule-latency",
            "sharepod-journey-latency",
            "token-grant-success",
        }

    def test_objective_validated(self):
        with pytest.raises(ValueError):
            SLO(name="bad", objective=1.5)
        with pytest.raises(ValueError):
            SLO(name="bad", objective=0.9, kind="weird")


class TestBurnRate:
    def test_no_traffic_means_zero_burn(self, hub):
        ev = _evaluator(hub)
        hub.env.run(until=5.0)
        assert ev.alerts == []
        series = hub.metrics.series
        burn = series['repro_slo_burn_rate{slo="latency",severity="page"}']
        assert set(burn.values) == {0.0}

    def test_good_traffic_within_budget(self, hub):
        ev = _evaluator(hub)

        def feed():
            for i in range(20):
                hub.hist.schedule_latency(hub.env.now, 0.5)  # < 10s threshold
                yield hub.env.timeout(0.5)

        hub.env.process(feed())
        hub.env.run(until=12.0)
        assert ev.alerts == []
        assert ev.attainment(LATENCY_SLO) == 1.0


class TestStateMachine:
    def test_fires_resolves_and_emits_events(self, hub):
        ev = _evaluator(hub, resolve_after=3)

        def feed():
            # Healthy baseline...
            for _ in range(10):
                hub.hist.schedule_latency(hub.env.now, 0.5)
                yield hub.env.timeout(0.3)
            # ...then a burst of budget-burning slow observations.
            for _ in range(4):
                hub.hist.schedule_latency(hub.env.now, 50.0)
                yield hub.env.timeout(0.3)

        hub.env.process(feed())
        hub.env.run(until=30.0)

        assert len(ev.alerts) == 1
        alert = ev.alerts[0]
        assert alert.severity == "page"
        assert alert.state == "resolved"
        assert alert.fired_at >= 3.0
        # Resolution needs the short window to drain plus the quiet ticks.
        assert alert.resolved_at > alert.fired_at + 3.0
        reasons = [e.reason for e in hub.events.ledger]
        assert reasons.count("SLOBurnRate") == 1
        assert reasons.count("SLOResolved") == 1

    def test_alert_dedup_while_firing(self, hub):
        ev = _evaluator(hub, resolve_after=1000)  # never resolves

        def feed():
            while True:
                hub.hist.schedule_latency(hub.env.now, 50.0)
                yield hub.env.timeout(0.5)

        hub.env.process(feed())
        hub.env.run(until=25.0)
        # Burning the whole time, but one alert record and one Event.
        assert len(ev.alerts) == 1
        assert ev.alerts[0].state == "firing"
        assert [e.reason for e in hub.events.ledger].count("SLOBurnRate") == 1

    def test_pending_hold_filters_blips(self, hub):
        ev = _evaluator(hub, pending_for=5.0)

        def feed():
            hub.hist.schedule_latency(hub.env.now, 0.1)
            yield hub.env.timeout(1.0)
            # One bad observation: enters pending, but the short window
            # drains before the 5s hold elapses -> back to inactive.
            hub.hist.schedule_latency(hub.env.now, 50.0)

        hub.env.process(feed())
        hub.env.run(until=20.0)
        assert ev.alerts == []

    def test_ratio_slo_over_counter_families(self, hub):
        slo = SLO(
            name="grants",
            objective=0.90,
            kind="ratio",
            good_family="repro_token_grants_total",
            total_families=("repro_token_grants_total", "repro_token_denies_total"),
            windows=(
                BurnRatePolicy("page", factor=5.0, long_window=10.0, short_window=3.0),
            ),
        )
        ev = _evaluator(hub, slo=slo)

        def feed():
            for _ in range(5):
                hub.metrics.incr('repro_token_grants_total{device="g0"}')
                yield hub.env.timeout(0.5)
            for _ in range(10):
                hub.metrics.incr('repro_token_denies_total{device="g0"}')
                yield hub.env.timeout(0.5)

        hub.env.process(feed())
        hub.env.run(until=12.0)
        assert len(ev.alerts) == 1
        assert ev.alerts[0].slo == "grants"
        assert ev.attainment(slo) == pytest.approx(5 / 15)


class TestDeterminism:
    def test_identical_feeds_identical_alert_log(self):
        def run():
            hub = ObsHub(Environment(), label="det")
            ev = _evaluator(hub)

            def feed():
                for i in range(30):
                    lat = 50.0 if 10 <= i < 14 else 0.5
                    hub.hist.schedule_latency(hub.env.now, lat)
                    yield hub.env.timeout(0.7)

            hub.env.process(feed())
            hub.env.run(until=40.0)
            return ev.to_dict()

        assert run() == run()

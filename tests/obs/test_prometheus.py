"""Prometheus text exposition over the metric families."""

from repro.metrics.collector import MetricsRegistry
from repro.obs.promfmt import prometheus_text


def test_counters_exposed_as_counter_families():
    reg = MetricsRegistry()
    reg.incr('repro_token_grants_total{device="g0"}', 3)
    reg.incr('repro_token_grants_total{device="g1"}', 1)
    reg.incr("repro_sched_retries_total", 2)
    text = prometheus_text(reg)
    lines = text.splitlines()
    assert "# TYPE repro_sched_retries_total counter" in lines
    assert "repro_sched_retries_total 2" in lines
    # One TYPE header per family, shared by both labelled children.
    assert lines.count("# TYPE repro_token_grants_total counter") == 1
    assert 'repro_token_grants_total{device="g0"} 3' in lines
    assert 'repro_token_grants_total{device="g1"} 1' in lines


def test_series_exposed_as_gauges_with_last_sample():
    reg = MetricsRegistry()
    reg.record('repro_workqueue_depth{queue="kube-scheduler"}', 1.0, 4)
    reg.record('repro_workqueue_depth{queue="kube-scheduler"}', 2.0, 7)
    text = prometheus_text(reg)
    assert "# TYPE repro_workqueue_depth gauge" in text
    assert 'repro_workqueue_depth{queue="kube-scheduler"} 7' in text


def test_empty_series_reads_zero():
    reg = MetricsRegistry()
    reg.timeseries("repro_informer_lag")
    assert "repro_informer_lag 0" in prometheus_text(reg)


def test_float_values_keep_precision():
    reg = MetricsRegistry()
    reg.record('repro_gpu_quota_occupancy{device="g0"}', 1.0, 0.375)
    assert 'repro_gpu_quota_occupancy{device="g0"} 0.375' in prometheus_text(reg)


def test_output_ends_with_newline():
    assert prometheus_text(MetricsRegistry()).endswith("\n")

"""Prometheus text exposition over the metric families."""

from repro.metrics.collector import MetricsRegistry
from repro.obs.promfmt import escape_label_value, metric, prometheus_text


def test_counters_exposed_as_counter_families():
    reg = MetricsRegistry()
    reg.incr('repro_token_grants_total{device="g0"}', 3)
    reg.incr('repro_token_grants_total{device="g1"}', 1)
    reg.incr("repro_sched_retries_total", 2)
    text = prometheus_text(reg)
    lines = text.splitlines()
    assert "# TYPE repro_sched_retries_total counter" in lines
    assert "repro_sched_retries_total 2" in lines
    # One TYPE header per family, shared by both labelled children.
    assert lines.count("# TYPE repro_token_grants_total counter") == 1
    assert 'repro_token_grants_total{device="g0"} 3' in lines
    assert 'repro_token_grants_total{device="g1"} 1' in lines


def test_series_exposed_as_gauges_with_last_sample():
    reg = MetricsRegistry()
    reg.record('repro_workqueue_depth{queue="kube-scheduler"}', 1.0, 4)
    reg.record('repro_workqueue_depth{queue="kube-scheduler"}', 2.0, 7)
    text = prometheus_text(reg)
    assert "# TYPE repro_workqueue_depth gauge" in text
    assert 'repro_workqueue_depth{queue="kube-scheduler"} 7' in text


def test_empty_series_reads_zero():
    reg = MetricsRegistry()
    reg.timeseries("repro_informer_lag")
    assert "repro_informer_lag 0" in prometheus_text(reg)


def test_float_values_keep_precision():
    reg = MetricsRegistry()
    reg.record('repro_gpu_quota_occupancy{device="g0"}', 1.0, 0.375)
    assert 'repro_gpu_quota_occupancy{device="g0"} 0.375' in prometheus_text(reg)


def test_output_ends_with_newline():
    assert prometheus_text(MetricsRegistry()).endswith("\n")


class TestLabelEscaping:
    def test_backslash_quote_newline_escaped_per_spec(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_metric_builds_escaped_registry_keys(self):
        assert metric("fam") == "fam"
        assert metric("fam", a="x", b='say "hi"') == 'fam{a="x",b="say \\"hi\\""}'

    def test_escaped_values_round_trip_through_exposition(self):
        reg = MetricsRegistry()
        reg.incr(metric("repro_test_total", path='C:\\tmp\n"x"'))
        text = prometheus_text(reg)
        assert 'repro_test_total{path="C:\\\\tmp\\n\\"x\\""} 1' in text


class TestHistogramExposition:
    def test_histogram_family_with_buckets_sum_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_latency_seconds", boundaries=(0.1, 1.0, 10.0))
        hist.observe(0.0, 0.05)
        hist.observe(1.0, 0.5)
        hist.observe(2.0, 42.0)
        lines = prometheus_text(reg).splitlines()
        assert "# TYPE repro_latency_seconds histogram" in lines
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_latency_seconds_bucket{le="1.0"} 2' in lines
        assert 'repro_latency_seconds_bucket{le="10.0"} 2' in lines
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_latency_seconds_sum 42.55" in lines
        assert "repro_latency_seconds_count 3" in lines

    def test_labeled_histogram_merges_le_into_label_body(self):
        reg = MetricsRegistry()
        name = metric("repro_reconcile_duration_seconds", controller="devmgr")
        reg.observe(name, 1.0, 0.2, boundaries=(0.5, 5.0))
        lines = prometheus_text(reg).splitlines()
        assert lines.count("# TYPE repro_reconcile_duration_seconds histogram") == 1
        assert (
            'repro_reconcile_duration_seconds_bucket{controller="devmgr",le="0.5"} 1'
            in lines
        )
        assert (
            'repro_reconcile_duration_seconds_bucket{controller="devmgr",le="+Inf"} 1'
            in lines
        )
        assert 'repro_reconcile_duration_seconds_count{controller="devmgr"} 1' in lines

"""Scheduler decision log: Algorithm 1 self-reports every candidate."""

from repro.core.scheduler import DeviceView, RequestView, schedule_request
from repro.obs.artifact import explain
from repro.obs.decisions import DecisionAudit, DecisionLog


def audit_for(request, devices, placement="paper"):
    log = DecisionLog()
    audit = log.new_audit()
    decision = schedule_request(request, devices, placement=placement, audit=audit)
    rec = log.commit(audit, "default/sp0", t=1.0)
    return decision, rec, log


class TestAudit:
    def test_filter_stage_records_every_busy_candidate(self):
        devices = [
            DeviceView("gpu0", util=0.9, mem=0.9, idle=False),
            DeviceView("gpu1", util=0.4, mem=0.9, idle=False),
            DeviceView("gpu2", util=0.05, mem=0.05, idle=False),
        ]
        r = RequestView(util=0.3, mem=0.1)
        decision, rec, _ = audit_for(r, devices)
        assert not decision.rejected
        filtered = {c.gpuid: c for c in rec.candidates if c.stage == "filter"}
        assert set(filtered) == {"gpu0", "gpu1", "gpu2"}
        assert filtered["gpu0"].passed and filtered["gpu1"].passed
        assert not filtered["gpu2"].passed
        assert "insufficient capacity" in filtered["gpu2"].reason

    def test_placement_stage_records_scores_and_rule(self):
        devices = [
            DeviceView("gpu0", util=0.9, mem=0.9, idle=False),
            DeviceView("gpu1", util=0.4, mem=0.9, idle=False),
        ]
        r = RequestView(util=0.3, mem=0.1)
        decision, rec, _ = audit_for(r, devices)
        placed = [c for c in rec.candidates if c.stage == "placement"]
        assert placed and all(c.score is not None for c in placed)
        # Paper placement, label-free pool: best fit → the tighter gpu1.
        assert decision.gpuid == "gpu1"
        assert rec.chosen == "gpu1"
        assert rec.rule == "best-fit(label-free)"
        assert not rec.is_new

    def test_affinity_rejection_recorded(self):
        devices = [
            DeviceView(
                "gpu0", util=0.1, mem=0.1, aff={"model-a"}, idle=False
            )
        ]
        r = RequestView(util=0.5, mem=0.5, aff="model-a")
        decision, rec, _ = audit_for(r, devices)
        assert decision.rejected
        assert rec.rejected
        assert "lacks capacity" in rec.reason
        [cand] = [c for c in rec.candidates if c.stage == "affinity"]
        assert not cand.passed

    def test_new_device_choice_flagged(self):
        decision, rec, _ = audit_for(RequestView(util=0.5, mem=0.5, aff="m"), [])
        assert decision.is_new
        assert rec.is_new
        assert rec.rule == "affinity-new"

    def test_request_snapshot_in_record(self):
        devices = [DeviceView("gpu0")]
        r = RequestView(util=0.25, mem=0.125)
        _, rec, _ = audit_for(r, devices)
        assert rec.request["gpu_request"] == 0.25
        assert rec.request["gpu_mem"] == 0.125
        assert rec.request["devices_visible"] == 1

    def test_audit_never_alters_the_decision(self):
        def fresh():
            return [
                DeviceView("gpu0", util=0.9, mem=0.9, idle=False),
                DeviceView("gpu1", util=0.4, mem=0.9, idle=False),
                DeviceView("gpu2", util=0.05, mem=0.05, idle=False),
            ]

        r = RequestView(util=0.3, mem=0.1)
        plain = schedule_request(r, fresh())
        audited, _, _ = audit_for(r, fresh())
        assert (plain.gpuid, plain.is_new, plain.rejected) == (
            audited.gpuid,
            audited.is_new,
            audited.rejected,
        )

    def test_for_sharepod_matches_bare_name_and_key(self):
        log = DecisionLog()
        log.commit(DecisionAudit(), "default/sp0", t=2.0)
        assert log.for_sharepod("default/sp0") == log.records
        assert log.for_sharepod("sp0") == log.records
        assert log.for_sharepod("other") == []


class TestExplain:
    def art(self, log):
        return {
            "decisions": log.to_dicts(),
            "spans": [],
            "events": [],
            "counters": {},
            "series": {},
        }

    def test_explain_renders_the_story(self):
        devices = [
            DeviceView("gpu0", util=0.9, mem=0.9, idle=False),
            DeviceView("gpu1", util=0.05, mem=0.05, idle=False),
        ]
        _, _, log = audit_for(RequestView(util=0.3, mem=0.1), devices)
        text = explain(self.art(log), "sp0")
        assert "SharePod default/sp0" in text
        assert "Algorithm 1: 1 scheduling pass" in text
        assert "insufficient capacity" in text
        assert "=> chose gpu0" in text

    def test_explain_unknown_sharepod_lists_known(self):
        log = DecisionLog()
        log.commit(DecisionAudit(), "default/sp0", t=0.0)
        text = explain(self.art(log), "ghost")
        assert "no record" in text
        assert "default/sp0" in text

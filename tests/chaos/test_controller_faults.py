"""Controller-replica faults: seeded, replayable chaos schedules.

CONTROLLER_CRASH kills a leader (standby takes over), CONTROLLER_RESTART
boots it back as a standby, CONTROLLER_PAUSE freezes a leader and lets it
resume with a stale lease epoch. Same seed + same schedule must produce
an identical fault log and identical promotion history.
"""


from repro.chaos import ChaosEngine, FaultKind
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.leaderelection import ReplicaState
from repro.core import HAKubeShare
from repro.sim import Environment


def build(seed=3):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    ks = HAKubeShare(
        cluster,
        replicas=2,
        lease_duration=1.0,
        renew_interval=0.2,
        retry_interval=0.2,
    ).start()
    engine = ChaosEngine(cluster, kubeshare=ks, seed=seed)
    engine.register_controllers(ks.sched_group, ks.devmgr_group)
    return env, ks, engine


class TestControllerFaults:
    def test_crash_hits_the_leader_and_standby_takes_over(self):
        env, ks, engine = build()
        engine.controller_crash(at=5.0, target="kubeshare-devmgr")
        engine.start()
        env.run(until=5.0 + ks.devmgr_group.failover_bound + 0.01)
        [(t, fault, victim, outcome)] = engine.log
        assert fault.kind is FaultKind.CONTROLLER_CRASH
        assert outcome == "crashed"
        crashed = ks.devmgr_group.replica(victim)
        assert crashed.state is ReplicaState.CRASHED
        # The victim was the then-leader; another replica now leads.
        assert ks.devmgr_group.promotions[0][1] == victim
        leader = ks.devmgr_group.leader
        assert leader is not None and leader is not crashed
        assert len(ks.devmgr_group.promotions) == 2

    def test_restart_rejoins_crashed_replica_as_standby(self):
        env, ks, engine = build()
        engine.controller_crash(at=5.0, target="kubeshare-devmgr")
        engine.controller_restart(at=12.0, target="kubeshare-devmgr")
        engine.start()
        env.run(until=20.0)
        crash_victim = engine.log[0][2]
        restarted = engine.log[1][2]
        assert restarted == crash_victim
        assert engine.log[1][3] == "restarted as standby"
        replica = ks.devmgr_group.replica(restarted)
        assert replica.state is ReplicaState.STANDBY
        # It stands by — no third promotion just because it came back.
        assert len(ks.devmgr_group.promotions) == 2

    def test_pause_targets_a_leader_and_it_resumes(self):
        env, ks, engine = build()
        engine.controller_pause(at=5.0, duration=3.0, target="kubeshare-sched")
        engine.start()
        env.run(until=6.0)
        [(t, fault, victim, outcome)] = engine.log
        assert fault.kind is FaultKind.CONTROLLER_PAUSE
        assert outcome == "paused for 3.00s"
        replica = ks.sched_group.replica(victim)
        assert replica.state is ReplicaState.PAUSED
        env.run(until=15.0)
        # Deposed while frozen; resumed, noticed, and stood down.
        assert replica.state is ReplicaState.STANDBY
        assert len(ks.sched_group.promotions) == 2

    def test_untargeted_faults_prefer_leaders(self):
        env, ks, engine = build()
        engine.controller_crash(at=5.0)  # no target: any registered group
        engine.start()
        env.run(until=6.0)
        [(t, fault, victim, outcome)] = engine.log
        assert outcome == "crashed"
        # The seeded pick is always a leader when one exists.
        group = ks.sched_group if victim.startswith("kubeshare-sched") else ks.devmgr_group
        assert group.promotions[0][1] == victim

    def test_faults_without_candidates_are_noops(self):
        env, ks, engine = build()
        engine.controller_restart(at=5.0)  # nothing crashed yet
        engine.start()
        env.run(until=6.0)
        [(t, fault, victim, outcome)] = engine.log
        assert victim is None
        assert outcome.startswith("no-op")


class TestReplayability:
    def run_once(self, seed):
        env, ks, engine = build(seed=seed)
        engine.controller_crash(at=5.0)
        engine.controller_restart(at=12.0)
        engine.controller_pause(at=20.0, duration=2.0)
        engine.start()
        env.run(until=30.0)
        log = [(t, f.kind, victim, outcome) for t, f, victim, outcome in engine.log]
        promotions = {
            "sched": ks.sched_group.promotions,
            "devmgr": ks.devmgr_group.promotions,
        }
        return log, promotions

    def test_same_seed_same_log_and_promotions(self):
        first = self.run_once(seed=9)
        second = self.run_once(seed=9)
        assert first == second

    def test_log_records_every_fault(self):
        log, promotions = self.run_once(seed=9)
        assert [kind for _, kind, _, _ in log] == [
            FaultKind.CONTROLLER_CRASH,
            FaultKind.CONTROLLER_RESTART,
            FaultKind.CONTROLLER_PAUSE,
        ]
        # Crash forced a failover in the victim's group.
        victim = log[0][2]
        group = "sched" if victim.startswith("kubeshare-sched") else "devmgr"
        assert len(promotions[group]) >= 2

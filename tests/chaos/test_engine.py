"""Chaos engine: fault scheduling, target picking, and failure injection."""

import pytest

from repro.chaos import ChaosEngine, FaultKind
from repro.cluster import Cluster, ClusterConfig, ServiceUnavailable
from repro.cluster.objects import ContainerSpec, ObjectMeta, Pod, PodPhase, PodSpec
from repro.sim import Environment


def cpu_pod(name):
    return Pod(
        metadata=ObjectMeta(name=name),
        spec=PodSpec(containers=[ContainerSpec(requests={"cpu": 1})]),
    )


def build(env, nodes=2, **cfg):
    return Cluster(env, ClusterConfig(nodes=nodes, gpus_per_node=2, **cfg)).start()


class TestScheduling:
    def test_builders_accumulate_sorted_execution(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=1)
        eng.node_restart(at=30.0).node_crash(at=10.0).apiserver_outage(at=20.0, duration=1.0)
        eng.start()
        env.run(until=40.0)
        assert [f.kind for _, f, _, _ in eng.log] == [
            FaultKind.NODE_CRASH,
            FaultKind.APISERVER_OUTAGE,
            FaultKind.NODE_RESTART,
        ]
        assert [t for t, _, _, _ in eng.log] == [10.0, 20.0, 30.0]

    def test_same_seed_same_victims(self):
        def run(seed):
            env = Environment()
            cluster = build(env, nodes=4)
            eng = ChaosEngine(cluster, seed=seed)
            eng.node_crash(at=5.0).gpu_failure(at=10.0).container_crash(at=15.0)
            eng.start()
            env.run(until=20.0)
            return [(t, f.kind, target) for t, f, target, _ in eng.log]

        assert run(7) == run(7)
        # Different seeds pick different victims at least once across kinds.
        assert run(7) != run(8) or True  # seeds may collide; determinism is the claim

    def test_random_faults_deterministic(self, env):
        cluster = build(env)
        a = ChaosEngine(cluster, seed=42).random_faults(horizon=600.0)
        b = ChaosEngine(cluster, seed=42).random_faults(horizon=600.0)
        assert a.schedule == b.schedule
        assert all(f.at < 600.0 for f in a.schedule)
        c = ChaosEngine(cluster, seed=43).random_faults(horizon=600.0)
        assert a.schedule != c.schedule

    def test_explicit_target_respected(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0).node_crash(at=1.0, target="node01")
        eng.start()
        env.run(until=2.0)
        assert cluster.node("node01").crashed
        assert not cluster.node("node00").crashed

    def test_noop_when_no_candidate(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0).node_restart(at=1.0)  # nothing crashed
        eng.start()
        env.run(until=2.0)
        [(_, _, target, outcome)] = eng.log
        assert target is None
        assert outcome.startswith("no-op")


class TestFaultEffects:
    def test_node_crash_kills_containers_and_heartbeats(self, env):
        cluster = build(env)
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        victim = cluster.api.get("Pod", "p1").spec.node_name
        eng = ChaosEngine(cluster, seed=0).node_crash(at=env.now + 1.0)
        eng.start()
        env.run(until=env.now + 2.0)
        # prefer_busy: the node hosting the only container is picked
        assert eng.log[0][2] == victim
        assert cluster.node(victim).runtime.containers == {}
        env.run(until=env.now + 8.0)
        node = cluster.api.get("Node", victim, namespace="")
        assert not node.status.ready

    def test_node_restart_brings_node_back(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0)
        eng.node_crash(at=2.0, target="node00").node_restart(at=12.0)
        eng.start()
        env.run(until=20.0)
        assert not cluster.node("node00").crashed
        node = cluster.api.get("Node", "node00", namespace="")
        assert node.status.ready

    def test_gpu_failure_propagates_to_device_and_backend(self, env):
        from repro.gpu.device import DeviceLostError

        cluster = build(env)
        uuid = cluster.nodes[0].gpus[0].uuid
        eng = ChaosEngine(cluster, seed=0).gpu_failure(at=1.0, target=uuid)
        eng.start()
        env.run(until=3.0)
        gpu = cluster.gpu_by_uuid(uuid)
        assert gpu.failed
        backend = cluster.nodes[0].backend
        backend.register(uuid, "c1", 0.5, 1.0)

        def ask():
            yield from backend.acquire(uuid, "c1")

        env.process(ask())
        with pytest.raises(DeviceLostError):
            env.run()

    def test_gpu_recovery_restores_device(self, env):
        cluster = build(env)
        uuid = cluster.nodes[0].gpus[0].uuid
        eng = ChaosEngine(cluster, seed=0)
        eng.gpu_failure(at=1.0, target=uuid).gpu_recovery(at=5.0, target=uuid)
        eng.start()
        env.run(until=8.0)
        gpu = cluster.gpu_by_uuid(uuid)
        assert not gpu.failed
        node = cluster.api.get("Node", "node00", namespace="")
        assert node.status.unhealthy_gpus == []

    def test_backend_restart_bumps_epoch(self, env):
        cluster = build(env)
        epochs_before = [n.backend.epoch for n in cluster.nodes]
        eng = ChaosEngine(cluster, seed=0).backend_restart(at=1.0, target="node00")
        eng.start()
        env.run(until=2.0)
        assert cluster.node("node00").backend.epoch == epochs_before[0] + 1
        assert cluster.node("node01").backend.epoch == epochs_before[1]

    def test_container_crash_fails_the_pod(self, env):
        cluster = build(env)
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        eng = ChaosEngine(cluster, seed=0).container_crash(at=env.now + 0.5)
        eng.start()
        env.run(until=env.now + 3.0)
        pod = cluster.api.get("Pod", "p1")
        assert pod.status.phase is PodPhase.FAILED
        assert "crashed" in (pod.status.message or "")

    def test_apiserver_outage_window(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0).apiserver_outage(at=1.0, duration=2.0)
        eng.start()
        env.run(until=1.5)
        with pytest.raises(ServiceUnavailable):
            cluster.api.list("Pod")
        env.run(until=4.0)
        cluster.api.list("Pod")  # back up, no raise
        assert cluster.api.outages_total == 1

    def test_apiserver_latency_window_restores(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0).apiserver_latency(
            at=1.0, duration=3.0, extra=0.05
        )
        eng.start()
        env.run(until=2.0)
        assert cluster.api.extra_latency == pytest.approx(0.05)
        env.run(until=5.0)
        assert cluster.api.extra_latency == pytest.approx(0.0)

    def test_cluster_survives_outage_during_node_failure(self, env):
        """The nasty overlap: a node dies while the apiserver is down.
        Controllers must ride out ServiceUnavailable and converge late."""
        cluster = build(env, nodes=3)
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        victim = cluster.api.get("Pod", "p1").spec.node_name
        eng = ChaosEngine(cluster, seed=0)
        t = env.now
        eng.apiserver_outage(at=t + 0.5, duration=4.0)
        eng.node_crash(at=t + 1.0, target=victim)
        eng.start()
        env.run(until=t + 20.0)
        node = cluster.api.get("Node", victim, namespace="")
        assert not node.status.ready
        assert cluster.api.get("Pod", "p1") is None  # evicted post-outage

    def test_errors_are_logged_not_raised(self, env):
        cluster = build(env)
        eng = ChaosEngine(cluster, seed=0)
        eng.gpu_failure(at=1.0, target="GPU-does-not-exist")
        eng.start()
        env.run(until=2.0)
        [(_, _, _, outcome)] = eng.log
        assert outcome.startswith("error:")

"""Tests for the synthetic Borg-shaped trace generator and the byte-level
trace-serialization contract it depends on.

The trace_replay perf scenario pins the generated trace by SHA-256 and
the sweep runner's merged reports must be byte-identical across runs, so
this file checks the contract at three levels: float round-tripping
through the JSON-lines form, malformed-input rejection, and a checked-in
golden file that the generator must reproduce byte for byte.
"""

import hashlib
import math
from pathlib import Path

import pytest

from repro.workloads.generator import JobArrival
from repro.workloads.trace import dumps_trace, loads_trace, synthetic_borg_trace

_DATA = Path(__file__).parent / "data"

#: generator parameters the golden file was produced with — changing
#: either the sampler or these values is a contract break, not a refresh.
_GOLDEN_KWARGS = dict(seed=3, horizon=120.0, mean_rate=0.2, period=60.0)


class TestFloatPrecisionRoundTrip:
    def test_full_precision_floats_survive(self):
        # repr-based JSON floats are exact for binary64: values with no
        # short decimal form must come back bit-identical, not rounded.
        job = JobArrival(
            name="precise",
            arrival_time=math.pi * 100.0,
            demand=1.0 / 3.0,
            mem_fraction=0.1 + 0.2,  # the classic 0.30000000000000004
            duration=math.sqrt(2.0) * 50.0,
        )
        (back,) = loads_trace(dumps_trace([job]))
        assert back.arrival_time == job.arrival_time
        assert back.demand == job.demand
        assert back.mem_fraction == job.mem_fraction
        assert back.duration == job.duration

    def test_dumps_is_idempotent_through_loads(self):
        # Serialized form is a fixed point: dump -> load -> dump is byte
        # identical, which is what makes replay-from-canned-trace safe.
        text = dumps_trace(synthetic_borg_trace(**_GOLDEN_KWARGS))
        assert dumps_trace(loads_trace(text)) == text


class TestMalformedLines:
    def test_invalid_json_line_number_reported(self):
        good = dumps_trace(synthetic_borg_trace(**_GOLDEN_KWARGS)).splitlines()
        with pytest.raises(ValueError, match="line 3"):
            loads_trace("\n".join([good[0], good[1], "{broken", good[2]]))

    def test_missing_field_line_number_reported(self):
        with pytest.raises(ValueError, match="line 1"):
            loads_trace('{"name": "a", "arrival_time": 1.0}')

    def test_blank_lines_are_not_jobs(self):
        text = dumps_trace(synthetic_borg_trace(**_GOLDEN_KWARGS))
        assert loads_trace(text + "\n\n") == loads_trace(text)


class TestBorgGeneratorShape:
    def test_arrivals_sorted_within_horizon(self):
        jobs = synthetic_borg_trace(seed=7, horizon=300.0, mean_rate=0.3)
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert all(0.0 <= t < 300.0 for t in times)

    def test_durations_heavy_tailed_but_capped(self):
        jobs = synthetic_borg_trace(
            seed=5, horizon=2000.0, mean_rate=0.5, max_duration=240.0
        )
        durations = [j.duration for j in jobs]
        assert max(durations) <= 240.0
        # The Pareto tail must actually appear: some jobs land well past
        # the lognormal body's bulk.
        assert sum(d > 100.0 for d in durations) > 0

    def test_demands_and_memory_bounded(self):
        for job in synthetic_borg_trace(seed=9, horizon=600.0, mean_rate=0.4):
            assert 0.05 <= job.demand <= 0.95
            assert 0.05 <= job.mem_fraction <= 0.35

    def test_max_jobs_truncates(self):
        jobs = synthetic_borg_trace(seed=7, horizon=2000.0, mean_rate=0.5, max_jobs=10)
        assert len(jobs) == 10


class TestGoldenFile:
    def test_generator_reproduces_golden_bytes(self):
        """The generator is byte-stable: same seed -> same JSON-lines
        bytes, on every platform (full-precision floats, no dict-order
        or locale dependence). A diff here means the sampler changed —
        regenerate the golden file only with a changelog entry, since
        every canned-trace digest downstream shifts with it."""
        golden = (_DATA / "borg_seed3.jsonl").read_text()
        assert dumps_trace(synthetic_borg_trace(**_GOLDEN_KWARGS)) == golden

    def test_digests_stable_across_seeds(self):
        # Pin a few seeds by digest so a change that happens to preserve
        # seed 3 (e.g. a conditional branch on seed parity) still trips.
        expected = {
            0: "8c823f14b1ac3b7843c1bba85d7c1c8e9c57aafa768be15daf075bcc6370ccef",
            3: "82a84815aa116179cf99d197a5dead1d6d0cc3719b84558a0440c44dbde85178",
            23: "1a786b36683b172a6799c46f01d020ddb9f95df14cb2f18fcd0f275538dd35d7",
        }
        for seed, digest in expected.items():
            text = dumps_trace(
                synthetic_borg_trace(
                    seed=seed, horizon=120.0, mean_rate=0.2, period=60.0
                )
            )
            assert hashlib.sha256(text.encode()).hexdigest() == digest

"""Tests for variable-rate inference workloads."""

import pytest

from repro.gpu.backend import TokenBackend
from repro.gpu.device import GPUDevice
from repro.gpu.standalone import kubeshare_env_vars, standalone_context
from repro.sim import Environment
from repro.workloads.variable import (
    RateSchedule,
    VariableRateInferenceJob,
    diurnal_schedule,
)


class TestRateSchedule:
    def test_rate_lookup(self):
        sched = RateSchedule(((0.0, 10.0), (60.0, 30.0)))
        assert sched.rate_at(0) == 10.0
        assert sched.rate_at(59.9) == 10.0
        assert sched.rate_at(60.0) == 30.0

    def test_mean_rate(self):
        sched = RateSchedule(((0.0, 10.0), (50.0, 30.0)))
        assert sched.mean_rate(100.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RateSchedule(())
        with pytest.raises(ValueError):
            RateSchedule(((5.0, 10.0),))  # must start at 0
        with pytest.raises(ValueError):
            RateSchedule(((0.0, 10.0), (5.0, -1.0)))

    def test_diurnal_shape(self):
        sched = diurnal_schedule(period=240.0, base_rate=20.0, amplitude=10.0)
        rates = [r for _, r in sched.steps]
        assert max(rates) == pytest.approx(30.0, abs=1.0)
        assert min(rates) >= 9.0
        assert sched.mean_rate(240.0) == pytest.approx(20.0, abs=1.0)

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            diurnal_schedule(60.0, base_rate=5.0, amplitude=10.0)


class TestVariableRateJob:
    def test_arrival_times_follow_schedule(self):
        job = VariableRateInferenceJob(
            "v", RateSchedule(((0.0, 10.0), (10.0, 20.0))), duration=20.0
        )
        arrivals = job.arrival_times()
        first_half = sum(1 for t in arrivals if t < 10.0)
        second_half = sum(1 for t in arrivals if t >= 10.0)
        assert first_half == pytest.approx(100, abs=2)
        assert second_half == pytest.approx(200, abs=2)

    def test_zero_rate_periods_skipped(self):
        job = VariableRateInferenceJob(
            "v", RateSchedule(((0.0, 10.0), (5.0, 0.0), (15.0, 10.0))),
            duration=20.0,
        )
        arrivals = job.arrival_times()
        assert not any(5.5 < t < 14.5 for t in arrivals)

    def test_usage_tracks_rate_phases(self):
        env = Environment()
        gpu = GPUDevice(env, uuid="GPU-v", node_name="n0")
        job = VariableRateInferenceJob(
            "v", RateSchedule(((0.0, 10.0), (30.0, 40.0))), duration=60.0
        )
        ctx = standalone_context(env, [gpu])
        proc = env.process(job.workload()(ctx))
        busy_at_30 = {}

        def sampler():
            yield env.timeout(30.0)
            busy_at_30["v"] = gpu.busy_time()

        env.process(sampler())
        env.run(until=proc)
        low_phase = busy_at_30["v"] / 30.0
        high_phase = (gpu.busy_time() - busy_at_30["v"]) / (env.now - 30.0)
        assert low_phase == pytest.approx(10 * 0.015, abs=0.03)
        assert high_phase == pytest.approx(40 * 0.015, abs=0.08)

    def test_peak_demand(self):
        job = VariableRateInferenceJob(
            "v", RateSchedule(((0.0, 10.0), (5.0, 50.0))), duration=10.0
        )
        assert job.peak_demand == pytest.approx(0.75)

    def test_elastic_burst_through_device_library(self):
        """A bursty job under KubeShare uses residual capacity during its
        peak, up to its gpu_limit, and still finishes its request volume."""
        env = Environment()
        gpu = GPUDevice(env, uuid="GPU-v", node_name="n0")
        backend = TokenBackend(env)
        job = VariableRateInferenceJob(
            "v",
            RateSchedule(((0.0, 10.0), (20.0, 45.0), (40.0, 10.0))),
            duration=60.0,
        )
        ctx = standalone_context(
            env, [gpu],
            env_vars=kubeshare_env_vars(0.2, 0.8, 0.5, "token"),
            backend=backend, name="bursty",
        )
        proc = env.process(job.workload()(ctx))
        env.run(until=proc)
        stats = proc.value
        assert not stats.failed
        expected_requests = len(job.arrival_times())
        assert stats.steps_done == expected_requests
        # ends shortly after the last arrival (no large backlog left)
        assert env.now < 70.0

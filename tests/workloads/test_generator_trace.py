"""Unit tests for workload generation and trace round-tripping."""

import numpy as np
import pytest

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.interference import JOB_A, JOB_B
from repro.workloads.trace import dumps_trace, load_trace, loads_trace, dump_trace


class TestArrivals:
    def test_poisson_mean_interarrival(self):
        gen = WorkloadGenerator(seed=1)
        arrivals = gen.poisson_arrivals(jobs_per_minute=30.0, n_jobs=5000)
        gaps = np.diff(np.concatenate([[0.0], arrivals]))
        assert gaps.mean() == pytest.approx(2.0, rel=0.05)

    def test_arrivals_monotone(self):
        arrivals = WorkloadGenerator(0).poisson_arrivals(10.0, 100)
        assert (np.diff(arrivals) >= 0).all()

    def test_validation(self):
        gen = WorkloadGenerator(0)
        with pytest.raises(ValueError):
            gen.poisson_arrivals(0, 10)
        with pytest.raises(ValueError):
            gen.poisson_arrivals(10, 0)


class TestDemands:
    def test_mean_and_clipping(self):
        gen = WorkloadGenerator(seed=2)
        demands = gen.normal_demands(mean=0.3, std=0.1, n_jobs=5000)
        assert demands.mean() == pytest.approx(0.3, abs=0.02)
        assert demands.min() >= 0.05
        assert demands.max() <= 0.95

    def test_zero_std_is_constant(self):
        demands = WorkloadGenerator(0).normal_demands(0.4, 0.0, 10)
        assert (demands == 0.4).all()

    def test_validation(self):
        gen = WorkloadGenerator(0)
        with pytest.raises(ValueError):
            gen.normal_demands(0.0, 0.1, 10)
        with pytest.raises(ValueError):
            gen.normal_demands(0.3, -1.0, 10)


class TestWorkload:
    def test_reproducible_with_seed(self):
        w1 = WorkloadGenerator(seed=7).inference_workload(n_jobs=20)
        w2 = WorkloadGenerator(seed=7).inference_workload(n_jobs=20)
        assert w1.jobs == w2.jobs

    def test_different_seeds_differ(self):
        w1 = WorkloadGenerator(seed=7).inference_workload(n_jobs=20)
        w2 = WorkloadGenerator(seed=8).inference_workload(n_jobs=20)
        assert w1.jobs != w2.jobs

    def test_job_fields(self):
        w = WorkloadGenerator(0).inference_workload(
            n_jobs=5, demand_mean=0.3, mem_fraction=0.25, duration=60.0
        )
        assert len(w) == 5
        job = w.jobs[0]
        assert job.mem_fraction == 0.25
        assert job.duration == 60.0
        inference = job.to_job()
        assert inference.demand == pytest.approx(job.demand)

    def test_total_demand_aggregate(self):
        w = WorkloadGenerator(0).inference_workload(n_jobs=10, demand_std=0.0)
        assert w.total_demand == pytest.approx(10 * 0.3)


class TestTrace:
    def test_roundtrip_text(self):
        w = WorkloadGenerator(3).inference_workload(n_jobs=8)
        text = dumps_trace(w.jobs)
        back = loads_trace(text)
        assert back == w.jobs

    def test_roundtrip_file(self, tmp_path):
        w = WorkloadGenerator(3).inference_workload(n_jobs=4)
        path = dump_trace(w, tmp_path / "trace.jsonl")
        assert load_trace(path) == w.jobs

    def test_empty_trace(self):
        assert loads_trace("") == []
        assert dumps_trace([]) == ""

    def test_invalid_json_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_trace('{"name": "a", "arrival_time": 0, "demand": 0.1, '
                        '"mem_fraction": 0.2, "duration": 10}\nnot-json')

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            loads_trace('{"name": "a"}')


class TestInterferenceProfiles:
    def test_job_a_over_requests(self):
        assert JOB_A.gpu_request > JOB_A.actual_demand

    def test_job_b_under_requests(self):
        assert JOB_B.gpu_request < JOB_B.actual_demand

    def test_both_request_under_half(self):
        """§5.5: both kinds request < 50%, so any two can share a GPU."""
        assert JOB_A.gpu_request < 0.5
        assert JOB_B.gpu_request < 0.5
        assert JOB_A.gpu_request + JOB_B.gpu_request <= 1.0

    def test_equalized_standalone_durations(self):
        assert JOB_A.standalone_duration == pytest.approx(
            JOB_B.standalone_duration
        )

    def test_job_materialization(self):
        job = JOB_B.job("b-0")
        assert job.demand == pytest.approx(JOB_B.actual_demand)

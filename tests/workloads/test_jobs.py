"""Unit tests for the deep-learning job models (Table 3)."""

import pytest

from repro.gpu.device import GPUDevice, V100_MEMORY
from repro.gpu.standalone import standalone_context
from repro.sim import Environment
from repro.workloads.jobs import InferenceJob, JobStats, TrainingJob


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return GPUDevice(env, uuid="GPU-w", node_name="n0")


def run_workload(env, gpu, workload):
    ctx = standalone_context(env, [gpu])
    proc = env.process(workload(ctx))
    env.run(until=proc)
    return proc.value


class TestTrainingJob:
    def test_total_work(self):
        job = TrainingJob("t", steps=100, step_work=0.05)
        assert job.total_work == pytest.approx(5.0)

    def test_runs_to_completion_at_full_rate(self, env, gpu):
        job = TrainingJob("t", steps=40, step_work=0.05)
        stats = run_workload(env, gpu, job.workload())
        assert stats.steps_done == 40
        assert stats.finished_at == pytest.approx(2.0)
        assert not stats.failed

    def test_progress_checkpoints(self, env, gpu):
        job = TrainingJob("t", steps=200, step_work=0.01, checkpoint_every=50)
        stats = run_workload(env, gpu, job.workload())
        assert len(stats.progress) == 4
        times = [t for t, _ in stats.progress]
        assert times == sorted(times)

    def test_memory_allocated_and_released(self, env, gpu):
        job = TrainingJob("t", steps=10, step_work=0.01, model_memory=2**30)
        run_workload(env, gpu, job.workload())
        assert gpu.memory_used == 0  # ctx destroyed in finally

    def test_failure_recorded_in_stats(self, env, gpu):
        job = TrainingJob("t", steps=10, model_memory=2 * V100_MEMORY)
        stats = JobStats("t")
        wl = job.workload(stats)
        ctx = standalone_context(env, [gpu])
        env.process(wl(ctx))
        with pytest.raises(Exception):
            env.run()
        assert stats.failed
        assert "GpuOutOfMemory" in stats.failure

    def test_stats_attached_to_factory(self):
        wl = TrainingJob("t").workload()
        assert isinstance(wl.stats, JobStats)


class TestInferenceJob:
    def test_demand_formula(self):
        job = InferenceJob("i", request_rate=20.0, request_work=0.015)
        assert job.demand == pytest.approx(0.30)

    def test_demand_capped_at_one(self):
        job = InferenceJob("i", request_rate=100.0, request_work=0.05)
        assert job.demand == 1.0

    def test_from_demand_roundtrip(self):
        job = InferenceJob.from_demand("i", demand=0.3, duration=60.0)
        assert job.demand == pytest.approx(0.3)
        assert job.requests / job.request_rate == pytest.approx(60.0, rel=0.01)

    def test_from_demand_validation(self):
        with pytest.raises(ValueError):
            InferenceJob.from_demand("i", demand=0.0)

    def test_alone_duration_matches_request_pacing(self, env, gpu):
        job = InferenceJob.from_demand("i", demand=0.4, duration=30.0)
        stats = run_workload(env, gpu, job.workload())
        assert stats.duration == pytest.approx(30.0, rel=0.02)

    def test_average_usage_equals_demand(self, env, gpu):
        job = InferenceJob.from_demand("i", demand=0.25, duration=40.0)
        stats = run_workload(env, gpu, job.workload())
        usage = gpu.busy_time() / stats.duration
        assert usage == pytest.approx(0.25, abs=0.02)

    def test_throttled_job_takes_longer_but_finishes(self, env, gpu):
        from repro.gpu.backend import TokenBackend
        from repro.gpu.standalone import kubeshare_env_vars

        job = InferenceJob.from_demand("i", demand=0.8, duration=10.0)
        ctx = standalone_context(
            env,
            [gpu],
            env_vars=kubeshare_env_vars(0.2, 0.4, 1.0, "fluid"),
            backend=TokenBackend(env, handoff_overhead=0.0),
        )
        proc = env.process(job.workload()(ctx))
        env.run(until=proc)
        # 8.0 of work squeezed to a 0.4 limit ⇒ ≈20 s instead of 10 s
        assert env.now == pytest.approx(20.0, rel=0.05)

    def test_backlogged_server_catches_up(self, env, gpu):
        """After a contention phase ends, a backlogged server bursts above
        its nominal demand instead of idling (arrival-paced model)."""
        job = InferenceJob.from_demand("i", demand=0.5, duration=20.0)
        squeezer_done = {}

        def squeezer(ctx):
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            yield from api.cu_launch_kernel(cu, 8.0)  # hog until t≈?
            api.cu_ctx_destroy(cu)
            squeezer_done["t"] = ctx.env.now

        ctx1 = standalone_context(env, [gpu])
        ctx2 = standalone_context(env, [gpu])
        env.process(squeezer(ctx1))
        p = env.process(job.workload()(ctx2))
        env.run(until=p)
        # fair sharing with the hog slows the server early on, but it must
        # still finish well before 2x its nominal duration
        assert env.now < 30.0

"""Tests for the vectorized arrival-flow samplers and the dual-mode
:class:`~repro.workloads.flows.FlowScheduler`.

The samplers batch-generate whole arrival processes with a seeded numpy
Generator; the scheduler then drives them through the kernel either as a
chaining reference process (``REPRO_SLOW_KERNEL``) or as pre-scheduled
bare timeouts. The load-bearing property is the last test class: both
modes fire the same callbacks at the same virtual times in the same
order, which is what lets ``repro.experiments.common`` swap the per-job
Timeout chain for one batched flow without moving a single summary byte.
"""

import numpy as np
import pytest

from repro.perf import fastpath
from repro.sim import Environment
from repro.workloads.flows import (
    FlowScheduler,
    diurnal_times,
    mmpp_times,
    poisson_times,
)


class TestPoissonTimes:
    def test_n_mode_count_and_monotonicity(self):
        times = poisson_times(2.0, np.random.default_rng(1), n=500)
        assert len(times) == 500
        assert (np.diff(times) >= 0).all()

    def test_horizon_mode_bounded(self):
        times = poisson_times(5.0, np.random.default_rng(2), horizon=100.0)
        assert (times < 100.0).all()
        # rate 5/s over 100s: the count concentrates near 500.
        assert 350 < len(times) < 650

    def test_mean_interarrival(self):
        times = poisson_times(4.0, np.random.default_rng(3), n=20_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert gaps.mean() == pytest.approx(0.25, rel=0.05)

    def test_start_offset(self):
        times = poisson_times(1.0, np.random.default_rng(4), n=10, start=50.0)
        assert (times >= 50.0).all()

    def test_seeded_determinism(self):
        a = poisson_times(3.0, np.random.default_rng(7), horizon=40.0)
        b = poisson_times(3.0, np.random.default_rng(7), horizon=40.0)
        assert (a == b).all()

    def test_exactly_one_mode_required(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_times(1.0, rng)
        with pytest.raises(ValueError):
            poisson_times(1.0, rng, n=10, horizon=10.0)


class TestMmppTimes:
    def test_bounded_and_sorted(self):
        times = mmpp_times(
            [10.0, 0.5], [5.0, 5.0], horizon=200.0, rng=np.random.default_rng(5)
        )
        assert (np.diff(times) >= 0).all()
        assert (times < 200.0).all()

    def test_burstier_than_poisson(self):
        # Same mean rate, but the two-state modulation inflates the
        # variance of per-window counts well past Poisson's var == mean.
        rng = np.random.default_rng(6)
        times = mmpp_times([20.0, 0.2], [3.0, 3.0], horizon=3000.0, rng=rng)
        counts = np.histogram(times, bins=np.arange(0.0, 3000.0, 10.0))[0]
        assert counts.var() > 2.0 * counts.mean()


class TestDiurnalTimes:
    def test_bounded_and_sorted(self):
        times = diurnal_times(1.0, 500.0, np.random.default_rng(8), period=100.0)
        assert (np.diff(times) >= 0).all()
        assert (times < 500.0).all()

    def test_peak_concentration(self):
        # With phase 0 the rate peaks in the first half of each period;
        # at amplitude 0.95 about 80% of arrivals land there.
        times = diurnal_times(
            2.0, 10_000.0, np.random.default_rng(9), amplitude=0.95, period=100.0
        )
        phase = times % 100.0
        assert (phase < 50.0).mean() > 0.72

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            diurnal_times(1.0, 10.0, np.random.default_rng(0), amplitude=1.0)


class TestFlowScheduler:
    def _drive(self, slow: bool):
        fired = []
        with fastpath.force(slow):
            env = Environment()
            times = [0.0, 0.5, 0.5, 2.25, 7.0]  # includes a same-tick tie
            done = FlowScheduler(env).schedule(
                times, lambda i: fired.append((env.now, i))
            )
            env.run(until=done)
        return env.now, fired

    def test_fast_and_slow_fire_identically(self):
        assert self._drive(slow=False) == self._drive(slow=True)

    def test_fire_times_and_order(self):
        now, fired = self._drive(slow=False)
        assert now == 7.0
        assert fired == [(0.0, 0), (0.5, 1), (0.5, 2), (2.25, 3), (7.0, 4)]

    def test_empty_flow_completes_immediately(self):
        env = Environment()
        done = FlowScheduler(env).schedule([], lambda i: None)
        env.run(until=done)
        assert env.now == 0.0

    def test_rejects_unsorted_times(self):
        env = Environment()
        with pytest.raises(ValueError):
            FlowScheduler(env).schedule([1.0, 0.5], lambda i: None)

    def test_rejects_past_times(self):
        env = Environment()
        env.run(until=env.timeout(10.0))
        with pytest.raises(ValueError):
            FlowScheduler(env).schedule([5.0], lambda i: None)

"""Informer convergence after outages and restarts.

Watch streams attach directly to etcd, and an apiserver outage gates
request processing — writes fail, so there are no events to miss while
the stream stays open. Events *can* be missed by a stopped informer
(controller failover or pause/resume), which is what relist-on-reconnect
(:meth:`Informer._run` pruning) and :meth:`Informer.resync` cover; the
controller's outage monitor resyncs once per outage as a safety net.
These are the regression tests for all three paths.
"""

import pytest

from repro.cluster.apiserver import APIServer, ServiceUnavailable
from repro.cluster.controller import Controller, Informer
from repro.cluster.etcd import WatchEventType
from repro.cluster.objects import ObjectMeta, Pod
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    return APIServer(env)


def cache_keys(informer):
    return set(informer.cache)


def api_keys(api, kind="Pod"):
    return {obj.metadata.key for obj in api.list(kind)}


class TestLiveWatchDuringOutage:
    def test_no_events_can_be_missed_during_outage(self, env, api):
        """While the apiserver is down, writes fail — so an informer that
        keeps its watch open converges trivially once writers retry."""
        informer = Informer(env, api, "Pod")
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="before")))
        env.run(until=1.0)

        api.set_outage(2.0)
        with pytest.raises(ServiceUnavailable):
            api.create(Pod(metadata=ObjectMeta(name="during")))
        env.run(until=2.0)  # mid-outage: nothing changed, nothing missed
        assert cache_keys(informer) == {"default/before"}

        env.run(until=3.5)  # outage over: the writer retries
        api.create(Pod(metadata=ObjectMeta(name="after")))
        api.delete("Pod", "before")
        env.run(until=4.0)
        assert cache_keys(informer) == api_keys(api) == {"default/after"}

    def test_controller_resyncs_once_after_outage(self, env, api):
        class Noop(Controller):
            def reconcile(self, key):
                return
                yield

        ctl = Noop(env, api).start()
        env.run(until=1.0)
        assert ctl.resyncs_total == 0
        api.set_outage(1.0)
        env.run(until=4.0)
        assert ctl.resyncs_total == 1  # exactly one resync per outage
        api.set_outage(0.5)
        env.run(until=6.0)
        assert ctl.resyncs_total == 2


class TestStoppedInformer:
    def test_restart_prunes_objects_deleted_while_stopped(self, env, api):
        informer = Informer(env, api, "Pod")
        deletes = []
        informer.add_handler(
            lambda et, obj: deletes.append(obj.metadata.key)
            if et is WatchEventType.DELETE
            else None
        )
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="keep")))
        api.create(Pod(metadata=ObjectMeta(name="doomed")))
        env.run(until=1.0)
        assert cache_keys(informer) == {"default/keep", "default/doomed"}

        informer.stop()
        api.delete("Pod", "doomed")
        api.create(Pod(metadata=ObjectMeta(name="new")))
        env.run(until=2.0)
        # Stale view while stopped — this is the failover window.
        assert "default/doomed" in cache_keys(informer)

        informer.start()
        env.run(until=3.0)
        assert cache_keys(informer) == api_keys(api) == {
            "default/keep",
            "default/new",
        }
        assert deletes == ["default/doomed"]  # synthetic DELETE dispatched

    def test_resync_reconciles_every_difference(self, env, api):
        informer = Informer(env, api, "Pod")
        events = []
        informer.add_handler(lambda et, obj: events.append((et, obj.metadata.key)))
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="stays")))
        api.create(Pod(metadata=ObjectMeta(name="goes")))
        api.create(Pod(metadata=ObjectMeta(name="changes")))
        env.run(until=1.0)

        informer.stop()
        api.delete("Pod", "goes")
        api.patch("Pod", "changes", lambda p: p.metadata.labels.update(v="2"))
        api.create(Pod(metadata=ObjectMeta(name="appears")))
        events.clear()

        informer.resync()
        assert cache_keys(informer) == api_keys(api)
        assert informer.get("default/changes").metadata.labels == {"v": "2"}
        assert (WatchEventType.DELETE, "default/goes") in events
        assert (WatchEventType.PUT, "default/appears") in events
        assert (WatchEventType.PUT, "default/changes") in events
        # Unchanged objects dispatch nothing (no reconcile storms).
        assert (WatchEventType.PUT, "default/stays") not in events

    def test_resync_during_outage_is_a_safe_noop(self, env, api):
        informer = Informer(env, api, "Pod")
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="p")))
        env.run(until=1.0)
        api.set_outage(5.0)
        informer.resync()  # must not raise, must not wipe the cache
        assert cache_keys(informer) == {"default/p"}

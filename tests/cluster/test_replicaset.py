"""Tests for the ReplicaSet controller, including SharePod replicas (§4.6)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.controllers import ReplicaSet, ReplicaSetController
from repro.cluster.objects import (
    ContainerSpec,
    LabelSelector,
    ObjectMeta,
    PodPhase,
    PodSpec,
)
from repro.core import KubeShare
from repro.core.sharepod import SharePod, SharePodSpec


@pytest.fixture
def rs_cluster(env):
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    controller = ReplicaSetController(env, cluster.api).start()
    return cluster, controller


def make_rs(name="web", replicas=3):
    return ReplicaSet(
        metadata=ObjectMeta(name=name),
        replicas=replicas,
        selector=LabelSelector({"app": name}),
        template=PodSpec(containers=[ContainerSpec(requests={"cpu": 0.5})]),
        template_labels={"app": name},
    )


class TestReplicaSet:
    def test_scales_up_to_desired(self, env, rs_cluster):
        cluster, _ = rs_cluster
        cluster.api.create(make_rs(replicas=3))
        env.run(until=5)
        pods = [p for p in cluster.api.pods() if p.metadata.labels.get("app") == "web"]
        assert len(pods) == 3

    def test_replaces_finished_pods(self, env, rs_cluster):
        cluster, _ = rs_cluster
        cluster.api.create(make_rs(replicas=2))
        env.run(until=5)
        victim = next(p for p in cluster.api.pods() if p.metadata.labels)
        cluster.api.delete("Pod", victim.name)
        env.run(until=10)
        live = [
            p
            for p in cluster.api.pods()
            if p.metadata.labels.get("app") == "web"
            and p.status.phase in (PodPhase.PENDING, PodPhase.RUNNING)
        ]
        assert len(live) == 2

    def test_scales_down(self, env, rs_cluster):
        cluster, _ = rs_cluster
        cluster.api.create(make_rs(replicas=3))
        env.run(until=5)
        cluster.api.patch("ReplicaSet", "web", lambda rs: setattr(rs, "replicas", 1))
        env.run(until=10)
        live = [
            p
            for p in cluster.api.pods()
            if p.metadata.labels.get("app") == "web"
            and p.status.phase in (PodPhase.PENDING, PodPhase.RUNNING)
        ]
        assert len(live) == 1

    def test_deleting_rs_garbage_collects_pods(self, env, rs_cluster):
        cluster, _ = rs_cluster
        cluster.api.create(make_rs(replicas=2))
        env.run(until=5)
        cluster.api.delete("ReplicaSet", "web")
        env.run(until=10)
        owned = [p for p in cluster.api.pods() if p.metadata.owner_references]
        assert owned == []


class TestSharePodReplicas:
    """§4.6: higher-level controllers integrate by creating sharePods."""

    def test_replicated_sharepods(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        ks = KubeShare(cluster, isolation="token").start()

        def sharepod_factory(rs, name):
            sp = SharePod(
                metadata=ObjectMeta(name=name, namespace=rs.metadata.namespace),
                spec=SharePodSpec(gpu_request=0.3, gpu_limit=0.6, gpu_mem=0.2),
            )
            sp.metadata.labels = dict(rs.template_labels)
            sp.metadata.owner_references = [rs.metadata.key]
            return sp

        controller = ReplicaSetController(
            env, cluster.api, pod_factory=sharepod_factory
        ).start()
        cluster.api.create(make_rs(name="serve", replicas=2))
        env.run(until=15)
        sharepods = [
            sp
            for sp in cluster.api.list("SharePod")
            if sp.metadata.labels.get("app") == "serve"
        ]
        assert len(sharepods) == 2
        assert all(sp.status.phase is PodPhase.RUNNING for sp in sharepods)
        # both replicas share the same physical GPU (requests 0.3 + 0.3)
        uuids = {sp.status.gpu_uuid for sp in sharepods}
        assert len(uuids) == 1

"""Unit tests for the container runtime (start latency, stop, workloads)."""

import pytest

from repro.cluster.runtime import ContainerContext, ContainerRuntime, RuntimeLatency
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def runtime(env):
    return ContainerRuntime(
        env, "node0", latency=RuntimeLatency(base=0.5, setup=1.0, setup_slots=1)
    )


def ctx_for(env, name="pod"):
    return ContainerContext(
        env=env, pod_name=name, pod_uid=f"uid-{name}", node_name="node0"
    )


class TestStartLatency:
    def test_single_start_pays_base_plus_setup(self, env, runtime):
        def starter():
            handle = yield env.process(
                runtime.start_container(ctx_for(env), None)
            )
            return (env.now, handle)

        p = env.process(starter())
        env.run(until=p)
        started_at, handle = p.value
        assert started_at == pytest.approx(1.5)
        assert handle.running

    def test_concurrent_starts_serialize_on_setup_slots(self, env, runtime):
        times = []

        def starter(i):
            yield env.process(
                runtime.start_container(ctx_for(env, f"p{i}"), None)
            )
            times.append(env.now)

        for i in range(3):
            env.process(starter(i))
        env.run()
        assert times == pytest.approx([1.5, 2.5, 3.5])

    def test_started_total_counts(self, env, runtime):
        def starter():
            yield env.process(runtime.start_container(ctx_for(env), None))

        env.process(starter())
        env.run()
        assert runtime.started_total == 1


class TestWorkloadExecution:
    def test_workload_value_recorded(self, env, runtime):
        def wl(ctx):
            yield ctx.env.timeout(2.0)
            return {"answer": 42}

        def starter():
            handle = yield env.process(runtime.start_container(ctx_for(env), wl))
            ok = yield handle.wait()
            return (ok, handle.exit_value, handle.finished_at)

        p = env.process(starter())
        env.run(until=p)
        ok, value, finished = p.value
        assert ok and value == {"answer": 42}
        assert finished == pytest.approx(3.5)

    def test_crashing_workload_reports_failure(self, env, runtime):
        def wl(ctx):
            yield ctx.env.timeout(0.1)
            raise RuntimeError("segfault")

        def starter():
            handle = yield env.process(runtime.start_container(ctx_for(env), wl))
            ok = yield handle.wait()
            return (ok, handle.exit_value)

        p = env.process(starter())
        env.run(until=p)
        ok, value = p.value
        assert ok is False
        assert isinstance(value, RuntimeError)

    def test_stop_interrupts_service_workload(self, env, runtime):
        def starter():
            handle = yield env.process(
                runtime.start_container(ctx_for(env, "svc"), None)
            )
            return handle

        p = env.process(starter())
        env.run(until=p)
        handle = p.value

        def stopper():
            yield env.timeout(5.0)
            yield env.process(runtime.stop_container("uid-svc"))

        env.process(stopper())
        env.run()
        assert not handle.running
        assert handle.exit_ok  # graceful stop
        assert "uid-svc" not in runtime.containers

    def test_stop_unknown_container_is_noop(self, env, runtime):
        def stopper():
            gone = yield env.process(runtime.stop_container("ghost"))
            return gone

        p = env.process(stopper())
        env.run(until=p)
        assert p.value is None


class TestContainerContext:
    def test_visible_gpus_parsing(self, env):
        class FakeGPU:
            pass

        g1, g2 = FakeGPU(), FakeGPU()
        ctx = ContainerContext(
            env=env, pod_name="p", pod_uid="u", node_name="n",
            env_vars={"NVIDIA_VISIBLE_DEVICES": "g1"},
            gpu_registry={"g1": g1, "g2": g2},
        )
        assert ctx.visible_gpus() == [g1]
        ctx.env_vars["NVIDIA_VISIBLE_DEVICES"] = "all"
        assert set(ctx.visible_gpus()) == {g1, g2}
        ctx.env_vars["NVIDIA_VISIBLE_DEVICES"] = "none"
        assert ctx.visible_gpus() == []
        ctx.env_vars["NVIDIA_VISIBLE_DEVICES"] = "g1,g2"
        assert ctx.visible_gpus() == [g1, g2]
        ctx.env_vars["NVIDIA_VISIBLE_DEVICES"] = "g1,ghost"
        assert ctx.visible_gpus() == [g1]

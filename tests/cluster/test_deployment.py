"""Tests for the Deployment controller (rolling updates over ReplicaSets)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.controllers import (
    Deployment,
    DeploymentController,
    ReplicaSetController,
)
from repro.cluster.objects import (
    ContainerSpec,
    LabelSelector,
    ObjectMeta,
    PodPhase,
    PodSpec,
)


@pytest.fixture
def stack(env):
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    ReplicaSetController(env, cluster.api).start()
    DeploymentController(env, cluster.api).start()
    return cluster


def make_deploy(name="web", replicas=3):
    return Deployment(
        metadata=ObjectMeta(name=name),
        replicas=replicas,
        selector=LabelSelector({"app": name}),
        template=PodSpec(containers=[ContainerSpec(requests={"cpu": 0.5})]),
        template_labels={"app": name},
    )


def live_pods(cluster, app, revision=None):
    out = []
    for p in cluster.api.pods():
        if p.metadata.labels.get("app") != app:
            continue
        if revision is not None and p.metadata.labels.get("revision") != str(revision):
            continue
        if p.status.phase in (PodPhase.PENDING, PodPhase.RUNNING):
            out.append(p)
    return out


class TestDeployment:
    def test_creates_replicaset_and_pods(self, env, stack):
        stack.api.create(make_deploy(replicas=3))
        env.run(until=10)
        assert len(stack.api.list("ReplicaSet")) == 1
        assert len(live_pods(stack, "web")) == 3

    def test_scale_up_and_down(self, env, stack):
        stack.api.create(make_deploy(replicas=2))
        env.run(until=10)
        stack.api.patch("Deployment", "web", lambda d: setattr(d, "replicas", 4))
        env.run(until=20)
        assert len(live_pods(stack, "web")) == 4
        stack.api.patch("Deployment", "web", lambda d: setattr(d, "replicas", 1))
        env.run(until=30)
        assert len(live_pods(stack, "web")) == 1

    def test_rolling_update_replaces_revision(self, env, stack):
        stack.api.create(make_deploy(replicas=3))
        env.run(until=10)
        stack.api.patch("Deployment", "web", lambda d: setattr(d, "revision", 2))
        env.run(until=40)
        assert len(live_pods(stack, "web", revision=2)) == 3
        assert len(live_pods(stack, "web", revision=1)) == 0
        # old revision's ReplicaSet garbage-collected
        names = [rs.metadata.name for rs in stack.api.list("ReplicaSet")]
        assert names == ["web-rev2"]

    def test_rolling_update_never_drops_below_n_minus_1(self, env, stack):
        stack.api.create(make_deploy(replicas=3))
        env.run(until=10)
        stack.api.patch("Deployment", "web", lambda d: setattr(d, "revision", 2))
        low_water = []

        def monitor():
            while env.now < 40:
                low_water.append(len(live_pods(stack, "web")))
                yield env.timeout(0.5)

        env.process(monitor())
        env.run(until=40)
        assert min(low_water) >= 2  # replicas - 1

    def test_deleting_deployment_cleans_up(self, env, stack):
        stack.api.create(make_deploy(replicas=2))
        env.run(until=10)
        stack.api.delete("Deployment", "web")
        env.run(until=20)
        assert stack.api.list("ReplicaSet") == []
        assert live_pods(stack, "web") == []

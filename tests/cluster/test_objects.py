"""Unit tests for the Kubernetes object model."""

from repro.cluster.objects import (
    ContainerSpec,
    LabelSelector,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    Quantities,
    group_by_node,
)


class TestQuantities:
    def test_add(self):
        assert Quantities.add({"cpu": 1.0}, {"cpu": 2.0, "mem": 4.0}) == {
            "cpu": 3.0,
            "mem": 4.0,
        }

    def test_sub(self):
        out = Quantities.sub({"cpu": 3.0}, {"cpu": 1.0, "gpu": 1.0})
        assert out == {"cpu": 2.0, "gpu": -1.0}

    def test_fits_true_when_available(self):
        assert Quantities.fits({"cpu": 1.0}, {"cpu": 1.0})

    def test_fits_false_when_exceeds(self):
        assert not Quantities.fits({"cpu": 2.0}, {"cpu": 1.0})

    def test_fits_missing_resource_is_zero(self):
        assert not Quantities.fits({"gpu": 1.0}, {"cpu": 8.0})

    def test_fits_tolerates_float_noise(self):
        assert Quantities.fits({"cpu": 0.1 + 0.2}, {"cpu": 0.3})

    def test_nonneg(self):
        assert Quantities.nonneg({"a": 0.0, "b": 1.0})
        assert not Quantities.nonneg({"a": -0.5})


class TestObjectMeta:
    def test_key_combines_namespace_and_name(self):
        meta = ObjectMeta(name="p", namespace="ns")
        assert meta.key == "ns/p"

    def test_uids_are_unique(self):
        assert ObjectMeta(name="a").uid != ObjectMeta(name="b").uid


class TestPod:
    def test_defaults(self):
        pod = Pod(metadata=ObjectMeta(name="p"))
        assert pod.status.phase is PodPhase.PENDING
        assert not pod.bound
        assert pod.kind == "Pod"

    def test_resource_requests_sum_containers(self):
        spec = PodSpec(
            containers=[
                ContainerSpec(requests={"cpu": 1.0}),
                ContainerSpec(requests={"cpu": 2.0, "nvidia.com/gpu": 1}),
            ]
        )
        assert spec.resource_requests() == {"cpu": 3.0, "nvidia.com/gpu": 1}

    def test_clone_is_deep_but_shares_workload(self):
        def wl(ctx):
            yield None

        pod = Pod(metadata=ObjectMeta(name="p", labels={"a": "1"}))
        pod.spec.workload = wl
        dup = pod.clone()
        dup.metadata.labels["a"] = "2"
        assert pod.metadata.labels["a"] == "1"
        assert dup.spec.workload is wl
        assert pod.spec.workload is wl  # original not clobbered

    def test_group_by_node_skips_unbound(self):
        p1 = Pod(metadata=ObjectMeta(name="a"))
        p1.spec.node_name = "n1"
        p2 = Pod(metadata=ObjectMeta(name="b"))
        grouped = group_by_node([p1, p2])
        assert list(grouped) == ["n1"]
        assert grouped["n1"][0].name == "a"


class TestLabelSelector:
    def test_empty_selector_matches_everything(self):
        assert LabelSelector().matches({"any": "thing"})

    def test_exact_match_required(self):
        sel = LabelSelector({"app": "web"})
        assert sel.matches({"app": "web", "tier": "fe"})
        assert not sel.matches({"app": "db"})
        assert not sel.matches({})

"""Integration tests for kube-scheduler + kubelet + runtime on a cluster."""


from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import (
    GPU_RESOURCE,
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
)


def gpu_pod(name, gpus=1, cpu=1.0, workload=None, node_selector=None):
    return Pod(
        metadata=ObjectMeta(name=name),
        spec=PodSpec(
            containers=[
                ContainerSpec(requests={"cpu": cpu, GPU_RESOURCE: gpus})
            ],
            workload=workload,
            node_selector=node_selector or {},
        ),
    )


def finish_quickly(ctx):
    yield ctx.env.timeout(1.0)
    return "ok"


class TestScheduling:
    def test_pod_gets_bound_and_runs(self, small_cluster):
        c = small_cluster
        c.submit(gpu_pod("p1", workload=finish_quickly))
        done = c.env.process(
            c.wait_for_phase("p1", [PodPhase.SUCCEEDED, PodPhase.FAILED])
        )
        c.env.run(until=done)
        pod = c.api.get("Pod", "p1")
        assert pod.status.phase is PodPhase.SUCCEEDED
        assert pod.spec.node_name in {"node00", "node01"}
        assert "NVIDIA_VISIBLE_DEVICES" in pod.status.container_env

    def test_least_allocated_spreads_pods(self, small_cluster):
        c = small_cluster
        for i in range(2):
            c.submit(gpu_pod(f"p{i}", workload=None))
        waits = [
            c.env.process(c.wait_for_phase(f"p{i}", [PodPhase.RUNNING]))
            for i in range(2)
        ]
        c.env.run(until=c.env.all_of(waits))
        nodes = {c.api.get("Pod", f"p{i}").spec.node_name for i in range(2)}
        assert len(nodes) == 2  # spread, not packed

    def test_queueing_when_gpus_exhausted(self, small_cluster):
        c = small_cluster

        def short(ctx):
            yield ctx.env.timeout(5.0)

        # 4 GPUs total; submit 5 single-GPU pods.
        for i in range(5):
            c.submit(gpu_pod(f"p{i}", workload=short))
        done = c.env.process(c.wait_all_terminal([f"p{i}" for i in range(5)]))
        c.env.run(until=done)
        finishes = sorted(
            c.api.get("Pod", f"p{i}").status.finish_time for i in range(5)
        )
        # The 5th pod had to wait for a release: clearly later than the rest.
        assert finishes[4] > finishes[3] + 2.0

    def test_node_selector_respected(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=1))
        cluster.nodes[1].kubelet.labels["zone"] = "west"
        cluster.start()
        cluster.submit(
            gpu_pod("picky", workload=None, node_selector={"zone": "west"})
        )
        wait = env.process(cluster.wait_for_phase("picky", [PodPhase.RUNNING]))
        env.run(until=wait)
        assert cluster.api.get("Pod", "picky").spec.node_name == "node01"

    def test_impossible_request_stays_pending(self, small_cluster):
        c = small_cluster
        c.submit(gpu_pod("greedy", gpus=3))  # nodes only have 2 GPUs
        c.env.run(until=5)
        pod = c.api.get("Pod", "greedy")
        assert pod.status.phase is PodPhase.PENDING
        assert not pod.bound

    def test_prebound_pod_skips_scheduler(self, small_cluster):
        c = small_cluster
        pod = gpu_pod("pinned", workload=None)
        pod.spec.node_name = "node01"
        c.submit(pod)
        wait = c.env.process(c.wait_for_phase("pinned", [PodPhase.RUNNING]))
        c.env.run(until=wait)
        assert c.scheduler.binds_total == 0


class TestKubelet:
    def test_failing_workload_marks_pod_failed(self, small_cluster):
        c = small_cluster

        def crash(ctx):
            yield ctx.env.timeout(0.5)
            raise ValueError("bad model")

        c.submit(gpu_pod("crasher", workload=crash))
        done = c.env.process(
            c.wait_for_phase("crasher", [PodPhase.SUCCEEDED, PodPhase.FAILED])
        )
        c.env.run(until=done)
        pod = c.api.get("Pod", "crasher")
        assert pod.status.phase is PodPhase.FAILED
        assert "bad model" in pod.status.message

    def test_fractional_extended_request_fails_admission(self, small_cluster):
        c = small_cluster
        pod = Pod(
            metadata=ObjectMeta(name="frac"),
            spec=PodSpec(
                containers=[ContainerSpec(requests={GPU_RESOURCE: 0.5})],
            ),
        )
        pod.spec.node_name = "node00"  # bypass scheduler fit checks
        c.submit(pod)
        done = c.env.process(
            c.wait_for_phase("frac", [PodPhase.FAILED, PodPhase.RUNNING])
        )
        c.env.run(until=done)
        assert c.api.get("Pod", "frac").status.phase is PodPhase.FAILED

    def test_deleting_running_pod_releases_gpu(self, small_cluster):
        c = small_cluster
        c.submit(gpu_pod("svc", workload=None))  # runs forever
        wait = c.env.process(c.wait_for_phase("svc", [PodPhase.RUNNING]))
        c.env.run(until=wait)
        node = c.node(c.api.get("Pod", "svc").spec.node_name)
        assert node.device_manager.free_count(GPU_RESOURCE) == 1
        c.api.delete("Pod", "svc")
        c.env.run(until=c.env.now + 2)
        assert node.device_manager.free_count(GPU_RESOURCE) == 2

    def test_gpu_released_on_completion(self, small_cluster):
        c = small_cluster
        c.submit(gpu_pod("quick", workload=finish_quickly))
        done = c.env.process(c.wait_for_phase("quick", [PodPhase.SUCCEEDED]))
        c.env.run(until=done)
        total_free = sum(
            n.device_manager.free_count(GPU_RESOURCE) for n in c.nodes
        )
        assert total_free == 4

    def test_container_env_from_spec_preserved(self, small_cluster):
        c = small_cluster
        pod = gpu_pod("envy", workload=finish_quickly)
        pod.spec.containers[0].env["MY_FLAG"] = "42"
        c.submit(pod)
        done = c.env.process(c.wait_for_phase("envy", [PodPhase.SUCCEEDED]))
        c.env.run(until=done)
        env_vars = c.api.get("Pod", "envy").status.container_env
        assert env_vars["MY_FLAG"] == "42"
        assert "NVIDIA_VISIBLE_DEVICES" in env_vars


class TestRuntimeLatency:
    def test_start_latency_applied(self, small_cluster):
        c = small_cluster
        c.submit(gpu_pod("timed", workload=None))
        wait = c.env.process(c.wait_for_phase("timed", [PodPhase.RUNNING]))
        c.env.run(until=wait)
        pod = c.api.get("Pod", "timed")
        lat = c.config.runtime_latency
        assert pod.status.start_time >= lat.base + lat.setup

    def test_concurrent_starts_contend_for_setup_slots(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=4)).start()
        for i in range(4):
            cluster.submit(gpu_pod(f"p{i}", workload=None))
        waits = [
            env.process(cluster.wait_for_phase(f"p{i}", [PodPhase.RUNNING]))
            for i in range(4)
        ]
        env.run(until=env.all_of(waits))
        starts = sorted(
            cluster.api.get("Pod", f"p{i}").status.start_time for i in range(4)
        )
        lat = cluster.config.runtime_latency
        # Only `setup_slots` containers set up at once: the last of 4 pods on
        # one node waits a full extra setup round.
        assert starts[3] >= starts[0] + lat.setup - 1e-6

"""Unit tests for the API server (CRUD, optimistic concurrency, watches)."""
# repro-lint: disable=RPR004 - update/Conflict semantics are the test subject

import pytest

from repro.cluster.apiserver import (
    AlreadyExists,
    APIServer,
    Conflict,
    NotFound,
    UnknownKind,
    translate_event,
)
from repro.cluster.etcd import WatchEventType
from repro.cluster.objects import LabelSelector, ObjectMeta, Pod, PodPhase
from repro.sim import Environment


@pytest.fixture
def api():
    return APIServer(Environment())


def make_pod(name, labels=None, namespace="default"):
    return Pod(metadata=ObjectMeta(name=name, namespace=namespace, labels=labels or {}))


class TestCrud:
    def test_create_returns_stored_copy_with_rv(self, api):
        stored = api.create(make_pod("p1"))
        assert stored.metadata.resource_version > 0
        assert stored.metadata.creation_time == 0.0

    def test_create_duplicate_raises(self, api):
        api.create(make_pod("p1"))
        with pytest.raises(AlreadyExists):
            api.create(make_pod("p1"))

    def test_get_returns_clone(self, api):
        api.create(make_pod("p1", labels={"k": "v"}))
        a = api.get("Pod", "p1")
        a.metadata.labels["k"] = "mutated"
        b = api.get("Pod", "p1")
        assert b.metadata.labels["k"] == "v"

    def test_get_missing_returns_none(self, api):
        assert api.get("Pod", "ghost") is None

    def test_unknown_kind_rejected(self, api):
        with pytest.raises(UnknownKind):
            api.get("Widget", "w")

    def test_register_crd_enables_kind(self, api):
        api.register_crd("Widget")

        class Widget:
            kind = "Widget"

            def __init__(self, name):
                self.metadata = ObjectMeta(name=name)

        api.create(Widget("w1"))
        assert api.get("Widget", "w1") is not None

    def test_list_filters_namespace_and_selector(self, api):
        api.create(make_pod("a", labels={"app": "x"}))
        api.create(make_pod("b", labels={"app": "y"}))
        api.create(make_pod("c", labels={"app": "x"}, namespace="other"))
        assert {p.name for p in api.list("Pod")} == {"a", "b", "c"}
        assert {p.name for p in api.list("Pod", namespace="default")} == {"a", "b"}
        sel = LabelSelector({"app": "x"})
        assert {p.name for p in api.list("Pod", selector=sel)} == {"a", "c"}

    def test_update_bumps_resource_version(self, api):
        api.create(make_pod("p1"))
        obj = api.get("Pod", "p1")
        obj.status.phase = PodPhase.RUNNING
        updated = api.update(obj)
        assert updated.metadata.resource_version > obj.metadata.resource_version
        assert api.get("Pod", "p1").status.phase is PodPhase.RUNNING

    def test_update_with_stale_rv_conflicts(self, api):
        api.create(make_pod("p1"))
        stale = api.get("Pod", "p1")
        fresh = api.get("Pod", "p1")
        fresh.status.message = "first"
        api.update(fresh)
        stale.status.message = "second"
        with pytest.raises(Conflict):
            api.update(stale)

    def test_update_deleted_object_raises_notfound(self, api):
        api.create(make_pod("p1"))
        obj = api.get("Pod", "p1")
        api.delete("Pod", "p1")
        with pytest.raises(NotFound):
            api.update(obj)

    def test_patch_retries_through_conflicts(self, api):
        api.create(make_pod("p1"))
        api.patch("Pod", "p1", lambda p: setattr(p.status, "message", "patched"))
        assert api.get("Pod", "p1").status.message == "patched"

    def test_patch_missing_raises(self, api):
        with pytest.raises(NotFound):
            api.patch("Pod", "nope", lambda p: None)

    def test_delete_returns_last_value(self, api):
        api.create(make_pod("p1"))
        gone = api.delete("Pod", "p1")
        assert gone.name == "p1"
        with pytest.raises(NotFound):
            api.delete("Pod", "p1")

    def test_try_delete(self, api):
        api.create(make_pod("p1"))
        assert api.try_delete("Pod", "p1") is True
        assert api.try_delete("Pod", "p1") is False


class TestBind:
    def test_bind_sets_node_name(self, api):
        api.create(make_pod("p1"))
        api.bind("p1", "node-7")
        assert api.get("Pod", "p1").spec.node_name == "node-7"

    def test_double_bind_conflicts(self, api):
        api.create(make_pod("p1"))
        api.bind("p1", "node-1")
        with pytest.raises(Conflict):
            api.bind("p1", "node-2")


class TestWatch:
    def test_watch_translates_objects(self):
        env = Environment()
        api = APIServer(env)
        events = []

        def watcher():
            stream = api.watch("Pod")
            while True:
                raw = yield stream.get()
                events.append(translate_event(raw))

        def writer():
            yield env.timeout(1)
            api.create(make_pod("p1"))
            api.patch("Pod", "p1", lambda p: setattr(p.status, "phase", PodPhase.RUNNING))
            api.delete("Pod", "p1")

        env.process(watcher())
        env.process(writer())
        env.run(until=3)
        kinds = [(etype, obj.name) for etype, obj in events]
        assert kinds == [
            (WatchEventType.PUT, "p1"),
            (WatchEventType.PUT, "p1"),
            (WatchEventType.DELETE, "p1"),
        ]
        assert events[1][1].status.phase is PodPhase.RUNNING
        # DELETE carries the last stored state.
        assert events[2][1].status.phase is PodPhase.RUNNING

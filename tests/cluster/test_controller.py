"""Unit tests for the controller framework (informer, workqueue, loops)."""

import pytest

from repro.cluster.apiserver import APIServer
from repro.cluster.controller import Controller, Informer, WorkQueue
from repro.cluster.etcd import WatchEventType
from repro.cluster.objects import ObjectMeta, Pod
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    return APIServer(env)


class TestWorkQueue:
    def test_dedups_pending_keys(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.add("a")
        q.add("b")
        assert len(q) == 2

    def test_add_during_processing_marks_dirty(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.checkout("a")
        q.add("a")  # event arrives mid-reconcile
        assert len(q) == 0  # not pending while processing
        q.done("a")
        assert len(q) == 1  # re-enqueued afterwards

    def test_done_without_dirty_clears(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.checkout("a")
        q.done("a")
        assert len(q) == 0

    def test_fifo_delivery(self, env):
        q = WorkQueue(env)
        got = []

        def worker():
            for _ in range(3):
                key = yield q.get()
                q.checkout(key)
                got.append(key)
                q.done(key)

        for k in ["x", "y", "z"]:
            q.add(k)
        env.process(worker())
        env.run()
        assert got == ["x", "y", "z"]


class TestInformer:
    def test_cache_tracks_adds_and_deletes(self, env, api):
        informer = Informer(env, api, "Pod")
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=1)
        assert informer.get("default/p1") is not None
        api.delete("Pod", "p1")
        env.run(until=2)
        assert informer.get("default/p1") is None

    def test_replay_populates_preexisting_objects(self, env, api):
        api.create(Pod(metadata=ObjectMeta(name="old")))
        informer = Informer(env, api, "Pod")
        informer.start()
        env.run(until=1)
        assert [p.name for p in informer.list()] == ["old"]

    def test_handlers_receive_event_types(self, env, api):
        informer = Informer(env, api, "Pod")
        events = []
        informer.add_handler(lambda etype, obj: events.append((etype, obj.name)))
        informer.start()
        env.run(until=0.01)  # let the watch subscription come up first
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        api.delete("Pod", "p1")
        env.run(until=1)
        assert events == [
            (WatchEventType.PUT, "p1"),
            (WatchEventType.DELETE, "p1"),
        ]


class CountingController(Controller):
    kind = "Pod"

    def __init__(self, env, api, fail_times=0):
        super().__init__(env, api)
        self.reconciled = []
        self.fail_times = fail_times

    def reconcile(self, key):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("transient")
        self.reconciled.append((self.env.now, key))
        return
        yield


class TestController:
    def test_events_trigger_reconcile(self, env, api):
        ctl = CountingController(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=1)
        assert [k for _, k in ctl.reconciled] == ["default/p1"]

    def test_failed_reconcile_retries_with_backoff(self, env, api):
        ctl = CountingController(env, api, fail_times=2).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=5)
        assert len(ctl.reconciled) == 1
        assert len(ctl.reconcile_errors) == 2
        # backoff: first retry after 0.05, second after 0.1
        assert ctl.reconciled[0][0] >= 0.15 - 1e-9

    def test_filter_suppresses_events(self, env, api):
        class Picky(CountingController):
            def filter(self, etype, obj):
                return obj.metadata.name.startswith("keep")

        ctl = Picky(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="keep-1")))
        api.create(Pod(metadata=ObjectMeta(name="drop-1")))
        env.run(until=1)
        assert [k for _, k in ctl.reconciled] == ["default/keep-1"]

    def test_burst_of_events_coalesces(self, env, api):
        ctl = CountingController(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        for i in range(5):
            api.patch("Pod", "p1", lambda p: setattr(p.status, "message", str(i)))
        env.run(until=1)
        # far fewer reconciles than events (dedup), at least one
        assert 1 <= len(ctl.reconciled) <= 3

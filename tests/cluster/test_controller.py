"""Unit tests for the controller framework (informer, workqueue, loops)."""

import pytest

from repro.cluster.apiserver import APIServer, ServiceUnavailable
from repro.cluster.controller import Controller, Informer, WorkQueue
from repro.cluster.etcd import WatchEventType
from repro.cluster.objects import ObjectMeta, Pod
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    return APIServer(env)


class TestWorkQueue:
    def test_dedups_pending_keys(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.add("a")
        q.add("b")
        assert len(q) == 2

    def test_add_during_processing_marks_dirty(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.checkout("a")
        q.add("a")  # event arrives mid-reconcile
        assert len(q) == 0  # not pending while processing
        q.done("a")
        assert len(q) == 1  # re-enqueued afterwards

    def test_done_without_dirty_clears(self, env):
        q = WorkQueue(env)
        q.add("a")
        q.checkout("a")
        q.done("a")
        assert len(q) == 0

    def test_fifo_delivery(self, env):
        q = WorkQueue(env)
        got = []

        def worker():
            for _ in range(3):
                key = yield q.get()
                q.checkout(key)
                got.append(key)
                q.done(key)

        for k in ["x", "y", "z"]:
            q.add(k)
        env.process(worker())
        env.run()
        assert got == ["x", "y", "z"]


class TestInformer:
    def test_cache_tracks_adds_and_deletes(self, env, api):
        informer = Informer(env, api, "Pod")
        informer.start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=1)
        assert informer.get("default/p1") is not None
        api.delete("Pod", "p1")
        env.run(until=2)
        assert informer.get("default/p1") is None

    def test_replay_populates_preexisting_objects(self, env, api):
        api.create(Pod(metadata=ObjectMeta(name="old")))
        informer = Informer(env, api, "Pod")
        informer.start()
        env.run(until=1)
        assert [p.name for p in informer.list()] == ["old"]

    def test_handlers_receive_event_types(self, env, api):
        informer = Informer(env, api, "Pod")
        events = []
        informer.add_handler(lambda etype, obj: events.append((etype, obj.name)))
        informer.start()
        env.run(until=0.01)  # let the watch subscription come up first
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        api.delete("Pod", "p1")
        env.run(until=1)
        assert events == [
            (WatchEventType.PUT, "p1"),
            (WatchEventType.DELETE, "p1"),
        ]


class CountingController(Controller):
    kind = "Pod"

    def __init__(self, env, api, fail_times=0):
        super().__init__(env, api)
        self.reconciled = []
        self.fail_times = fail_times

    def reconcile(self, key):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("transient")
        self.reconciled.append((self.env.now, key))
        return
        yield


class TestController:
    def test_events_trigger_reconcile(self, env, api):
        ctl = CountingController(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=1)
        assert [k for _, k in ctl.reconciled] == ["default/p1"]

    def test_failed_reconcile_retries_with_backoff(self, env, api):
        ctl = CountingController(env, api, fail_times=2).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        env.run(until=5)
        assert len(ctl.reconciled) == 1
        assert len(ctl.reconcile_errors) == 2
        # backoff: first retry after 0.05, second after 0.1
        assert ctl.reconciled[0][0] >= 0.15 - 1e-9

    def test_filter_suppresses_events(self, env, api):
        class Picky(CountingController):
            def filter(self, etype, obj):
                return obj.metadata.name.startswith("keep")

        ctl = Picky(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="keep-1")))
        api.create(Pod(metadata=ObjectMeta(name="drop-1")))
        env.run(until=1)
        assert [k for _, k in ctl.reconciled] == ["default/keep-1"]

    def test_burst_of_events_coalesces(self, env, api):
        ctl = CountingController(env, api).start()
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        for i in range(5):
            api.patch("Pod", "p1", lambda p: setattr(p.status, "message", str(i)))
        env.run(until=1)
        # far fewer reconciles than events (dedup), at least one
        assert 1 <= len(ctl.reconciled) <= 3


class FlakyWhileExists(Controller):
    """Fails reconcile while the object exists, succeeds once it is gone.

    DELETE events are filtered out so that only the controller's
    prune-on-DELETE path (and pending requeue timers) touch the retry
    bookkeeping after the object disappears.
    """

    kind = "Pod"

    def filter(self, etype, obj):
        return etype is not WatchEventType.DELETE

    def reconcile(self, key):
        if self.informer.get(key) is not None:
            raise RuntimeError("still broken")
        return
        yield


class TestRetryBookkeeping:
    def test_delete_event_prunes_failures_and_backoff(self, env, api):
        ctl = CountingController(env, api)
        pod = Pod(metadata=ObjectMeta(name="p1"))
        ctl._failures["default/p1"] = 3
        ctl._backoff.next("default/p1", 3)  # arm jitter state for the key
        ctl._on_event(WatchEventType.DELETE, pod)
        assert "default/p1" not in ctl._failures
        assert "default/p1" not in ctl._backoff

    def test_pod_churn_does_not_leak_retry_state(self, env, api):
        ctl = FlakyWhileExists(env, api).start()

        def churn():
            for i in range(10):
                api.create(Pod(metadata=ObjectMeta(name=f"p{i}")))
                yield env.timeout(0.3)
                api.delete("Pod", f"p{i}")
                yield env.timeout(0.2)

        env.process(churn())
        env.run(until=30)
        assert ctl.reconcile_errors  # the flaky path was actually exercised
        assert ctl._failures == {}
        assert ctl._backoff.pending() == []


class TestBackoff:
    def test_never_faster_than_exponential_and_bounded(self, env, api):
        ctl = CountingController(env, api)
        for n in range(1, 12):
            delay = ctl._next_backoff("k", n)
            expo = ctl.retry_delay * 2 ** (n - 1)
            # Decorrelated jitter spreads retries out but never undercuts
            # the plain exponential schedule (until the cap flattens both).
            assert delay >= min(expo, ctl.max_retry_delay) - 1e-12
            assert delay <= ctl.max_retry_delay + 1e-12

    def test_jitter_stream_is_deterministic(self):
        def seq():
            env = Environment()
            ctl = CountingController(env, APIServer(env))
            return [ctl._next_backoff("k", n) for n in range(1, 8)]

        assert seq() == seq()


class TestInformerStop:
    def test_stop_closes_the_etcd_watch(self, env, api):
        informer = Informer(env, api, "Pod")
        informer.start()
        env.run(until=0.01)
        assert len(api.etcd._watches) == 1
        informer.stop()
        assert api.etcd._watches == []
        # Later writes neither reach the cache nor buffer in a dead stream.
        api.create(Pod(metadata=ObjectMeta(name="late")))
        env.run(until=1)
        assert informer.get("default/late") is None

    def test_stop_before_start_is_a_noop(self, env, api):
        Informer(env, api, "Pod").stop()
        assert api.etcd._watches == []


class TestInformerReconnect:
    def test_broken_sessions_reconnect_with_backoff(self, env, api):
        """A watch session that keeps dying is re-attached on a jittered
        decaying schedule, not a tight loop."""
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        informer = Informer(env, api, "Pod")
        deadline = 5.0

        def flaky_handler(etype, obj):
            if env.now < deadline:
                raise ServiceUnavailable("session torn down (injected)")

        informer.add_handler(flaky_handler)
        informer.start()
        env.run(until=20.0)
        # The session died on every replay until the deadline...
        assert informer.reconnects_total >= 3
        # ... but nowhere near what a zero-delay reconnect loop would do.
        assert informer.reconnects_total < 40
        # After the failures stop, the informer is attached and live again.
        assert informer.get("default/p1") is not None
        api.delete("Pod", "p1")
        env.run(until=21.0)
        assert informer.get("default/p1") is None

    def test_reconnect_streak_resets_after_healthy_session(self, env, api):
        informer = Informer(env, api, "Pod")
        informer.start()
        env.run(until=1.0)
        # Long-healthy session: a fresh failure starts a new backoff streak.
        informer._reconnect.next()
        informer._reconnect.next()
        assert informer._reconnect.streak("") == 2
        # Mirror what _run does when the session outlived max_reconnect_delay.
        informer._reconnect.reset()
        assert informer._reconnect.streak("") == 0

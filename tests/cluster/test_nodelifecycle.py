"""Node lifecycle: heartbeats, NotReady detection, and pod eviction."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import ContainerSpec, ObjectMeta, Pod, PodPhase, PodSpec


def cpu_pod(name):
    return Pod(
        metadata=ObjectMeta(name=name),
        spec=PodSpec(containers=[ContainerSpec(requests={"cpu": 1})]),
    )


def get_node(cluster, name):
    return cluster.api.get("Node", name, namespace="")


class TestHeartbeats:
    def test_kubelet_renews_lease(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1)).start()
        env.run(until=5.0)
        node = get_node(cluster, "node00")
        assert node.status.last_heartbeat == pytest.approx(5.0, abs=1.1)
        assert node.status.ready

    def test_crashed_kubelet_goes_silent(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=2)).start()
        env.run(until=3.0)
        cluster.nodes[0].crash()
        env.run(until=10.0)
        silent = get_node(cluster, "node00").status.last_heartbeat
        live = get_node(cluster, "node01").status.last_heartbeat
        assert silent <= 3.0
        assert live == pytest.approx(10.0, abs=1.1)


class TestNotReadyAndEviction:
    def test_stale_lease_marks_not_ready_and_evicts(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=2)).start()
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        pod = cluster.api.get("Pod", "p1")
        victim = cluster.node(pod.spec.node_name)
        t_crash = env.now
        victim.crash()

        # lease_duration (4 s) + a monitor tick: NotReady, pod evicted.
        env.run(until=t_crash + 6.0)
        assert not get_node(cluster, victim.name).status.ready
        assert cluster.api.get("Pod", "p1") is None
        assert cluster.node_lifecycle.not_ready_total == 1
        assert cluster.node_lifecycle.evicted_pods_total == 1

    def test_restarted_node_becomes_ready_again(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=2)).start()
        env.run(until=2.0)
        cluster.nodes[0].crash()
        env.run(until=10.0)
        assert not get_node(cluster, "node00").status.ready
        env.process(cluster.nodes[0].restart())
        env.run(until=14.0)
        assert get_node(cluster, "node00").status.ready

    def test_scheduler_avoids_not_ready_node(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=2)).start()
        env.run(until=2.0)
        cluster.nodes[0].crash()
        env.run(until=8.0)
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        assert cluster.api.get("Pod", "p1").spec.node_name == "node01"

    def test_quorum_loss_pauses_eviction(self, env):
        """When most leases look stale at once, suspect the control plane:
        mark NotReady but do not mass-evict."""
        cluster = Cluster(env, ClusterConfig(nodes=3)).start()
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        for node in cluster.nodes:
            node.crash()
        env.run(until=env.now + 8.0)
        assert all(
            not get_node(cluster, n.name).status.ready for n in cluster.nodes
        )
        assert cluster.node_lifecycle.evicted_pods_total == 0
        assert cluster.api.get("Pod", "p1") is not None

    def test_eviction_resumes_when_quorum_returns(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=3)).start()
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        pod = cluster.api.get("Pod", "p1")
        for node in cluster.nodes:
            node.crash()
        env.run(until=env.now + 8.0)
        assert cluster.api.get("Pod", "p1") is not None  # eviction held
        # two of three nodes come back: quorum restored, the third's pods go
        for node in cluster.nodes:
            if node.name != pod.spec.node_name:
                env.process(node.restart())
        env.run(until=env.now + 8.0)
        assert cluster.api.get("Pod", "p1") is None
        assert cluster.node_lifecycle.evicted_pods_total == 1

    def test_node_lifecycle_disabled(self, env):
        """The no-recovery control: a dead node is never marked NotReady
        and nothing is evicted."""
        cluster = Cluster(
            env, ClusterConfig(nodes=2, node_lifecycle=False)
        ).start()
        cluster.submit(cpu_pod("p1"))
        wait = env.process(cluster.wait_for_phase("p1", [PodPhase.RUNNING]))
        env.run(until=wait)
        pod = cluster.api.get("Pod", "p1")
        cluster.node(pod.spec.node_name).crash()
        env.run(until=env.now + 15.0)
        assert cluster.node_lifecycle is None
        assert get_node(cluster, pod.spec.node_name).status.ready
        assert cluster.api.get("Pod", "p1") is not None

"""Property-based tests for the control-plane data structures."""
# repro-lint: disable=RPR004 - hypothesis drives the raw etcd API; blind puts are the generated ops

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.controller import WorkQueue
from repro.cluster.etcd import Etcd, WatchEventType
from repro.sim import Environment

# -- etcd: replaying the watch stream reconstructs the final state ----------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.sampled_from(["/a", "/b", "/c", "/d/e"]),
        st.integers(0, 100),
    ),
    max_size=60,
)


class TestEtcdProperties:
    @given(ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_watch_stream_replays_to_final_state(self, ops):
        env = Environment()
        etcd = Etcd(env)
        watch = etcd.watch("")
        for op, key, value in ops:
            if op == "put":
                etcd.put(key, value)
            else:
                etcd.delete(key)
        replayed = {}
        for ev in watch.events.items:
            if ev.type is WatchEventType.PUT:
                replayed[ev.kv.key] = ev.kv.value
            else:
                replayed.pop(ev.kv.key, None)
        actual = {kv.key: kv.value for kv in etcd.range("")}
        assert replayed == actual

    @given(ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_revisions_strictly_increase(self, ops):
        env = Environment()
        etcd = Etcd(env)
        watch = etcd.watch("")
        for op, key, value in ops:
            if op == "put":
                etcd.put(key, value)
            else:
                etcd.delete(key)
        revisions = [ev.kv.mod_revision for ev in watch.events.items]
        assert revisions == sorted(set(revisions))


# -- workqueue: no key is ever lost, and no key is double-processed -----------

queue_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "work"]),
        st.sampled_from(["k1", "k2", "k3"]),
    ),
    max_size=80,
)


class TestWorkQueueProperties:
    @given(ops=queue_ops)
    @settings(max_examples=200, deadline=None)
    def test_every_added_key_eventually_processed(self, ops):
        env = Environment()
        queue = WorkQueue(env)
        added = set()
        processed = []

        def worker():
            while True:
                key = yield queue.get()
                queue.checkout(key)
                processed.append(key)
                yield env.timeout(0.01)
                queue.done(key)

        env.process(worker())
        adds = [(i * 0.005, key) for i, (op, key) in enumerate(ops) if op == "add"]

        def driver():
            for at, key in adds:
                delay = at - env.now
                if delay > 0:
                    yield env.timeout(delay)
                queue.add(key)
                added.add(key)

        env.process(driver())
        env.run(until=10.0)
        assert added <= set(processed)

    @given(keys=st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_no_concurrent_processing_of_same_key(self, keys):
        env = Environment()
        queue = WorkQueue(env)
        inflight = set()

        def worker():
            while True:
                key = yield queue.get()
                queue.checkout(key)
                assert key not in inflight, "double-processing!"
                inflight.add(key)
                yield env.timeout(0.05)
                inflight.discard(key)
                queue.done(key)

        env.process(worker())
        env.process(worker())  # two workers

        def driver():
            for key in keys:
                queue.add(key)
                yield env.timeout(0.01)

        env.process(driver())
        env.run(until=5.0)

"""Unit tests for the etcd substrate."""
# repro-lint: disable=RPR004 - this file tests raw put/CAS semantics; blind puts are the subject

import pytest

from repro.cluster.etcd import CasFailure, Etcd, WatchEventType
from repro.sim import Environment


@pytest.fixture
def etcd():
    return Etcd(Environment())


class TestBasicKV:
    def test_get_missing_returns_none(self, etcd):
        assert etcd.get("/nope") is None

    def test_put_then_get(self, etcd):
        etcd.put("/a", {"x": 1})
        assert etcd.get("/a").value == {"x": 1}

    def test_revision_increases_monotonically(self, etcd):
        r1 = etcd.put("/a", 1).mod_revision
        r2 = etcd.put("/b", 2).mod_revision
        r3 = etcd.put("/a", 3).mod_revision
        assert r1 < r2 < r3
        assert etcd.revision == r3

    def test_create_revision_preserved_across_updates(self, etcd):
        kv1 = etcd.put("/a", 1)
        kv2 = etcd.put("/a", 2)
        assert kv2.create_revision == kv1.create_revision
        assert kv2.mod_revision > kv1.mod_revision

    def test_delete_returns_previous(self, etcd):
        etcd.put("/a", "v")
        prev = etcd.delete("/a")
        assert prev.value == "v"
        assert etcd.get("/a") is None

    def test_delete_missing_returns_none(self, etcd):
        assert etcd.delete("/ghost") is None

    def test_len_counts_keys(self, etcd):
        etcd.put("/a", 1)
        etcd.put("/b", 2)
        etcd.delete("/a")
        assert len(etcd) == 1


class TestRange:
    def test_range_is_prefix_filtered_and_sorted(self, etcd):
        etcd.put("/pods/z", 1)
        etcd.put("/pods/a", 2)
        etcd.put("/nodes/n1", 3)
        keys = [kv.key for kv in etcd.range("/pods/")]
        assert keys == ["/pods/a", "/pods/z"]

    def test_keys_iterator(self, etcd):
        etcd.put("/x/1", 1)
        etcd.put("/x/2", 2)
        assert list(etcd.keys("/x/")) == ["/x/1", "/x/2"]


class TestCas:
    def test_create_only_succeeds_when_absent(self, etcd):
        etcd.put_if("/a", 1, mod_revision=0)
        with pytest.raises(CasFailure):
            etcd.put_if("/a", 2, mod_revision=0)

    def test_cas_succeeds_with_matching_revision(self, etcd):
        kv = etcd.put("/a", 1)
        etcd.put_if("/a", 2, mod_revision=kv.mod_revision)
        assert etcd.get("/a").value == 2

    def test_cas_fails_on_stale_revision(self, etcd):
        kv = etcd.put("/a", 1)
        etcd.put("/a", 2)
        with pytest.raises(CasFailure):
            etcd.put_if("/a", 3, mod_revision=kv.mod_revision)


class TestWatch:
    def test_watch_delivers_puts_under_prefix(self):
        env = Environment()
        etcd = Etcd(env)
        seen = []

        def watcher():
            w = etcd.watch("/pods/")
            while True:
                ev = yield w.get()
                seen.append((ev.type, ev.kv.key))

        def writer():
            yield env.timeout(1)
            etcd.put("/pods/a", 1)
            etcd.put("/nodes/n", 2)  # outside the prefix
            etcd.delete("/pods/a")

        env.process(watcher())
        env.process(writer())
        env.run(until=5)
        assert seen == [
            (WatchEventType.PUT, "/pods/a"),
            (WatchEventType.DELETE, "/pods/a"),
        ]

    def test_watch_replay_delivers_existing_state(self):
        env = Environment()
        etcd = Etcd(env)
        etcd.put("/pods/a", 1)
        etcd.put("/pods/b", 2)
        seen = []

        def watcher():
            w = etcd.watch("/pods/", replay=True)
            for _ in range(2):
                ev = yield w.get()
                seen.append(ev.kv.key)

        env.process(watcher())
        env.run()
        assert seen == ["/pods/a", "/pods/b"]

    def test_delete_event_carries_previous_value(self):
        env = Environment()
        etcd = Etcd(env)
        got = []

        def watcher():
            w = etcd.watch("")
            while True:
                ev = yield w.get()
                if ev.type is WatchEventType.DELETE:
                    got.append(ev.prev.value)

        def writer():
            yield env.timeout(1)
            etcd.put("/k", "payload")
            etcd.delete("/k")

        env.process(watcher())
        env.process(writer())
        env.run(until=3)
        assert got == ["payload"]

    def test_cancelled_watch_gets_nothing_further(self):
        env = Environment()
        etcd = Etcd(env)
        w = etcd.watch("")
        etcd.put("/a", 1)
        w.cancel()
        etcd.put("/b", 2)
        # Only the first event was queued.
        assert len(w.events.items) == 1


class TestCloseAndUnwatch:
    def test_close_detaches_subscriber_eagerly(self, etcd):
        w = etcd.watch("/pods/")
        assert w in etcd._watches
        w.close()
        # Removed immediately, not lazily at the next notify — stopped
        # subscribers must not pin their event buffers in the store.
        assert w.cancelled
        assert w not in etcd._watches
        etcd.put("/pods/a", 1)
        assert len(w.events.items) == 0

    def test_unwatch_is_idempotent(self, etcd):
        w = etcd.watch("")
        w.close()
        etcd.unwatch(w)  # second removal must be a no-op
        assert etcd._watches == []

    def test_close_leaves_other_watches_untouched(self, etcd):
        w1 = etcd.watch("/pods/")
        w2 = etcd.watch("/pods/")
        w1.close()
        etcd.put("/pods/a", 1)
        assert len(w1.events.items) == 0
        assert len(w2.events.items) == 1

"""Failure injection: device health changes through the plugin framework.

Figure 2a: "Whenever a device state changes or a device disappears, its
device plugin returns the new device list to kubelet", and kubelet
re-advertises node capacity. These tests drive that path end to end.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.deviceplugin import (
    DeviceManager,
    InsufficientDevices,
    NvidiaDevicePlugin,
)
from repro.cluster.objects import (
    GPU_RESOURCE,
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
)


class TestDeviceManagerHealth:
    def make(self):
        dm = DeviceManager()
        dm.register(NvidiaDevicePlugin(["GPU-a", "GPU-b"]))
        return dm

    def test_unhealthy_device_leaves_free_list(self):
        dm = self.make()
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=False)
        assert dm.free_ids(GPU_RESOURCE) == ["GPU-b"]
        assert dm.capacity()[GPU_RESOURCE] == 1.0
        assert not dm.is_healthy(GPU_RESOURCE, "GPU-a")

    def test_recovery_restores_free_list(self):
        dm = self.make()
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=False)
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=True)
        assert sorted(dm.free_ids(GPU_RESOURCE)) == ["GPU-a", "GPU-b"]
        assert dm.capacity()[GPU_RESOURCE] == 2.0

    def test_unhealthy_while_allocated_withheld_on_release(self):
        dm = self.make()
        resp = dm.allocate("pod1", GPU_RESOURCE, 1)
        held = resp.device_ids[0]
        dm.set_device_health(GPU_RESOURCE, held, healthy=False)
        dm.release_pod("pod1")
        assert held not in dm.free_ids(GPU_RESOURCE)

    def test_unknown_device_rejected(self):
        dm = self.make()
        with pytest.raises(InsufficientDevices):
            dm.set_device_health(GPU_RESOURCE, "GPU-zzz", healthy=False)

    def test_listeners_notified(self):
        dm = self.make()
        events = []
        dm.on_health_change(lambda *a: events.append(a))
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=False)
        assert events == [(GPU_RESOURCE, "GPU-a", False)]

    def test_idempotent_health_updates(self):
        dm = self.make()
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=False)
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=False)
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=True)
        dm.set_device_health(GPU_RESOURCE, "GPU-a", healthy=True)
        assert sorted(dm.free_ids(GPU_RESOURCE)) == ["GPU-a", "GPU-b"]


class TestClusterReactsToHealth:
    def gpu_pod(self, name):
        return Pod(
            metadata=ObjectMeta(name=name),
            spec=PodSpec(
                containers=[ContainerSpec(requests={"cpu": 1, GPU_RESOURCE: 1})],
            ),
        )

    def test_node_capacity_readvertised(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        env.run(until=1)
        node = cluster.nodes[0]
        uuid = node.gpus[0].uuid
        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=False)
        env.run(until=2)
        stored = cluster.api.get("Node", "node00", namespace="")
        assert stored.status.capacity[GPU_RESOURCE] == 1.0

    def test_scheduler_respects_shrunk_capacity(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        env.run(until=1)
        node = cluster.nodes[0]
        node.device_manager.set_device_health(
            GPU_RESOURCE, node.gpus[0].uuid, healthy=False
        )
        env.run(until=2)
        cluster.submit(self.gpu_pod("wants-gpu"))
        env.run(until=6)
        pod = cluster.api.get("Pod", "wants-gpu")
        assert pod.status.phase is PodPhase.PENDING  # nothing schedulable
        # device recovers: the pod must now get placed
        node.device_manager.set_device_health(
            GPU_RESOURCE, node.gpus[0].uuid, healthy=True
        )
        wait = env.process(cluster.wait_for_phase("wants-gpu", [PodPhase.RUNNING]))
        env.run(until=wait)
        assert cluster.api.get("Pod", "wants-gpu").status.phase is PodPhase.RUNNING

    def test_running_pod_survives_health_loss_until_released(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        cluster.submit(self.gpu_pod("holder"))
        wait = env.process(cluster.wait_for_phase("holder", [PodPhase.RUNNING]))
        env.run(until=wait)
        node = cluster.nodes[0]
        node.device_manager.set_device_health(
            GPU_RESOURCE, node.gpus[0].uuid, healthy=False
        )
        env.run(until=env.now + 2)
        assert cluster.api.get("Pod", "holder").status.phase is PodPhase.RUNNING
        # after deletion the broken device must NOT return to the pool
        cluster.api.delete("Pod", "holder")
        env.run(until=env.now + 2)
        assert node.device_manager.free_count(GPU_RESOURCE) == 0


class TestHealthRoundTrip:
    def test_unhealthy_healthy_unhealthy_round_trip(self, env):
        """Full round trip through the kubelet: each flip re-advertises
        capacity and mirrors the sick-device list into node status."""
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
        env.run(until=1)
        node = cluster.nodes[0]
        uuid = node.gpus[0].uuid

        def stored():
            return cluster.api.get("Node", "node00", namespace="")

        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=False)
        env.run(until=2)
        assert stored().status.capacity[GPU_RESOURCE] == 1.0
        assert stored().status.unhealthy_gpus == [uuid]

        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=True)
        env.run(until=3)
        assert stored().status.capacity[GPU_RESOURCE] == 2.0
        assert stored().status.unhealthy_gpus == []

        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=False)
        env.run(until=4)
        assert stored().status.capacity[GPU_RESOURCE] == 1.0
        assert stored().status.unhealthy_gpus == [uuid]
        # the flapping device is not handed out while sick
        assert uuid not in node.device_manager.free_ids(GPU_RESOURCE)

    def test_round_trip_restores_schedulability(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        env.run(until=1)
        node = cluster.nodes[0]
        uuid = node.gpus[0].uuid
        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=False)
        env.run(until=2)
        node.device_manager.set_device_health(GPU_RESOURCE, uuid, healthy=True)
        env.run(until=3)
        pod = Pod(
            metadata=ObjectMeta(name="after-repair"),
            spec=PodSpec(
                containers=[ContainerSpec(requests={"cpu": 1, GPU_RESOURCE: 1})],
            ),
        )
        cluster.submit(pod)
        wait = env.process(
            cluster.wait_for_phase("after-repair", [PodPhase.RUNNING])
        )
        env.run(until=wait)
        assert cluster.api.get("Pod", "after-repair").status.phase is PodPhase.RUNNING

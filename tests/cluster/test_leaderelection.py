"""Lease mechanics and fencing for the leader-elected control plane.

Covers the three guarantees of :mod:`repro.cluster.leaderelection`:
mutual exclusion (acquire / renew / steal-after-expiry within the bound),
CAS rejection of stale lease writers, and write fencing that stops a
deposed leader — including the pause/resume (GC pause) scenario where the
ex-leader still believes it leads.
"""

import pytest

from repro.cluster.apiserver import APIServer, Conflict, FencingConflict
from repro.cluster.leaderelection import (
    LEASE_NAMESPACE,
    FencedAPIServer,
    FencingToken,
    HAControllerGroup,
    LeaderElector,
    ReplicaState,
)
from repro.cluster.objects import ObjectMeta, Pod
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def api(env):
    return APIServer(env)


def make_elector(env, api, identity, **kw):
    kw.setdefault("lease_duration", 1.0)
    kw.setdefault("renew_interval", 0.2)
    kw.setdefault("retry_interval", 0.2)
    return LeaderElector(env, api, "test-lease", identity, **kw)


class TestAcquire:
    def test_first_acquisition_creates_lease_with_epoch_1(self, env, api):
        elector = make_elector(env, api, "a").start()
        env.run(until=0.5)
        assert elector.is_leader
        assert elector.token is not None and elector.token.epoch == 1
        lease = api.get("Lease", "test-lease", LEASE_NAMESPACE)
        assert lease is not None
        assert lease.spec.holder == "a"
        assert lease.spec.epoch == 1

    def test_two_electors_exactly_one_leader(self, env, api):
        a = make_elector(env, api, "a").start()
        b = make_elector(env, api, "b").start()
        env.run(until=2.0)
        assert sorted([a.is_leader, b.is_leader]) == [False, True]

    def test_renewal_keeps_leadership_past_lease_duration(self, env, api):
        a = make_elector(env, api, "a").start()
        b = make_elector(env, api, "b").start()
        env.run(until=10.0)  # many lease_durations later
        leader = a if a.is_leader else b
        assert leader.is_leader
        # Renewals never bump the epoch: one reign, one fencing token.
        assert leader.token.epoch == 1
        lease = api.get("Lease", "test-lease", LEASE_NAMESPACE)
        assert lease.spec.renew_time > lease.spec.acquire_time


class TestStealAfterExpiry:
    def test_standby_takes_over_within_bound(self, env, api):
        a = make_elector(env, api, "a").start()
        env.run(until=0.5)
        assert a.is_leader

        b = make_elector(env, api, "b").start()
        env.run(until=2.0)
        assert not b.is_leader  # lease renewed, nothing to steal

        # The leader's process dies silently (crash): renewals stop but
        # the lease is not released.
        t_crash = env.now
        a.stop()
        # Worst case: the lease was renewed just before the crash, then
        # must fully expire, then the standby's next retry tick wins.
        bound = a.lease_duration + a.renew_interval + b.retry_interval
        env.run(until=t_crash + bound + 0.01)
        assert b.is_leader
        assert b.token.epoch == 2  # acquisition bumped the fencing token
        (t_acq, what, epoch) = b.transitions[-1]
        assert what == "acquired"
        # Not early either: the steal happened only after lease expiry.
        assert t_acq >= t_crash + a.lease_duration - a.renew_interval

    def test_expiry_respects_skewed_renew_times(self, env, api):
        """A lease whose renew_time is mid-tick (virtual-time skew between
        the holder's stagger and the challenger's) still expires exactly
        ``lease_duration`` after the last renewal, not on tick boundaries."""
        a = make_elector(env, api, "a").start()
        env.run(until=0.73)  # a non-aligned instant
        assert a.is_leader
        a.stop()
        last_renew = api.get("Lease", "test-lease", LEASE_NAMESPACE).spec.renew_time
        b = make_elector(env, api, "b").start()
        env.run(until=20.0)
        assert b.is_leader
        t_acq = next(t for t, what, _ in b.transitions if what == "acquired")
        assert t_acq > last_renew + a.lease_duration

    def test_cas_rejects_stale_lease_writer(self, env, api):
        """Two challengers racing for an expired lease: the loser's write
        carries a stale resourceVersion and surfaces Conflict."""
        a = make_elector(env, api, "a").start()
        env.run(until=0.5)
        stale = api.get("Lease", "test-lease", LEASE_NAMESPACE)
        # Another writer renews first (resourceVersion moves on).
        fresh = api.get("Lease", "test-lease", LEASE_NAMESPACE)
        fresh.spec.renew_time = env.now
        api.update(fresh)  # noqa: RPR004 - deliberately racing two writers to assert CAS
        stale.spec.holder = "z"
        stale.spec.epoch += 1
        with pytest.raises(Conflict):
            api.update(stale)  # noqa: RPR004 - the stale write is the test subject
        # The loser did not become holder.
        assert api.get("Lease", "test-lease", LEASE_NAMESPACE).spec.holder == "a"


class TestVoluntaryStepDown:
    def test_leader_steps_down_when_apiserver_unreachable(self, env, api):
        a = make_elector(env, api, "a").start()
        env.run(until=0.5)
        assert a.is_leader
        # Outage longer than the lease: the leader can no longer prove its
        # lease is valid and must stop acting (renew-deadline rule).
        api.set_outage(3 * a.lease_duration)
        env.run(until=env.now + a.lease_duration + 2 * a.renew_interval)
        assert not a.is_leader
        assert any("lost" in what for _, what, _ in a.transitions)


class TestFencedWrites:
    def _leased_token(self, env, api):
        elector = make_elector(env, api, "a").start()
        env.run(until=0.5)
        assert elector.is_leader
        return elector.token

    def test_current_epoch_writes_pass(self, env, api):
        token = self._leased_token(env, api)
        client = FencedAPIServer(api, token)
        pod = client.create(Pod(metadata=ObjectMeta(name="p1")))
        pod.metadata.labels["x"] = "1"
        client.update(pod)
        client.patch("Pod", "p1", lambda p: p.metadata.labels.update(y="2"))
        assert api.get("Pod", "p1").metadata.labels == {"x": "1", "y": "2"}
        assert client.try_delete("Pod", "p1")

    def test_stale_epoch_rejected_on_every_write_verb(self, env, api):
        token = self._leased_token(env, api)
        api.create(Pod(metadata=ObjectMeta(name="p1")))
        stale = FencingToken(
            token.lease_namespace, token.lease_name, token.holder, token.epoch - 1
        )
        client = FencedAPIServer(api, stale)
        with pytest.raises(FencingConflict):
            client.create(Pod(metadata=ObjectMeta(name="p2")))
        pod = api.get("Pod", "p1")
        with pytest.raises(FencingConflict):
            client.update(pod)
        with pytest.raises(FencingConflict):
            client.patch("Pod", "p1", lambda p: None)
        with pytest.raises(FencingConflict):
            client.delete("Pod", "p1")
        # Nothing leaked through.
        assert api.get("Pod", "p2") is None
        assert api.get("Pod", "p1") is not None

    def test_wrong_holder_rejected_even_with_right_epoch(self, env, api):
        token = self._leased_token(env, api)
        imposter = FencingToken(
            token.lease_namespace, token.lease_name, "imposter", token.epoch
        )
        with pytest.raises(FencingConflict):
            FencedAPIServer(api, imposter).create(
                Pod(metadata=ObjectMeta(name="p3"))
            )

    def test_reads_delegate_unfenced(self, env, api):
        token = self._leased_token(env, api)
        stale = FencingToken(
            token.lease_namespace, token.lease_name, token.holder, token.epoch - 1
        )
        client = FencedAPIServer(api, stale)
        assert client.get("Pod", "nope") is None  # reads never fenced
        assert client.list("Pod") == []


class WriterController:
    """Test double: writes a uniquely named Pod every 0.1 s while running,
    logging whether the write passed or was fenced."""

    def __init__(self, env, client, log):
        self.env = env
        self.client = client
        self.log = log
        self.rebuilds = 0
        self._proc = None
        self._seq = 0

    def rebuild_state(self):
        self.rebuilds += 1

    def start(self):
        self._proc = self.env.process(self._run(), name="writer-controller")
        return self

    def stop(self):
        if self._proc is not None and self._proc.is_alive:
            self._proc.kill()
        self._proc = None

    def _run(self):
        while True:
            token = self.client.token
            self._seq += 1
            name = f"w-{token.holder}-e{token.epoch}-{self._seq}"
            try:
                self.client.create(Pod(metadata=ObjectMeta(name=name)))
                self.log.append((self.env.now, token.epoch, "ok"))
            except FencingConflict:
                self.log.append((self.env.now, token.epoch, "fenced"))
            yield self.env.timeout(0.1)


class TestDeposedLeaderFencing:
    def make_group(self, env, api, log):
        def factory(client):
            return WriterController(env, client, log)

        return HAControllerGroup(
            env,
            api,
            "writers",
            factory,
            replicas=2,
            lease_duration=1.0,
            renew_interval=0.2,
            retry_interval=0.2,
        )

    def test_paused_leader_resumes_fenced(self, env, api):
        log = []
        group = self.make_group(env, api, log).start()
        env.run(until=1.0)
        old = group.leader
        assert old is not None
        old_epoch = old.elector.token.epoch

        # GC pause: long enough for the lease to expire and the standby to
        # take over while the old leader is frozen.
        old.pause(3.0)
        assert old.state is ReplicaState.PAUSED
        env.run(until=3.0)
        new = group.leader
        assert new is not None and new is not old
        new_epoch = new.elector.token.epoch
        assert new_epoch == old_epoch + 1
        # The promoted replica got a fresh instance and rebuilt its state.
        assert group.controllers[-1].rebuilds == 1

        env.run(until=6.0)
        # On resume the deposed leader acted with its stale token until the
        # elector noticed: every such write was fenced, none passed.
        stale_after_promotion = [
            entry
            for entry in log
            if entry[1] == old_epoch
            and entry[0] >= min(t for t, e, _ in log if e == new_epoch)
        ]
        assert stale_after_promotion, "the resumed ex-leader never tried to write"
        assert all(kind == "fenced" for _, _, kind in stale_after_promotion)
        # The replica noticed its deposition and is a standby again.
        assert old.state is ReplicaState.STANDBY

    def test_split_brain_never_interleaves_epochs(self, env, api):
        """Once a write from epoch N+1 succeeded, no epoch-N write ever
        succeeds again — the fencing-token total order."""
        log = []
        group = self.make_group(env, api, log).start()
        env.run(until=1.0)
        group.leader.pause(3.0)
        env.run(until=8.0)
        ok = [(t, e) for t, e, kind in log if kind == "ok"]
        epochs = [e for _, e in ok]
        assert epochs == sorted(epochs), f"stale-epoch write succeeded: {ok}"

    def test_node_lifecycle_controller_runs_leader_elected(self, env):
        """ClusterConfig.node_lifecycle_replicas>1 retrofits the node
        lifecycle controller onto the HA machinery: one active instance,
        and a standby takes over when the leader crashes."""
        from repro.cluster import Cluster, ClusterConfig

        cluster = Cluster(
            env,
            ClusterConfig(
                nodes=2,
                gpus_per_node=1,
                node_lifecycle_replicas=2,
                controller_lease_duration=1.0,
                controller_renew_interval=0.2,
                controller_retry_interval=0.2,
            ),
        ).start()
        group = cluster.node_lifecycle_ha
        assert cluster.node_lifecycle is None and group is not None
        env.run(until=2.0)
        assert group.leader is not None
        assert group.active_controller is not None
        group.leader.crash()
        t = env.now
        env.run(until=t + group.failover_bound + 0.01)
        assert group.leader is not None
        assert len(group.promotions) == 2
        # The promoted instance really monitors: it notices a node whose
        # kubelet goes silent after the failover.
        cluster.nodes[0].crash()
        env.run(until=env.now + cluster.config.lease_duration + 1.0)
        assert group.controllers[-1].not_ready_total >= 1

    def test_crash_and_restart_rejoins_as_standby(self, env, api):
        log = []
        group = self.make_group(env, api, log).start()
        env.run(until=1.0)
        old = group.leader
        old.crash()
        assert old.state is ReplicaState.CRASHED
        assert old.controller is None  # memory gone
        env.run(until=1.0 + group.failover_bound + 0.01)
        assert group.leader is not None and group.leader is not old
        old.restart()
        env.run(until=6.0)
        assert old.state is ReplicaState.STANDBY
        assert len(group.promotions) == 2


class TestErrorBackoff:
    """Apiserver-unreachable attempts back off with jitter (no tight loop)."""

    def test_acquire_errors_back_off(self, env, api):
        api.set_outage(10.0)
        elector = make_elector(env, api, "a").start()
        env.run(until=10.0)
        assert elector.error_backoffs_total >= 3
        # A plain retry_interval tick would make ~50 attempts in 10s; the
        # jittered schedule decays towards the lease_duration cap instead.
        assert elector.acquire_attempts < 30

    def test_denied_acquire_keeps_plain_tick(self, env, api):
        leader = make_elector(env, api, "a").start()
        env.run(until=0.5)
        assert leader.is_leader
        standby = make_elector(env, api, "b").start()
        env.run(until=5.0)
        # A healthy denial ("lease held") is not an error: the standby
        # polls on its plain retry_interval so failover_bound still holds.
        assert standby.error_backoffs_total == 0
        assert standby.acquire_attempts >= 15

    def test_renew_errors_back_off_but_respect_grace(self, env, api):
        elector = make_elector(env, api, "a").start()
        env.run(until=1.0)
        assert elector.is_leader
        api.set_outage(20.0)
        renews_at_outage = elector.renew_attempts
        env.run(until=6.0)
        # Errored renews are jittered (fewer attempts than the plain
        # 0.2s tick would make) ...
        assert elector.error_backoffs_total >= 1
        assert elector.renew_attempts - renews_at_outage < 15
        # ... yet the voluntary step-down still lands within the lease
        # grace period, preserving the failover bound.
        assert not elector.is_leader

    def test_backoff_resets_after_recovery(self, env, api):
        api.set_outage(3.0)
        elector = make_elector(env, api, "a").start()
        env.run(until=3.0)
        errored = elector.error_backoffs_total
        assert errored >= 1
        env.run(until=6.0)
        assert elector.is_leader
        assert elector.error_backoffs_total == errored

"""Unit tests for kube-scheduler filter/score internals."""

import pytest

from repro.cluster.apiserver import APIServer
from repro.cluster.objects import (
    GPU_RESOURCE,
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodSpec,
)
from repro.cluster.scheduler import KubeScheduler
from repro.sim import Environment


@pytest.fixture
def sched():
    env = Environment()
    s = KubeScheduler(env, APIServer(env))
    s._node_ready = {"n1": True, "n2": True}
    s._node_labels = {"n1": {}, "n2": {}}
    return s


def pod(requests, node_selector=None):
    return Pod(
        metadata=ObjectMeta(name="p"),
        spec=PodSpec(
            containers=[ContainerSpec(requests=requests)],
            node_selector=node_selector or {},
        ),
    )


class TestSelectNode:
    def test_least_allocated_prefers_most_free_gpu(self, sched):
        sched._node_free = {
            "n1": {"cpu": 10.0, GPU_RESOURCE: 1.0},
            "n2": {"cpu": 10.0, GPU_RESOURCE: 3.0},
        }
        assert sched._select_node(pod({GPU_RESOURCE: 1})) == "n2"

    def test_cpu_breaks_gpu_ties(self, sched):
        sched._node_free = {
            "n1": {"cpu": 4.0, GPU_RESOURCE: 2.0},
            "n2": {"cpu": 16.0, GPU_RESOURCE: 2.0},
        }
        assert sched._select_node(pod({GPU_RESOURCE: 1})) == "n2"

    def test_infeasible_node_filtered(self, sched):
        sched._node_free = {
            "n1": {"cpu": 10.0, GPU_RESOURCE: 0.0},
            "n2": {"cpu": 10.0, GPU_RESOURCE: 1.0},
        }
        assert sched._select_node(pod({GPU_RESOURCE: 1})) == "n2"

    def test_no_feasible_node_returns_none(self, sched):
        sched._node_free = {"n1": {"cpu": 0.5}, "n2": {"cpu": 0.5}}
        assert sched._select_node(pod({"cpu": 1.0})) is None

    def test_not_ready_node_skipped(self, sched):
        sched._node_free = {
            "n1": {"cpu": 10.0, GPU_RESOURCE: 4.0},
            "n2": {"cpu": 10.0, GPU_RESOURCE: 1.0},
        }
        sched._node_ready["n1"] = False
        assert sched._select_node(pod({GPU_RESOURCE: 1})) == "n2"

    def test_node_selector_filters(self, sched):
        sched._node_free = {
            "n1": {"cpu": 10.0},
            "n2": {"cpu": 10.0},
        }
        sched._node_labels["n2"] = {"zone": "west"}
        assert sched._select_node(pod({"cpu": 1}, {"zone": "west"})) == "n2"

    def test_deterministic_tiebreak(self, sched):
        sched._node_free = {
            "n2": {"cpu": 10.0, GPU_RESOURCE: 2.0},
            "n1": {"cpu": 10.0, GPU_RESOURCE: 2.0},
        }
        assert sched._select_node(pod({GPU_RESOURCE: 1})) == "n1"


class TestMostAllocatedScoring:
    def test_binpack_prefers_fullest_node(self):
        env = Environment()
        s = KubeScheduler(env, APIServer(env), score="most_allocated")
        s._node_ready = {"n1": True, "n2": True}
        s._node_labels = {"n1": {}, "n2": {}}
        s._node_free = {
            "n1": {"cpu": 10.0, GPU_RESOURCE: 1.0},
            "n2": {"cpu": 10.0, GPU_RESOURCE: 3.0},
        }
        assert s._select_node(pod({GPU_RESOURCE: 1})) == "n1"

    def test_unknown_policy_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            KubeScheduler(env, APIServer(env), score="chaotic")

"""Unit tests for the device-plugin framework (paper §2.2 / Figure 2)."""

import pytest

from repro.cluster.deviceplugin import (
    DeviceManager,
    InsufficientDevices,
    NvidiaDevicePlugin,
    ScalingFactorGPUPlugin,
)

UUIDS = ["GPU-a", "GPU-b"]


class TestNvidiaPlugin:
    def test_advertises_one_unit_per_gpu(self):
        plugin = NvidiaDevicePlugin(UUIDS)
        assert plugin.list_devices() == UUIDS

    def test_allocate_returns_visible_devices_env(self):
        plugin = NvidiaDevicePlugin(UUIDS)
        resp = plugin.allocate(["GPU-b"])
        assert resp.env == {"NVIDIA_VISIBLE_DEVICES": "GPU-b"}

    def test_allocate_unknown_uuid_raises(self):
        plugin = NvidiaDevicePlugin(UUIDS)
        with pytest.raises(InsufficientDevices):
            plugin.allocate(["GPU-zzz"])


class TestScalingFactorPlugin:
    def test_advertises_factor_units_per_gpu(self):
        plugin = ScalingFactorGPUPlugin(UUIDS, factor=100)
        assert len(plugin.list_devices()) == 200

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            ScalingFactorGPUPlugin(UUIDS, factor=0)

    def test_allocate_maps_slices_to_unique_uuids(self):
        plugin = ScalingFactorGPUPlugin(UUIDS, factor=10)
        resp = plugin.allocate(["GPU-a::0", "GPU-a::3", "GPU-b::1"])
        assert resp.env["NVIDIA_VISIBLE_DEVICES"] == "GPU-a,GPU-b"

    def test_allocate_unknown_slice_raises(self):
        plugin = ScalingFactorGPUPlugin(UUIDS, factor=10)
        with pytest.raises(InsufficientDevices):
            plugin.allocate(["GPU-zzz::0"])


class TestDeviceManager:
    def make(self, policy="packed", factor=4):
        dm = DeviceManager(policy=policy)
        dm.register(ScalingFactorGPUPlugin(UUIDS, factor=factor))
        return dm

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DeviceManager(policy="chaotic")

    def test_capacity_from_plugin(self):
        dm = self.make()
        assert dm.capacity() == {"nvidia.com/gpu": 8.0}

    def test_packed_policy_clusters_same_gpu(self):
        dm = self.make(policy="packed")
        resp = dm.allocate("pod1", "nvidia.com/gpu", 3)
        # sorted ids: all from GPU-a first
        uuids = {d.rsplit("::", 1)[0] for d in resp.device_ids}
        assert uuids == {"GPU-a"}

    def test_roundrobin_policy_spreads_across_gpus(self):
        dm = self.make(policy="roundrobin")
        resp = dm.allocate("pod1", "nvidia.com/gpu", 2)
        uuids = {d.rsplit("::", 1)[0] for d in resp.device_ids}
        assert uuids == {"GPU-a", "GPU-b"}  # the Figure 3a spread

    def test_allocate_reduces_free_count(self):
        dm = self.make()
        assert dm.free_count("nvidia.com/gpu") == 8
        dm.allocate("pod1", "nvidia.com/gpu", 3)
        assert dm.free_count("nvidia.com/gpu") == 5

    def test_overallocation_raises(self):
        dm = self.make()
        with pytest.raises(InsufficientDevices):
            dm.allocate("pod1", "nvidia.com/gpu", 9)

    def test_unknown_resource_raises(self):
        dm = self.make()
        with pytest.raises(InsufficientDevices):
            dm.allocate("pod1", "example.com/fpga", 1)

    def test_pinned_device_ids_allocated_exactly(self):
        dm = self.make()
        resp = dm.allocate(
            "pod1", "nvidia.com/gpu", 2, device_ids=["GPU-b::1", "GPU-b::2"]
        )
        assert resp.device_ids == ["GPU-b::1", "GPU-b::2"]
        assert resp.env["NVIDIA_VISIBLE_DEVICES"] == "GPU-b"

    def test_pinned_ids_must_be_free(self):
        dm = self.make()
        dm.allocate("pod1", "nvidia.com/gpu", 2, device_ids=["GPU-a::0", "GPU-a::1"])
        with pytest.raises(InsufficientDevices):
            dm.allocate("pod2", "nvidia.com/gpu", 1, device_ids=["GPU-a::0"])

    def test_release_pod_returns_units(self):
        dm = self.make()
        dm.allocate("pod1", "nvidia.com/gpu", 4)
        dm.release_pod("pod1")
        assert dm.free_count("nvidia.com/gpu") == 8

    def test_release_unknown_pod_is_noop(self):
        dm = self.make()
        dm.release_pod("ghost")
        assert dm.free_count("nvidia.com/gpu") == 8

    def test_pod_devices_reports_holdings(self):
        dm = self.make()
        dm.allocate("pod1", "nvidia.com/gpu", 2)
        held = dm.pod_devices("pod1")["nvidia.com/gpu"]
        assert len(held) == 2

"""Production-tooling tests for the lint engine: SARIF output, the
committed baseline + diff-aware mode, autofix idempotency, the
content-hash cache, tokenize-based noqa scanning, stale-suppression
detection, and the CLI exit-code contract."""

import json
import shutil
import subprocess
import textwrap

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.cache import ENGINE_VERSION, LintCache
from repro.analysis.fixes import apply_fixes_to_source
from repro.analysis.lint import (
    lint_source,
    main,
    run_analysis,
    stale_suppressions,
)
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import to_sarif


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


WALLCLOCK = """
    import time

    def stamp():
        return time.perf_counter()
"""

CLEAN = """
    def stamp(env):
        return env.now
"""


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def test_document_shape(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        result = run_analysis([str(tmp_path)])
        doc = to_sarif(result.findings)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [r["id"] for r in driver["rules"]] == [r.id for r in ALL_RULES]

    def test_result_fields(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        result = run_analysis([str(tmp_path)])
        doc = to_sarif(result.findings)
        (res,) = doc["runs"][0]["results"]
        assert res["ruleId"] == "RPR001"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("bad.py")
        assert loc["region"]["startLine"] == 5
        assert "reproLintFingerprint/v1" in res["partialFingerprints"]
        # ruleIndex must point back into the rules array
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[res["ruleIndex"]]["id"] == "RPR001"

    def test_fingerprint_matches_baseline_fingerprint(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        result = run_analysis([str(tmp_path)])
        doc = to_sarif(result.findings)
        (res,) = doc["runs"][0]["results"]
        (fp,) = baseline_mod.fingerprints(result.findings)
        assert res["partialFingerprints"]["reproLintFingerprint/v1"] == fp

    def test_empty_findings_validates(self):
        doc = to_sarif([])
        assert doc["runs"][0]["results"] == []
        json.dumps(doc)  # must be serializable


# ---------------------------------------------------------------------------
# baseline + diff-aware mode
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_fingerprint_is_line_independent(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        before = run_analysis([str(tmp_path)])
        # push the finding down two lines; the fingerprint must not move
        _write(tmp_path, "bad.py", "\n\n" + textwrap.dedent(WALLCLOCK))
        after = run_analysis([str(tmp_path)])
        assert before.findings[0].line != after.findings[0].line
        assert baseline_mod.fingerprints(before.findings) == baseline_mod.fingerprints(
            after.findings
        )

    def test_duplicate_messages_get_distinct_fingerprints(self, tmp_path):
        _write(
            tmp_path,
            "bad.py",
            """
            import time

            def a():
                return time.perf_counter()

            def b():
                return time.perf_counter()
            """,
        )
        result = run_analysis([str(tmp_path)])
        fps = baseline_mod.fingerprints(result.findings)
        assert len(fps) == len(set(fps)) == 2

    def test_write_then_filter_suppresses_everything(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        result = run_analysis([str(tmp_path)])
        assert result.findings
        bl = tmp_path / "baseline.json"
        baseline_mod.write_baseline(str(bl), result.findings)
        accepted = baseline_mod.load_baseline(str(bl))
        assert baseline_mod.filter_baseline(result.findings, accepted) == []

    def test_new_finding_survives_baseline(self, tmp_path):
        _write(tmp_path, "bad.py", WALLCLOCK)
        result = run_analysis([str(tmp_path)])
        bl = tmp_path / "baseline.json"
        baseline_mod.write_baseline(str(bl), result.findings)
        _write(
            tmp_path,
            "bad.py",
            textwrap.dedent(WALLCLOCK)
            + "\ndef later():\n    return time.time()\n",
        )
        result = run_analysis([str(tmp_path)])
        accepted = baseline_mod.load_baseline(str(bl))
        fresh = baseline_mod.filter_baseline(result.findings, accepted)
        assert len(fresh) == 1 and "time.time" in fresh[0].message

    def test_missing_baseline_is_empty(self, tmp_path):
        assert baseline_mod.load_baseline(str(tmp_path / "nope.json")) == set()


@pytest.mark.skipif(shutil.which("git") is None, reason="git not available")
class TestChangedSince:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
            cwd=cwd,
            check=True,
            capture_output=True,
        )

    def test_changed_files_and_restrict(self, tmp_path, monkeypatch):
        self._git(tmp_path, "init", "-q")
        _write(tmp_path, "a.py", WALLCLOCK)
        _write(tmp_path, "b.py", WALLCLOCK)
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        _write(tmp_path, "a.py", textwrap.dedent(WALLCLOCK) + "X = 1\n")
        changed = baseline_mod.changed_files("HEAD", cwd=str(tmp_path))
        assert changed is not None
        assert any(c.endswith("a.py") for c in changed)
        assert not any(c.endswith("b.py") for c in changed)

        # findings carry repo-relative paths when lint runs at the root,
        # which is how the CLI matches them against `git diff` output
        monkeypatch.chdir(tmp_path)
        result = run_analysis(["."])
        kept = baseline_mod.restrict_to_changed(result.findings, changed)
        assert kept and all(f.path.endswith("a.py") for f in kept)

    def test_unchanged_tree_reports_nothing(self, tmp_path, monkeypatch):
        self._git(tmp_path, "init", "-q")
        _write(tmp_path, "a.py", WALLCLOCK)
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        changed = baseline_mod.changed_files("HEAD", cwd=str(tmp_path))
        assert changed == set()
        monkeypatch.chdir(tmp_path)
        result = run_analysis(["."])
        assert result.findings  # the tree has findings...
        assert baseline_mod.restrict_to_changed(result.findings, changed) == []

    def test_bad_ref_returns_none(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        assert baseline_mod.changed_files("no-such-ref", cwd=str(tmp_path)) is None


# ---------------------------------------------------------------------------
# autofix
# ---------------------------------------------------------------------------


class TestAutofix:
    SET_ITER = """
        def drain(keys):
            pending = set(keys)
            for key in pending:
                yield key
    """

    def test_sorted_wrap_applied(self):
        src = textwrap.dedent(self.SET_ITER)
        findings = lint_source(src, path="fixture.py")
        assert any(f.fix is not None for f in findings)
        fixed, applied = apply_fixes_to_source(src, findings)
        assert applied == 1
        assert "for key in sorted(pending):" in fixed

    def test_fix_clears_the_finding(self):
        src = textwrap.dedent(self.SET_ITER)
        fixed, _ = apply_fixes_to_source(src, lint_source(src, path="fixture.py"))
        assert not [
            f for f in lint_source(fixed, path="fixture.py") if f.rule_id == "RPR006"
        ]

    def test_second_pass_is_byte_identical(self):
        src = textwrap.dedent(self.SET_ITER)
        once, _ = apply_fixes_to_source(src, lint_source(src, path="fixture.py"))
        twice, applied = apply_fixes_to_source(
            once, lint_source(once, path="fixture.py")
        )
        assert applied == 0
        assert twice == once

    def test_unguarded_delete_rewritten_to_try_delete(self):
        # RPR009 polices library scope only, so give the fixture a src path
        src = textwrap.dedent("""
            def drop(api, name):
                api.delete("Pod", name)
        """)
        findings = [f for f in lint_source(src, path="src/repro/fake.py") if f.fix]
        fixed, applied = apply_fixes_to_source(src, findings)
        assert applied == 1
        assert 'api.try_delete("Pod", name)' in fixed

    def test_noqa_is_never_autofixed_in(self):
        # the only autofixes are mechanical rewrites; suppressions must be
        # written (and justified) by a human.
        src = textwrap.dedent("""
            import time

            def stamp():
                return time.perf_counter()
        """)
        findings = lint_source(src, path="fixture.py")
        fixed, applied = apply_fixes_to_source(src, findings)
        assert applied == 0
        assert "noqa" not in fixed


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_second_run_hits_for_every_file(self, tmp_path):
        _write(tmp_path, "a.py", WALLCLOCK)
        _write(tmp_path, "b.py", CLEAN)
        cache_path = str(tmp_path / ".cache")
        run_analysis([str(tmp_path)], LintCache(cache_path))
        result = run_analysis([str(tmp_path)], LintCache(cache_path))
        assert result.cache_hits == 2 and result.cache_misses == 0

    def test_cached_findings_equal_fresh_findings(self, tmp_path):
        _write(tmp_path, "a.py", WALLCLOCK)
        cache_path = str(tmp_path / ".cache")
        fresh = run_analysis([str(tmp_path)], LintCache(cache_path))
        cached = run_analysis([str(tmp_path)], LintCache(cache_path))
        assert [f.render() for f in cached.findings] == [
            f.render() for f in fresh.findings
        ]

    def test_edit_invalidates_only_that_file(self, tmp_path):
        _write(tmp_path, "a.py", WALLCLOCK)
        _write(tmp_path, "b.py", CLEAN)
        cache_path = str(tmp_path / ".cache")
        run_analysis([str(tmp_path)], LintCache(cache_path))
        _write(tmp_path, "b.py", CLEAN.replace("env.now", "env.now + 0"))
        result = run_analysis([str(tmp_path)], LintCache(cache_path))
        assert result.cache_hits == 1 and result.cache_misses == 1

    def test_engine_version_mismatch_invalidates(self, tmp_path):
        _write(tmp_path, "a.py", CLEAN)
        cache_path = tmp_path / ".cache"
        run_analysis([str(tmp_path)], LintCache(str(cache_path)))
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert payload["engine"] == ENGINE_VERSION
        payload["engine"] = "rpr-engine-0"
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
        result = run_analysis([str(tmp_path)], LintCache(str(cache_path)))
        assert result.cache_misses == 1

    def test_corrupt_cache_is_ignored(self, tmp_path):
        _write(tmp_path, "a.py", WALLCLOCK)
        cache_path = tmp_path / ".cache"
        cache_path.write_text("{not json", encoding="utf-8")
        result = run_analysis([str(tmp_path)], LintCache(str(cache_path)))
        assert len(result.findings) == 1

    def test_deleted_file_is_pruned(self, tmp_path):
        a = _write(tmp_path, "a.py", CLEAN)
        _write(tmp_path, "b.py", CLEAN)
        cache_path = tmp_path / ".cache"
        run_analysis([str(tmp_path)], LintCache(str(cache_path)))
        a.unlink()
        run_analysis([str(tmp_path)], LintCache(str(cache_path)))
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert not any(p.endswith("a.py") for p in payload["files"])


# ---------------------------------------------------------------------------
# tokenize-based suppression scanning
# ---------------------------------------------------------------------------


class TestNoqaScanning:
    def test_noqa_inside_string_literal_is_inert(self):
        src = textwrap.dedent("""
            import time

            SNIPPET = "t = time.time()  # noqa: RPR001"
            t0 = time.perf_counter()
        """)
        assert [f.rule_id for f in lint_source(src, path="fixture.py")] == ["RPR001"]

    def test_noqa_in_string_on_the_finding_line_is_inert(self):
        src = 'import time\nmsg = "# noqa: RPR001"; t0 = time.perf_counter()\n'
        assert [f.rule_id for f in lint_source(src, path="fixture.py")] == ["RPR001"]

    def test_real_comment_still_suppresses(self):
        src = textwrap.dedent("""
            import time
            t0 = time.perf_counter()  # noqa: RPR001 - measuring host wall time
        """)
        assert lint_source(src, path="fixture.py") == []

    def test_pragma_inside_docstring_is_inert(self):
        src = textwrap.dedent('''
            """Docs quoting `# repro-lint: disable=RPR001` must not disable."""
            import time
            t0 = time.perf_counter()
        ''')
        assert [f.rule_id for f in lint_source(src, path="fixture.py")] == ["RPR001"]


class TestStaleSuppressions:
    def test_stale_noqa_reported(self, tmp_path):
        _write(
            tmp_path,
            "a.py",
            """
            def stamp(env):
                return env.now  # noqa: RPR001 - stale justification
            """,
        )
        result = run_analysis([str(tmp_path)])
        stale = stale_suppressions(result)
        assert len(stale) == 1
        path, line, code = stale[0]
        assert path.endswith("a.py") and code == "RPR001"

    def test_live_noqa_not_reported(self, tmp_path):
        _write(
            tmp_path,
            "a.py",
            """
            import time
            t0 = time.perf_counter()  # noqa: RPR001 - measuring host wall time
            """,
        )
        assert stale_suppressions(run_analysis([str(tmp_path)])) == []

    def test_bare_noqa_and_foreign_codes_not_judged(self, tmp_path):
        _write(
            tmp_path,
            "a.py",
            """
            x = 1  # noqa
            y = 2  # noqa: BLE001
            """,
        )
        assert stale_suppressions(run_analysis([str(tmp_path)])) == []

    def test_stale_pragma_reported(self, tmp_path):
        _write(
            tmp_path,
            "a.py",
            """
            # repro-lint: disable=RPR004 - nothing here touches raw CAS
            def stamp(env):
                return env.now
            """,
        )
        stale = stale_suppressions(run_analysis([str(tmp_path)]))
        assert [code for _, _, code in stale] == ["RPR004"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "a.py", CLEAN)
        assert main([str(tmp_path), "--no-cache"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "a.py", WALLCLOCK)
        assert main([str(tmp_path), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "1 finding(s)" in out

    def test_parse_error_exits_one(self, tmp_path, capsys):
        _write(tmp_path, "a.py", "def broken(:\n")
        assert main([str(tmp_path), "--no-cache"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_sarif_output_file(self, tmp_path, capsys):
        _write(tmp_path, "a.py", WALLCLOCK)
        out = tmp_path / "report.sarif"
        assert main([str(tmp_path), "--no-cache", "--format", "sarif",
                     "--output", str(out)]) == 1
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"
        assert len(doc["runs"][0]["results"]) == 1

    def test_write_baseline_then_baseline_suppresses(self, tmp_path, capsys):
        _write(tmp_path, "a.py", WALLCLOCK)
        bl = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--no-cache", "--write-baseline", str(bl)]) == 0
        assert main([str(tmp_path), "--no-cache", "--baseline", str(bl)]) == 0

    def test_fix_rewrites_in_place(self, tmp_path, capsys):
        path = _write(
            tmp_path,
            "a.py",
            """
            def drain(keys):
                pending = set(keys)
                for key in pending:
                    yield key
            """,
        )
        assert main([str(tmp_path), "--no-cache", "--fix"]) == 0
        assert "sorted(pending)" in path.read_text(encoding="utf-8")

    def test_check_suppressions_exit_codes(self, tmp_path, capsys):
        _write(tmp_path, "a.py", "x = 1  # noqa: RPR001 - stale\n")
        assert main([str(tmp_path), "--no-cache", "--check-suppressions"]) == 1
        _write(tmp_path, "a.py", "x = 1\n")
        assert main([str(tmp_path), "--no-cache", "--check-suppressions"]) == 0

    def test_changed_since_bad_ref_warns_and_falls_back(self, tmp_path, capsys):
        _write(tmp_path, "a.py", WALLCLOCK)
        code = main(
            [str(tmp_path), "--no-cache", "--changed-since", "no-such-ref-xyz"]
        )
        captured = capsys.readouterr()
        assert code == 1  # full-tree fallback still reports the finding
        assert "warning" in captured.err

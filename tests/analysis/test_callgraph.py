"""Call-graph collection and resolution fixtures: module functions,
``self.method``, typed locals, constructor inference, factory bodies,
and the facts round-trip that backs the lint cache."""

import ast
import textwrap

from repro.analysis.callgraph import (
    FileFacts,
    ProjectIndex,
    collect_file_facts,
    module_qualname,
    shared_receiver,
)
from repro.analysis.rules import FileContext


def facts_for(source: str, path: str = "fixture.py") -> FileFacts:
    source = textwrap.dedent(source)
    return collect_file_facts(FileContext(path, source, ast.parse(source)))


def index_for(*sources) -> ProjectIndex:
    index = ProjectIndex()
    for i, source in enumerate(sources):
        index.add(facts_for(source, path=f"mod{i}.py"))
    return index


class TestModuleQualname:
    def test_src_layout(self):
        assert module_qualname("src/repro/core/devmgr.py") == "repro.core.devmgr"

    def test_package_init(self):
        assert module_qualname("src/repro/analysis/__init__.py") == "repro.analysis"

    def test_bare_fixture(self):
        assert module_qualname("fixture.py") == "fixture"


class TestSharedReceiver:
    def test_self_and_underscores_normalize(self):
        assert shared_receiver("self._etcd") == shared_receiver("etcd") == "etcd"

    def test_nested_receiver(self):
        assert shared_receiver("self.api.pods") == "api.pods"

    def test_non_shared_is_none(self):
        assert shared_receiver("self.queue") is None
        assert shared_receiver(None) is None


class TestFunctionCollection:
    def test_direct_taint_on_wall_clock_return(self):
        facts = facts_for("""
            import time
            def stamp():
                return time.time()
        """)
        (fn,) = facts.functions
        assert fn.qualname == "fixture.stamp"
        assert fn.direct_taint == "time.time"

    def test_env_now_is_not_tainted(self):
        facts = facts_for("""
            def stamp(env):
                return env.now
        """)
        assert facts.functions[0].direct_taint is None

    def test_return_callee_resolved_for_bare_name(self):
        facts = facts_for("""
            def helper():
                return 1
            def outer():
                return helper()
        """)
        outer = next(f for f in facts.functions if f.name == "outer")
        assert "fixture.helper" in outer.return_callees

    def test_self_method_callee_resolved(self):
        facts = facts_for("""
            class C:
                def helper(self):
                    return 1
                def outer(self):
                    return self.helper()
        """)
        outer = next(f for f in facts.functions if f.name == "outer")
        assert "fixture.C::helper" in outer.return_callees

    def test_generator_flag(self):
        facts = facts_for("""
            def gen():
                yield 1
        """)
        assert facts.functions[0].is_generator


class TestClassCollection:
    def test_init_stores_and_write_attrs(self):
        facts = facts_for("""
            class Controller:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)
        """)
        (cls,) = facts.classes
        assert cls.stores.get("api") == ["api"]
        assert "api" in cls.write_attrs

    def test_store_through_local_alias(self):
        facts = facts_for("""
            class Controller:
                def __init__(self, api):
                    handle = api
                    self.client = handle
        """)
        (cls,) = facts.classes
        assert cls.stores.get("api") == ["client"]

    def test_method_shared_summaries_with_helper_indirection(self):
        facts = facts_for("""
            class Mgr:
                def _flush(self, obj):
                    self.api.update(obj)
                def run(self):
                    sp = self.api.get("Pod", "x")
                    self._flush(sp)
        """)
        (cls,) = facts.classes
        assert "api" in cls.method_shared_writes["_flush"]
        # one level of self.helper() indirection folds into the caller
        assert "api" in cls.method_shared_writes["run"]
        assert "api" in cls.method_shared_reads["run"]

    def test_patch_is_not_a_shared_write(self):
        # api.patch(kind, name, mutate) re-reads server-side state, so the
        # atomicity summaries must not count it as a stale-prone write.
        facts = facts_for("""
            class Mgr:
                def flush(self, name, mutate):
                    self.api.patch("Pod", name, mutate)
        """)
        (cls,) = facts.classes
        assert cls.method_shared_writes["flush"] == []


class TestFactoryCollection:
    def test_unfenced_handle_recorded(self):
        facts = facts_for("""
            def wire(env, apiserver):
                def factory(client):
                    return Controller(apiserver)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        (factory,) = facts.factories
        (arg,) = factory.ctor_args
        assert arg.apiish and not arg.fenced
        assert arg.expr == "apiserver"

    def test_fenced_client_recorded_as_fenced(self):
        facts = facts_for("""
            def wire(env):
                def factory(client):
                    return Controller(client)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        (factory,) = facts.factories
        assert all(arg.fenced for arg in factory.ctor_args)

    def test_alias_of_client_stays_fenced(self):
        facts = facts_for("""
            def wire(env):
                def factory(client):
                    handle = client
                    return Controller(handle)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        (factory,) = facts.factories
        assert all(arg.fenced for arg in factory.ctor_args)

    def test_nested_ctor_records_inner_class(self):
        facts = facts_for("""
            def wire(env, apiserver):
                def factory(client):
                    return Controller(Helper(apiserver))
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        (factory,) = facts.factories
        # both the outer slot (laundered) and the inner Helper(apiserver)
        # argument are recorded; the outer one carries inner_class_ref.
        (outer,) = [a for a in factory.ctor_args if a.inner_class_ref is not None]
        assert "Helper" in outer.inner_class_ref
        assert outer.class_ref.endswith("Controller")


class TestProjectIndex:
    def test_cross_module_function_resolution(self):
        index = index_for(
            """
            def helper():
                return 1
            """,
            """
            from mod0 import helper
            def outer():
                return helper()
            """,
        )
        outer = index.resolve_function("mod1.outer")
        assert outer is not None
        ref = outer.return_callees[0]
        resolved = index.resolve_function(ref)
        assert resolved is not None and resolved.qualname == "mod0.helper"

    def test_method_resolution_through_base_class(self):
        index = index_for(
            """
            class Base:
                def push(self):
                    return 1
            """,
            """
            from mod0 import Base
            class Child(Base):
                pass
            """,
        )
        child = index.resolve_class("mod1.Child")
        assert child is not None
        assert index.resolve_function("mod1.Child::push") is not None

    def test_unresolvable_reference_is_none(self):
        index = index_for("def f():\n    return 1\n")
        assert index.resolve_function("nowhere.else") is None
        assert index.resolve_class("nowhere.Else") is None


class TestFactsRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        facts = facts_for("""
            import time

            POOL_KEYS = {"a", "b"}

            class Controller:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)

            def stamp():
                return time.time()

            def wire(env, apiserver):
                def factory(client):
                    return Controller(apiserver)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        clone = FileFacts.from_dict(facts.to_dict())
        assert clone.to_dict() == facts.to_dict()
        assert [f.qualname for f in clone.functions] == [
            f.qualname for f in facts.functions
        ]
        assert clone.classes[0].stores == facts.classes[0].stores
        assert len(clone.factories) == len(facts.factories)

    def test_round_trip_survives_json(self):
        import json

        facts = facts_for("""
            class C:
                def __init__(self, api):
                    self.api = api
        """)
        clone = FileFacts.from_dict(json.loads(json.dumps(facts.to_dict())))
        assert clone.to_dict() == facts.to_dict()

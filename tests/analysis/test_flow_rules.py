"""Positive/negative fixtures for the whole-program dataflow rules:
RPR011 (interprocedural taint), RPR012 (fence escape), RPR013
(yield-point atomicity), driven through :func:`lint_source` and, for the
cross-file cases, :func:`run_analysis` over a temp tree."""

import textwrap

from repro.analysis.flow import library_scope, taint_sink_scope
from repro.analysis.lint import lint_source, run_analysis


def findings(source: str, path: str = "fixture.py"):
    return lint_source(textwrap.dedent(source), path=path)


def rule_ids(source: str, path: str = "fixture.py"):
    return sorted({f.rule_id for f in findings(source, path)})


class TestScopes:
    def test_src_repro_in_scope(self):
        assert library_scope("src/repro/core/devmgr.py")
        assert taint_sink_scope("src/repro/core/devmgr.py")

    def test_tests_and_benchmarks_exempt(self):
        assert not library_scope("tests/analysis/test_lint_rules.py")
        assert not library_scope("benchmarks/capstone.py")

    def test_experiments_and_cli_are_not_taint_sinks(self):
        assert not taint_sink_scope("src/repro/experiments/fig10.py")
        assert not taint_sink_scope("src/repro/cli.py")
        assert library_scope("src/repro/cli.py")

    def test_bare_fixture_paths_in_scope(self):
        assert library_scope("fixture.py")
        assert taint_sink_scope("fixture.py")


class TestRPR011Taint:
    def test_tainted_helper_call_flagged(self):
        ids = rule_ids("""
            import time

            def stamp():
                return time.time()

            def sim_step(env):
                t = stamp()
                return t
        """)
        # RPR001 fires at the source, RPR011 at the escaping call site.
        assert "RPR011" in ids and "RPR001" in ids

    def test_transitive_taint_flagged(self):
        fs = findings("""
            import time

            def inner():
                return time.time()

            def outer():
                return inner()

            def sim_step(env):
                return outer()
        """)
        taint = [f for f in fs if f.rule_id == "RPR011"]
        assert any("outer()" in f.message for f in taint)
        assert any("time.time" in f.message for f in taint)

    def test_unseeded_rng_helper_flagged(self):
        ids = rule_ids("""
            import random

            def jitter():
                return random.random()

            def sim_step(env):
                return jitter()
        """)
        assert "RPR011" in ids

    def test_virtual_time_helper_clean(self):
        ids = rule_ids("""
            def stamp(env):
                return env.now

            def sim_step(env):
                return stamp(env)
        """)
        assert "RPR011" not in ids

    def test_seeded_rng_helper_clean(self):
        ids = rule_ids("""
            import random

            def jitter(rng):
                return rng.random()

            def make_rng(seed):
                return random.Random(seed)

            def sim_step(env, rng):
                return jitter(rng)
        """)
        assert "RPR011" not in ids

    def test_tainted_argument_into_sim_scope_flagged(self, tmp_path):
        (tmp_path / "simcode.py").write_text(
            textwrap.dedent("""
                def sim_tick(env, when):
                    return when
            """),
            encoding="utf-8",
        )
        exp = tmp_path / "experiments"
        exp.mkdir()
        (exp / "driver.py").write_text(
            textwrap.dedent("""
                import time
                from simcode import sim_tick

                def main(env):
                    sim_tick(env, time.time())
            """),
            encoding="utf-8",
        )
        result = run_analysis([str(tmp_path)])
        taint = [f for f in result.findings if f.rule_id == "RPR011"]
        assert len(taint) == 1
        assert taint[0].path.endswith("driver.py")
        assert "tainted argument" in taint[0].message

    def test_experiment_driver_may_measure_host_time(self, tmp_path):
        exp = tmp_path / "experiments"
        exp.mkdir()
        (exp / "driver.py").write_text(
            textwrap.dedent("""
                import time

                def elapsed(t0):
                    return time.time() - t0

                def main():
                    return elapsed(0.0)
            """),
            encoding="utf-8",
        )
        result = run_analysis([str(tmp_path)])
        assert not [f for f in result.findings if f.rule_id == "RPR011"]


class TestRPR012FenceEscape:
    def test_unfenced_handle_into_writer_flagged(self):
        fs = findings("""
            class Controller:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)

            def wire(env, apiserver):
                def factory(client):
                    return Controller(apiserver)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        fence = [f for f in fs if f.rule_id == "RPR012"]
        assert len(fence) == 1
        assert "apiserver" in fence[0].message
        assert "Controller" in fence[0].message

    def test_fenced_client_clean(self):
        ids = rule_ids("""
            class Controller:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)

            def wire(env):
                def factory(client):
                    return Controller(client)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        assert "RPR012" not in ids

    def test_aliased_client_clean(self):
        ids = rule_ids("""
            class Controller:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)

            def wire(env):
                def factory(client):
                    handle = client
                    return Controller(handle)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        assert "RPR012" not in ids

    def test_read_only_consumer_clean(self):
        # the handle escapes the fence but nothing writes through it
        ids = rule_ids("""
            class Viewer:
                def __init__(self, api):
                    self.api = api
                def peek(self, name):
                    return self.api.get("Pod", name)

            def wire(env, apiserver):
                def factory(client):
                    return Viewer(apiserver)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        assert "RPR012" not in ids

    def test_laundered_through_helper_ctor_flagged(self):
        fs = findings("""
            class Helper:
                def __init__(self, api):
                    self.api = api

            class Controller:
                def __init__(self, helper):
                    self.helper = helper
                def push(self, obj):
                    self.helper.api.update(obj)

            def wire(env, apiserver):
                def factory(client):
                    return Controller(Helper(apiserver))
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        fence = [f for f in fs if f.rule_id == "RPR012"]
        assert any("laundered" in f.message for f in fence)

    def test_forwarded_handle_flagged(self):
        # wrapper class forwards the raw handle into a writer it builds
        fs = findings("""
            class Writer:
                def __init__(self, api):
                    self.api = api
                def push(self, obj):
                    self.api.update(obj)

            class Wrapper:
                def __init__(self, api):
                    self.writer = Writer(api)

            def wire(env, apiserver):
                def factory(client):
                    return Wrapper(apiserver)
                return HAControllerGroup(env, "ctl", 3, factory)
        """)
        assert any(f.rule_id == "RPR012" for f in fs)


class TestRPR013YieldAtomicity:
    def test_read_yield_write_flagged(self):
        fs = findings("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                yield env.timeout(1)
                api.update(sp)
        """)
        atom = [f for f in fs if f.rule_id == "RPR013"]
        assert len(atom) == 1
        assert "`api`" in atom[0].message

    def test_write_before_yield_clean(self):
        ids = rule_ids("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                api.update(sp)
                yield env.timeout(1)
        """)
        assert "RPR013" not in ids

    def test_reread_after_yield_clean(self):
        ids = rule_ids("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                yield env.timeout(1)
                sp = api.get("Pod", "x")
                api.update(sp)
        """)
        assert "RPR013" not in ids

    def test_conflict_retry_exempt(self):
        ids = rule_ids("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                yield env.timeout(1)
                try:
                    api.update(sp)
                except Conflict:
                    pass
        """)
        assert "RPR013" not in ids

    def test_cas_write_exempt(self):
        ids = rule_ids("""
            def proc(env, etcd):
                rev, val = etcd.get("k")
                yield env.timeout(1)
                etcd.put_if("k", val, rev)
        """)
        assert "RPR013" not in ids

    def test_patch_mutator_exempt(self):
        ids = rule_ids("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                yield env.timeout(1)
                api.patch("Pod", "x", lambda p: p)
        """)
        assert "RPR013" not in ids

    def test_blind_write_clean(self):
        # create with no prior read is not a read-modify-write
        ids = rule_ids("""
            def proc(env, api):
                yield env.timeout(1)
                api.create(object())
        """)
        assert "RPR013" not in ids

    def test_branch_exclusive_read_write_clean(self):
        # the read and the write are on mutually exclusive paths
        ids = rule_ids("""
            def proc(env, api, fast):
                if fast:
                    sp = api.get("Pod", "x")
                    return
                yield env.timeout(1)
                api.update(None)
        """)
        assert "RPR013" not in ids

    def test_guard_clause_does_not_mask_finding(self):
        ids = rule_ids("""
            def proc(env, api):
                sp = api.get("Pod", "x")
                if sp is None:
                    return
                yield env.timeout(1)
                api.update(sp)
        """)
        assert "RPR013" in ids

    def test_loop_carried_staleness_flagged(self):
        # the read happens at the bottom of the body, the write at the top
        # of the *next* iteration — only a second body pass can see it.
        ids = rule_ids("""
            def pump(env, api):
                cached = api.get("Pod", "x")
                while True:
                    yield env.timeout(1)
                    api.update(cached)
                    cached = api.get("Pod", "x")
        """)
        assert "RPR013" in ids

    def test_fresh_read_each_iteration_clean(self):
        ids = rule_ids("""
            def pump(env, api):
                while True:
                    sp = api.get("Pod", "x")
                    api.update(sp)
                    yield env.timeout(1)
        """)
        assert "RPR013" not in ids

    def test_method_summary_write_flagged(self):
        fs = findings("""
            class Mgr:
                def _flush(self, obj):
                    self.api.update(obj)
                def run(self, env):
                    sp = self.api.get("Pod", "x")
                    yield env.timeout(1)
                    self._flush(sp)
        """)
        atom = [f for f in fs if f.rule_id == "RPR013"]
        assert len(atom) == 1
        assert "run" in atom[0].message

    def test_yield_from_delegation_not_double_reported(self):
        # the delegated generator is analyzed on its own; the yield from
        # call site must not replay its summary.
        fs = findings("""
            class Mgr:
                def _drain(self, env):
                    sp = self.api.get("Pod", "x")
                    yield env.timeout(1)
                    self.api.update(sp)
                def run(self, env):
                    yield from self._drain(env)
        """)
        atom = [f for f in fs if f.rule_id == "RPR013"]
        assert len(atom) == 1
        assert "_drain" in atom[0].message

    def test_non_generator_not_checked(self):
        ids = rule_ids("""
            def proc(api):
                sp = api.get("Pod", "x")
                api.update(sp)
        """)
        assert "RPR013" not in ids

    def test_tests_scope_exempt(self):
        ids = rule_ids(
            """
            def proc(env, api):
                sp = api.get("Pod", "x")
                yield env.timeout(1)
                api.update(sp)
            """,
            path="tests/cluster/test_thing.py",
        )
        assert "RPR013" not in ids

"""The dynamic race detector must catch deliberately staged violations —
a lost update, a laundered resourceVersion, a double-bound vGPU, and a
token over-grant — and stay silent on the correct patterns."""
# repro-lint: disable=RPR004 - staged blind puts are what these tests detect

import pytest

from repro.analysis.race import RaceDetector, RaceViolation, install, install_from_env
from repro.cluster.etcd import Etcd
from repro.cluster.objects import (
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
)
from repro.core.vgpu import PLACEHOLDER_PREFIX
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def etcd(env):
    store = Etcd(env)
    store.tracker = RaceDetector(env)
    return store


def detector(etcd) -> RaceDetector:
    return etcd.tracker


class TestLostUpdate:
    def test_blind_overwrite_of_unread_revision_flagged(self, env, etcd):
        def writer_a():
            etcd.put("/registry/Lease/default/l", "a")
            yield env.timeout(0)

        def writer_b():
            # b never read the key, yet blindly overwrites a's write.
            etcd.put("/registry/Lease/default/l", "b")
            yield env.timeout(0)

        env.process(writer_a(), name="a")
        proc = env.process(writer_b(), name="b")
        with pytest.raises(RaceViolation, match="lost-update"):
            env.run(until=proc)

    def test_read_then_cas_is_clean(self, env, etcd):
        def writer():
            kv = etcd.put("/registry/Lease/default/l", 0)
            fresh = etcd.get("/registry/Lease/default/l")
            etcd.put_if("/registry/Lease/default/l", kv.value + 1, fresh.mod_revision)
            yield env.timeout(0)

        proc = env.process(writer(), name="w")
        env.run(until=proc)
        assert detector(etcd).violations == []

    def test_laundered_resource_version_flagged(self, env, etcd):
        """A CAS with a revision the actor obtained out-of-band (not via a
        tracked read) is still a lost-update hazard."""

        def setup():
            etcd.put("/registry/Pod/default/p", "v1")
            yield env.timeout(0)

        def launderer():
            # Forge the revision instead of reading it: CAS succeeds at
            # the store level but the actor never observed the value it
            # is replacing.
            etcd.put_if("/registry/Pod/default/p", "v2", etcd.revision)
            yield env.timeout(0)

        env.process(setup(), name="owner")
        proc = env.process(launderer(), name="launderer")
        with pytest.raises(RaceViolation, match="compare-and-swap"):
            env.run(until=proc)

    def test_first_create_never_flagged(self, env, etcd):
        def creator():
            etcd.put("/registry/Pod/default/p", "v1")
            yield env.timeout(0)

        proc = env.process(creator(), name="c")
        env.run(until=proc)
        assert detector(etcd).violations == []

    def test_check_reports_collected_violations(self, env, etcd):
        etcd.tracker = RaceDetector(env, fail_fast=False)

        def racers():
            etcd.put("/registry/Node/n1", "a")
            yield env.timeout(0)

        def blind():
            etcd.put("/registry/Node/n1", "b")
            yield env.timeout(0)

        env.process(racers(), name="a")
        proc = env.process(blind(), name="b")
        env.run(until=proc)
        det = detector(etcd)
        assert len(det.violations) == 1
        assert det.violations[0].kind == "lost-update"
        with pytest.raises(RaceViolation, match="1 violation"):
            det.check()


def make_placeholder(name: str, uuid: str) -> Pod:
    pod = Pod(
        metadata=ObjectMeta(name=name, namespace="kubeshare"),
        spec=PodSpec(containers=[ContainerSpec(name="holder")]),
    )
    pod.status.phase = PodPhase.RUNNING
    pod.status.container_env = {"NVIDIA_VISIBLE_DEVICES": uuid}
    return pod


class TestDoubleBind:
    def test_two_running_holders_on_one_uuid_flagged(self, env, etcd):
        def binder():
            etcd.put(
                f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}aaa",
                make_placeholder(f"{PLACEHOLDER_PREFIX}aaa", "GPU-0"),
            )
            etcd.put(
                f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}bbb",
                make_placeholder(f"{PLACEHOLDER_PREFIX}bbb", "GPU-0"),
            )
            yield env.timeout(0)

        proc = env.process(binder(), name="devmgr")
        with pytest.raises(RaceViolation, match="double-bind"):
            env.run(until=proc)

    def test_distinct_uuids_clean(self, env, etcd):
        def binder():
            etcd.put(
                f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}aaa",
                make_placeholder(f"{PLACEHOLDER_PREFIX}aaa", "GPU-0"),
            )
            etcd.put(
                f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}bbb",
                make_placeholder(f"{PLACEHOLDER_PREFIX}bbb", "GPU-1"),
            )
            yield env.timeout(0)

        proc = env.process(binder(), name="devmgr")
        env.run(until=proc)
        assert detector(etcd).violations == []

    def test_rebind_after_delete_clean(self, env, etcd):
        """Teardown then re-create on the same UUID is the legitimate
        failover path, not a double-bind."""
        key_a = f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}aaa"
        key_b = f"/registry/Pod/kubeshare/{PLACEHOLDER_PREFIX}bbb"

        def cycle():
            etcd.put(key_a, make_placeholder(f"{PLACEHOLDER_PREFIX}aaa", "GPU-0"))
            etcd.delete(key_a)
            etcd.put(key_b, make_placeholder(f"{PLACEHOLDER_PREFIX}bbb", "GPU-0"))
            yield env.timeout(0)

        proc = env.process(cycle(), name="devmgr")
        env.run(until=proc)
        assert detector(etcd).violations == []


class Token:
    def __init__(self, client_id: str, valid: bool = True):
        self.client_id = client_id
        self.valid = valid


class TestTokenOvergrant:
    def test_grant_over_valid_token_flagged(self, env):
        det = RaceDetector(env)
        det.record_token_grant("GPU-0", Token("c1"), None)
        with pytest.raises(RaceViolation, match="token-overgrant"):
            det.record_token_grant("GPU-0", Token("c2"), Token("c1", valid=True))

    def test_grant_after_expiry_clean(self, env):
        det = RaceDetector(env)
        det.record_token_grant("GPU-0", Token("c1"), None)
        det.record_token_grant("GPU-0", Token("c2"), Token("c1", valid=False))
        assert det.violations == []


class TestInstall:
    def test_install_wires_etcd_and_backends(self, small_cluster):
        det = install(small_cluster)
        assert small_cluster.api.etcd.tracker is det
        for node in small_cluster.nodes:
            assert node.backend.tracker is det

    def test_install_from_env_requires_flag(self, small_cluster, monkeypatch):
        monkeypatch.delenv("REPRO_RACE_DETECT", raising=False)
        assert install_from_env(small_cluster) is None
        monkeypatch.setenv("REPRO_RACE_DETECT", "1")
        assert install_from_env(small_cluster) is not None

    def test_clean_scenario_records_traffic_without_violations(self, small_cluster):
        from repro.core import KubeShare

        det = install(small_cluster)
        ks = KubeShare(small_cluster, isolation="token").start()
        ks.submit(ks.make_sharepod("sp0", gpu_request=0.5, gpu_limit=0.5, gpu_mem=0.3))
        small_cluster.env.run(until=20.0)
        assert det.reads_total > 0 and det.writes_total > 0
        det.check()  # no violations in a healthy run

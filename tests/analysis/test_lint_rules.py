"""Fixture tests for every RPR lint rule: one snippet that must trip the
rule (positive) and one that must not (negative), driven through
:func:`repro.analysis.lint.lint_source` exactly as the CLI would."""

import textwrap

from repro.analysis.lint import lint_source
from repro.analysis.rules import ALL_RULES, FileContext, ProjectContext
import ast


def findings(source: str, project: ProjectContext = None):
    return lint_source(textwrap.dedent(source), path="fixture.py", project=project)


def rule_ids(source: str, project: ProjectContext = None):
    return sorted({f.rule_id for f in findings(source, project)})


class TestRPR001WallClock:
    def test_time_time_flagged(self):
        assert rule_ids("""
            import time
            def tick(env):
                return time.time()
        """) == ["RPR001"]

    def test_datetime_now_flagged(self):
        assert "RPR001" in rule_ids("""
            from datetime import datetime
            stamp = datetime.now()
        """)

    def test_perf_counter_flagged(self):
        assert "RPR001" in rule_ids("""
            from time import perf_counter
            t0 = perf_counter()
        """)

    def test_virtual_time_clean(self):
        assert rule_ids("""
            def tick(env):
                return env.now
        """) == []

    def test_noqa_suppresses(self):
        assert rule_ids("""
            import time
            t0 = time.perf_counter()  # noqa: RPR001 - measuring host wall time
        """) == []

    def test_foreign_noqa_does_not_suppress(self):
        assert rule_ids("""
            import time
            t0 = time.perf_counter()  # noqa: BLE001
        """) == ["RPR001"]


class TestRPR002GlobalRng:
    def test_module_random_flagged(self):
        assert rule_ids("""
            import random
            def jitter():
                return random.random()
        """) == ["RPR002"]

    def test_unseeded_shuffle_flagged(self):
        assert "RPR002" in rule_ids("""
            from random import shuffle
            def mix(xs):
                shuffle(xs)
        """)

    def test_seeded_instance_clean(self):
        assert rule_ids("""
            import random
            def jitter(seed):
                rng = random.Random(seed)
                return rng.random()
        """) == []

    def test_seeded_numpy_generator_clean(self):
        assert rule_ids("""
            import numpy as np
            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
        """) == []

    def test_unseeded_numpy_flagged(self):
        assert "RPR002" in rule_ids("""
            import numpy as np
            def draw():
                return np.random.normal()
        """)


class TestRPR003ModuleState:
    def test_bare_counter_flagged(self):
        assert rule_ids("""
            import itertools
            _counter = itertools.count(1)
        """) == ["RPR003"]

    def test_mutable_dict_flagged(self):
        assert "RPR003" in rule_ids("""
            _cache = {}
        """)

    def test_registered_reset_clean(self):
        assert rule_ids("""
            import itertools
            from repro.analysis.resets import register_reset
            _counter = itertools.count(1)

            @register_reset("fixture.counter")
            def _reset() -> None:
                global _counter
                _counter = itertools.count(1)
        """) == []

    def test_clear_style_reset_clean(self):
        assert rule_ids("""
            from repro.analysis.resets import register_reset
            _cache = {}
            register_reset("fixture.cache", _cache.clear)
        """) == []

    def test_constants_exempt(self):
        assert rule_ids("""
            ALL_NAMES = ["a", "b"]
            __all__ = ["ALL_NAMES"]
        """) == []


class TestRPR004LostUpdate:
    def test_blind_etcd_put_flagged(self):
        assert rule_ids("""
            def bump(etcd, key):
                kv = etcd.get(key)
                etcd.put(key, kv.value + 1)
        """) == ["RPR004"]

    def test_get_then_update_flagged(self):
        assert rule_ids("""
            def promote(api, name):
                obj = api.get("Pod", name)
                obj.status.phase = "Running"
                api.update(obj)
        """) == ["RPR004"]

    def test_conflict_handler_clean(self):
        assert rule_ids("""
            def promote(api, name):
                while True:
                    obj = api.get("Pod", name)
                    obj.status.phase = "Running"
                    try:
                        api.update(obj)
                        return
                    except Conflict:
                        continue
        """) == []

    def test_cas_put_if_clean(self):
        assert rule_ids("""
            def bump(etcd, key):
                kv = etcd.get(key)
                etcd.put_if(key, kv.value + 1, kv.mod_revision)
        """) == []

    def test_patch_clean(self):
        assert rule_ids("""
            def promote(api, name):
                api.patch("Pod", name, lambda p: p)
        """) == []

    def test_plain_dict_get_update_clean(self):
        # dict.get / dict.update must not be mistaken for apiserver calls.
        assert rule_ids("""
            def merge(table, extra):
                current = table.get("k")
                table.update(extra)
        """) == []


class TestRPR005UnfencedFactory:
    def test_factory_ignoring_fenced_api_flagged(self):
        assert rule_ids("""
            from repro.cluster.ha import HAControllerGroup

            class Ctl:
                def __init__(self, cluster):
                    self.api = cluster.api

            def factory(api, cluster, name):
                return Ctl(cluster)

            def build(env, api, cluster):
                return HAControllerGroup(env, api, "devmgr", factory)
        """) == ["RPR005"]

    def test_factory_using_fenced_api_clean(self):
        assert rule_ids("""
            from repro.cluster.ha import HAControllerGroup

            class Ctl:
                def __init__(self, api):
                    self.api = api

            def factory(api, cluster, name):
                return Ctl(api)

            def build(env, api, cluster):
                return HAControllerGroup(env, api, "devmgr", factory)
        """) == []


class TestRPR006SetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rule_ids("""
            def pick():
                for node in {"a", "b"}:
                    return node
        """) == ["RPR006"]

    def test_for_over_set_local_flagged(self):
        assert "RPR006" in rule_ids("""
            def drain(keys):
                pending = set(keys)
                for key in pending:
                    yield key
        """)

    def test_list_of_set_flagged(self):
        assert "RPR006" in rule_ids("""
            def snapshot(s):
                live = set(s)
                return list(live)
        """)

    def test_sorted_clean(self):
        assert rule_ids("""
            def drain(keys):
                pending = set(keys)
                for key in sorted(pending):
                    yield key
        """) == []

    def test_set_attr_cross_file_flagged(self):
        project = ProjectContext()
        decl = textwrap.dedent("""
            class Queue:
                def __init__(self):
                    self._live = set()
        """)
        use = textwrap.dedent("""
            def drain(q):
                for key in q._live:
                    yield key
        """)
        project.collect(FileContext("decl.py", decl, ast.parse(decl)))
        use_tree = ast.parse(use)
        project.collect(FileContext("use.py", use, use_tree))
        ids = {f.rule_id for f in lint_source(use, path="use.py", project=project)}
        assert "RPR006" in ids

    def test_local_list_overrides_foreign_set_attr(self):
        # Another file's `self._pending = set()` must not taint a class
        # whose own `_pending` is a list.
        project = ProjectContext()
        decl = textwrap.dedent("""
            class Queue:
                def __init__(self):
                    self._pending = set()
        """)
        use = textwrap.dedent("""
            from typing import List

            class Retrier:
                def __init__(self):
                    self._pending: List[str] = []

                def drain(self):
                    for entry in self._pending:
                        yield entry
        """)
        project.collect(FileContext("decl.py", decl, ast.parse(decl)))
        project.collect(FileContext("use.py", use, ast.parse(use)))
        assert lint_source(use, path="use.py", project=project) == []

    def test_order_insensitive_reduction_clean(self):
        assert rule_ids("""
            def check(ids):
                s = set(ids)
                return all(i.startswith("vgpu-") for i in s)
        """) == []

    def test_finding_reported_exactly_once(self):
        # A module-level def is both part of the Module scope's body and a
        # scope of its own; the walker must visit its body exactly once.
        result = findings("""
            def drain(keys):
                pending = set(keys)
                for key in pending:
                    yield key
        """)
        assert [f.rule_id for f in result] == ["RPR006"]

    def test_nested_function_reported_exactly_once(self):
        result = findings("""
            def outer(keys):
                def inner():
                    pending = set(keys)
                    for key in pending:
                        yield key
                return inner
        """)
        assert [f.rule_id for f in result] == ["RPR006"]


class TestRPR007BarePrint:
    SNIPPET = textwrap.dedent("""
        def reconcile(key):
            print("reconciling", key)
    """)

    def ids_at(self, path):
        return sorted({f.rule_id for f in lint_source(self.SNIPPET, path=path)})

    def test_library_print_flagged(self):
        assert self.ids_at("src/repro/core/devmgr.py") == ["RPR007"]

    def test_experiments_exempt(self):
        assert self.ids_at("src/repro/experiments/fig9.py") == []

    def test_cli_entry_points_exempt(self):
        assert self.ids_at("src/repro/obs/cli.py") == []
        assert self.ids_at("src/repro/obs/__main__.py") == []

    def test_tests_and_benchmarks_exempt(self):
        assert self.ids_at("tests/core/test_devmgr.py") == []
        assert self.ids_at("benchmarks/test_failover.py") == []

    def test_shadowed_print_not_flagged(self):
        source = textwrap.dedent("""
            def render(printer):
                printer.print("fine: method call, not the builtin")
        """)
        assert lint_source(source, path="src/repro/core/devmgr.py") == []

    def test_noqa_suppresses(self):
        source = textwrap.dedent("""
            def debug(key):
                print("dbg", key)  # noqa: RPR007 - temporary debug aid
        """)
        assert lint_source(source, path="src/repro/core/devmgr.py") == []


class TestRPR008HotPathCopies:
    def test_sorted_in_marked_function_flagged(self):
        assert rule_ids("""
            def step(self):  # hot-path
                return sorted(self.queue)
        """) == ["RPR008"]

    def test_list_copy_in_marked_function_flagged(self):
        assert rule_ids("""
            # hot-path
            def reconcile(self, key):
                pods = list(self.cache)
                return pods
        """) == ["RPR008"]

    def test_api_relist_in_marked_function_flagged(self):
        out = findings("""
            def reconcile(self, key):  # hot-path
                return self.api.list("SharePod")
        """)
        assert [f.rule_id for f in out] == ["RPR008"]
        assert "self.api.list()" in out[0].message
        assert "DeviceViewIndex" in out[0].fixit

    def test_unmarked_function_clean(self):
        assert rule_ids("""
            def rebuild(self):
                return sorted(self.api.list("SharePod"), key=lambda s: s.name)
        """) == []

    def test_marked_function_without_copies_clean(self):
        assert rule_ids("""
            def usage(self, now, window):  # hot-path
                return sum(end - start for start, end in self.intervals)
        """) == []

    def test_comprehension_not_flagged(self):
        # A list *comprehension* builds the result it returns; only the
        # wholesale copy builtins and relists are the bug class.
        assert rule_ids("""
            def step(self):  # hot-path
                return [e for e in self.live if not e.cancelled]
        """) == []

    def test_noqa_suppresses(self):
        assert rule_ids("""
            def reconcile(self, key):  # hot-path
                return self.api.list("SharePod")  # noqa: RPR008 - reference mode
        """) == []

    def test_marker_above_def_only_counts_comment_lines(self):
        # The line above the def is code mentioning hot-path in a string,
        # not a marker comment: the function is not hot.
        assert rule_ids("""
            MODE = "# hot-path"
            def rebuild(self):
                return list(self.cache)
        """) == []


class TestRPR008SimKernel:
    """Inside ``src/repro/sim/**`` every kernel function is implicitly
    hot — no ``# hot-path`` marker required — and the fix-it points at
    the calendar queue's bucket index instead of the device-view index."""

    SIM = "src/repro/sim/fake.py"

    def at(self, source, path):
        return lint_source(textwrap.dedent(source), path=path)

    def test_unmarked_kernel_function_flagged(self):
        out = self.at("""
            def pop(self):
                live = sorted(self.pending)
                return live[0]
        """, self.SIM)
        assert [f.rule_id for f in out] == ["RPR008"]

    def test_fixit_points_at_bucket_index(self):
        out = self.at("""
            def peek(self):
                return list(self.buckets)[0]
        """, self.SIM)
        assert "calqueue.CalendarQueue" in out[0].fixit
        assert "bucket" in out[0].fixit

    def test_same_source_outside_sim_clean(self):
        # Without the marker the identical source is clean elsewhere:
        # the implicit classification is scoped to the kernel package.
        src = """
            def pop(self):
                return sorted(self.pending)[0]
        """
        assert self.at(src, "src/repro/core/devmgr.py") == []
        assert self.at(src, self.SIM) != []

    def test_dunder_methods_exempt(self):
        assert self.at("""
            class Condition:
                def __init__(self, events):
                    self._events = list(events)
                def __repr__(self):
                    return str(sorted(self._events))
        """, self.SIM) == []

    def test_property_accessors_exempt(self):
        assert self.at("""
            class Resource:
                @property
                def queue(self):
                    return list(self._queue)
        """, self.SIM) == []

    def test_marked_function_outside_sim_still_flagged(self):
        # The marker path is unchanged, with the generic fix-it.
        out = self.at("""
            def reconcile(self):  # hot-path
                return list(self.cache)
        """, "src/repro/core/devmgr.py")
        assert [f.rule_id for f in out] == ["RPR008"]
        assert "DeviceViewIndex" in out[0].fixit

    def test_nested_function_reported_once(self):
        # Both the outer and the nested function are kernel-hot; the
        # copy in the closure must yield exactly one finding.
        out = self.at("""
            def schedule(self):
                def drain():
                    return sorted(self.pending)
                return drain()
        """, self.SIM)
        assert [f.rule_id for f in out] == ["RPR008"]

    def test_noqa_suppresses(self):
        assert self.at("""
            def pop(self):
                return sorted(self.pending)[0]  # noqa: RPR008 - reference-mode drain
        """, self.SIM) == []


class TestRPR009UnguardedDelete:
    LIB = "src/repro/core/devmgr.py"

    def ids_at(self, source, path):
        return sorted(
            {f.rule_id for f in lint_source(textwrap.dedent(source), path=path)}
        )

    def test_raw_api_delete_flagged(self):
        out = lint_source(
            textwrap.dedent("""
                def teardown(self, key):
                    self.api.delete("Pod", key)
            """),
            path=self.LIB,
        )
        assert [f.rule_id for f in out] == ["RPR009"]
        assert "self.api.delete" in out[0].message
        assert "revocation" in out[0].fixit

    def test_fenced_handle_delete_flagged(self):
        assert self.ids_at("""
            def teardown(_api, name):
                _api.delete("SharePod", name)
        """, self.LIB) == ["RPR009"]

    def test_notfound_handler_in_scope_clean(self):
        assert self.ids_at("""
            def teardown(self, key):
                try:
                    self.api.delete("Pod", key)
                except NotFound:
                    pass
        """, self.LIB) == []

    def test_conflict_tuple_handler_clean(self):
        assert self.ids_at("""
            def teardown(self, key):
                try:
                    self.api.delete("Pod", key)
                except (NotFound, Conflict):
                    return False
        """, self.LIB) == []

    def test_try_delete_exempt(self):
        assert self.ids_at("""
            def teardown(self, key):
                return self.api.try_delete("Pod", key)
        """, self.LIB) == []

    def test_non_api_receiver_clean(self):
        assert self.ids_at("""
            def drop(self, key):
                self.cache.delete(key)
        """, self.LIB) == []

    def test_tests_and_benchmarks_exempt(self):
        source = """
            def test_delete(api):
                api.delete("Pod", "p0")
        """
        assert self.ids_at(source, "tests/cluster/test_apiserver.py") == []
        assert self.ids_at(source, "benchmarks/test_contention.py") == []

    def test_noqa_suppresses(self):
        assert self.ids_at("""
            def forward(self, kind, name):
                return self._api.delete(kind, name)  # noqa: RPR009 - proxy
        """, self.LIB) == []


class TestRPR010FederationWrites:
    FED = "src/repro/federation/placer.py"

    def ids_at(self, source, path):
        return sorted(
            {f.rule_id for f in lint_source(textwrap.dedent(source), path=path)}
        )

    def test_direct_member_submit_flagged(self):
        out = lint_source(
            textwrap.dedent("""
                def place(self, member, sharepod):
                    member.kubeshare.submit(sharepod)
            """),
            path=self.FED,
        )
        assert [f.rule_id for f in out] == ["RPR010"]
        assert "member.kubeshare.submit" in out[0].message
        assert "fenced_submit" in out[0].fixit

    def test_direct_api_create_flagged(self):
        assert self.ids_at("""
            def place(self, member, sharepod):
                member.api.create(sharepod)
        """, self.FED) == ["RPR010"]

    def test_direct_api_delete_flagged(self):
        # delete also trips RPR009 (unguarded) — both complaints are real.
        assert "RPR010" in self.ids_at("""
            def revoke(self, member, name):
                member.api.delete("SharePod", name)
        """, self.FED)

    def test_reads_clean(self):
        assert self.ids_at("""
            def probe(self, member):
                member.api.list("Node")
                return member.kubeshare.get("job0")
        """, self.FED) == []

    def test_fenced_and_retried_wrappers_clean(self):
        assert self.ids_at("""
            def place(self, member, record, build):
                yield from self.rpc.fenced_submit(member, record, build)
                yield from self.rpc.call(member.link, member.kubeshare.list)
        """, self.FED) == []

    def test_registry_mutation_clean(self):
        assert self.ids_at("""
            def fold(self, name, generation):
                return self.registry.complete(name, generation, "Completed")
        """, self.FED) == []

    def test_sanctioned_wrapper_modules_exempt(self):
        source = """
            def fenced_submit(self, member, sharepod):
                member.kubeshare.submit(sharepod)
        """
        assert self.ids_at(source, "src/repro/federation/rpc.py") == []
        assert self.ids_at(source, "src/repro/federation/records.py") == []

    def test_non_federation_code_exempt(self):
        assert self.ids_at("""
            def submit(self, sharepod):
                return self.api.create(sharepod)
        """, "src/repro/core/framework.py") == []

    def test_noqa_suppresses(self):
        assert self.ids_at("""
            def heartbeat(self, api, lease):
                api.create(lease)  # noqa: RPR010 - federation-local lease
        """, self.FED) == []


class TestHarness:
    def test_every_rule_has_metadata(self):
        for rule in ALL_RULES:
            assert rule.id.startswith("RPR")
            assert rule.title and rule.rationale and rule.fixit

    def test_file_pragma_disables_named_rule(self):
        assert rule_ids("""
            # repro-lint: disable=RPR004 - raw CAS semantics are the subject
            def bump(etcd, key):
                etcd.put(key, 1)
        """) == []

    def test_file_pragma_does_not_disable_other_rules(self):
        assert rule_ids("""
            # repro-lint: disable=RPR004 - narrow suppression
            import time
            t0 = time.time()
        """) == ["RPR001"]

    def test_findings_render_with_location_and_fixit(self):
        out = findings("""
            import time
            t0 = time.time()
        """)
        assert len(out) == 1
        rendered = out[0].render()
        assert "fixture.py" in rendered and "RPR001" in rendered and "fix:" in rendered

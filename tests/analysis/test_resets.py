"""The reset-hook registry and the hooks the repo registers with it."""


from repro.analysis.resets import (
    register_reset,
    registered,
    reset_all,
    unregister_reset,
)


class TestRegistry:
    def test_register_and_run(self):
        calls = []
        register_reset("test.registry.a", lambda: calls.append("a"))
        try:
            assert "test.registry.a" in registered()
            ran = reset_all()
            assert "test.registry.a" in ran
            assert calls == ["a"]
        finally:
            unregister_reset("test.registry.a")
        assert "test.registry.a" not in registered()

    def test_decorator_form(self):
        calls = []

        @register_reset("test.registry.deco")
        def _reset() -> None:
            calls.append("deco")

        try:
            reset_all()
            assert calls == ["deco"]
        finally:
            unregister_reset("test.registry.deco")

    def test_reregistration_replaces(self):
        calls = []
        register_reset("test.registry.dup", lambda: calls.append("old"))
        register_reset("test.registry.dup", lambda: calls.append("new"))
        try:
            reset_all()
            assert calls == ["new"]
        finally:
            unregister_reset("test.registry.dup")

    def test_hooks_run_in_sorted_order(self):
        calls = []
        register_reset("test.registry.z", lambda: calls.append("z"))
        register_reset("test.registry.a", lambda: calls.append("a"))
        try:
            reset_all()
            assert calls == sorted(calls)
        finally:
            unregister_reset("test.registry.z")
            unregister_reset("test.registry.a")


class TestRepoHooks:
    """Every known piece of process-global state is registered."""

    EXPECTED = (
        "repro.cluster.objects.uid_counter",
        "repro.core.vgpu.gpuid_counter",
        "repro.gpu.cuda.ptr_counter",
        "repro.gpu.standalone.container_counter",
    )

    def test_all_counters_registered(self):
        # Importing the package pulls in every module with global state.
        import repro.cluster.objects  # noqa: F401
        import repro.core.vgpu  # noqa: F401
        import repro.gpu.cuda  # noqa: F401
        import repro.gpu.standalone  # noqa: F401

        names = registered()
        for expected in self.EXPECTED:
            assert expected in names

    def test_gpuid_sequence_restarts(self):
        from repro.core.vgpu import new_gpuid

        reset_all()
        first = [new_gpuid() for _ in range(3)]
        reset_all()
        assert [new_gpuid() for _ in range(3)] == first

    def test_uid_sequence_restarts(self):
        from repro.cluster.objects import ObjectMeta

        reset_all()
        first = ObjectMeta(name="x").uid
        reset_all()
        assert ObjectMeta(name="x").uid == first

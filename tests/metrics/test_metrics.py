"""Unit tests for metric collection, analysis and reporting."""

import pytest

from repro.metrics.analysis import (
    completion_series,
    makespan,
    mean_job_duration,
    slowdown,
    throughput_jobs_per_minute,
)
from repro.metrics.collector import MetricsRegistry, TimeSeries
from repro.metrics.reporting import ascii_table, banner, format_percent, format_series
from repro.workloads.jobs import JobStats


def job(sub, start, end, failed=False):
    s = JobStats("j", submitted_at=sub, started_at=start, finished_at=end)
    s.failed = failed
    return s


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("x")
        ts.record(0, 1.0)
        ts.record(1, 2.0)
        assert len(ts) == 2
        assert ts.mean() == 1.5
        assert ts.max() == 2.0
        assert ts.last() == 2.0

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.record(5, 1.0)
        with pytest.raises(ValueError):
            ts.record(4, 1.0)

    def test_window_mean(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(t, float(t))
        assert ts.window_mean(0, 5) == pytest.approx(2.0)
        assert ts.window_mean(100, 200) == 0.0

    def test_window_mean_t1_exclusive(self):
        # [t0, t1): the sample at t1 belongs to the next window, so
        # adjacent windows partition the series with no double counting.
        ts = TimeSeries()
        for t in range(10):
            ts.record(t, float(t))
        assert ts.window_mean(0, 3) == pytest.approx(1.0)  # samples 0,1,2
        assert ts.window_mean(3, 6) == pytest.approx(4.0)  # samples 3,4,5
        assert ts.window_mean(9, 9.5) == pytest.approx(9.0)  # t0 inclusive

    def test_window_mean_rejects_inverted_window(self):
        ts = TimeSeries()
        ts.record(0, 1.0)
        with pytest.raises(ValueError):
            ts.window_mean(5.0, 2.0)

    def test_resample_buckets(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(t * 0.5, float(t))
        coarse = ts.resample(1.0)
        assert len(coarse) < len(ts)
        with pytest.raises(ValueError):
            ts.resample(0)

    def test_resample_final_partial_bucket_kept(self):
        # 0..10 s at step 4: buckets [0,4), [4,8) and the partial [8,10]
        # must all appear, the last averaged like any full one.
        ts = TimeSeries()
        for t in range(11):
            ts.record(float(t), float(t))
        coarse = ts.resample(4.0)
        assert coarse.times == [0.0, 4.0, 8.0]
        assert coarse.values == pytest.approx([1.5, 5.5, 9.0])

    def test_resample_sample_on_final_edge_opens_new_bucket(self):
        # end - start an exact multiple of step: the sample sitting on the
        # final edge opens its own bucket instead of merging backwards.
        ts = TimeSeries()
        for t in range(9):  # 0..8, step 4 → edges at 0, 4, 8
            ts.record(float(t), float(t))
        coarse = ts.resample(4.0)
        assert coarse.times == [0.0, 4.0, 8.0]
        assert coarse.values == pytest.approx([1.5, 5.5, 8.0])

    def test_resample_float_edges_stable(self):
        # 0.1 is not exactly representable; 3 * 0.1 / 0.3 floors to 0 with
        # naive float bucketing. Every edge-adjacent sample must still land
        # in the bucket it opens, and no sample may be dropped.
        ts = TimeSeries()
        n = 30
        for i in range(n):
            ts.record(i * 0.1, 1.0)
        coarse = ts.resample(0.3)
        assert len(coarse) == 10
        assert coarse.times == pytest.approx([i * 0.3 for i in range(10)])
        # All samples accounted for: every bucket holds exactly 3 samples
        # of value 1.0, so each mean is exactly 1.0.
        assert coarse.values == pytest.approx([1.0] * 10)

    def test_resample_empty(self):
        assert len(TimeSeries().resample(1.0)) == 0

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.mean() == 0.0
        assert ts.last() is None


class TestRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.incr("jobs")
        reg.incr("jobs", 2)
        assert reg.counter("jobs") == 3
        assert reg.counter("ghost") == 0

    def test_series_creation(self):
        reg = MetricsRegistry()
        reg.record("util", 0.0, 0.5)
        assert reg.timeseries("util").values == [0.5]


class TestAnalysis:
    def test_makespan(self):
        stats = [job(0, 1, 10), job(5, 6, 30)]
        assert makespan(stats) == 30.0

    def test_makespan_ignores_failed_and_unfinished(self):
        stats = [job(0, 1, 10), job(0, 1, 99, failed=True), JobStats("pending")]
        assert makespan(stats) == 10.0

    def test_throughput(self):
        stats = [job(0, 1, 30), job(0, 1, 60)]
        assert throughput_jobs_per_minute(stats) == pytest.approx(2.0)

    def test_throughput_empty(self):
        assert throughput_jobs_per_minute([]) == 0.0

    def test_completion_series(self):
        stats = [job(0, 0, 10), job(0, 0, 20), job(0, 0, 70)]
        series = completion_series(stats, step=60.0)
        assert series.values == [2.0, 1.0]

    def test_mean_duration(self):
        stats = [job(0, 0, 10), job(0, 10, 30)]
        assert mean_job_duration(stats) == pytest.approx(15.0)

    def test_slowdown(self):
        assert slowdown(job(0, 0, 15), 10.0) == pytest.approx(1.5)
        assert slowdown(JobStats("x"), 10.0) is None


class TestReporting:
    def test_ascii_table_contains_cells(self):
        table = ascii_table(["a", "bb"], [[1, 2.345], ["x", None]])
        assert "| a" in table
        assert "2.35" in table  # default precision 2
        assert "-" in table  # None rendering

    def test_bool_rendering(self):
        table = ascii_table(["f"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_title(self):
        assert ascii_table(["x"], [[1]], title="T1").startswith("T1")

    def test_format_series_downsamples(self):
        ts = TimeSeries("util")
        for t in range(100):
            ts.record(t, 0.5)
        text = format_series(ts, max_points=10)
        assert text.count("t=") == 10

    def test_format_series_empty(self):
        assert "(empty)" in format_series(TimeSeries("x"))

    def test_format_percent(self):
        assert format_percent(0.123) == "12.3%"

    def test_banner_width(self):
        assert len(banner("hi", width=40)) == 40

"""Tests for CSV/JSON result export."""

import json
from dataclasses import dataclass

from repro.metrics.collector import TimeSeries
from repro.metrics.export import (
    results_to_json,
    rows_to_csv,
    series_to_csv,
    write_text,
)


class TestCsv:
    def test_rows(self):
        text = rows_to_csv(["a", "b"], [[1, 2.5], ["x", None]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "x,"

    def test_series(self):
        ts = TimeSeries("util")
        ts.record(0.0, 0.5)
        ts.record(1.0, 0.7)
        text = series_to_csv(ts, value_name="util")
        assert text.splitlines()[0] == "time_s,util"
        assert "1.0,0.7" in text


class TestJson:
    def test_dataclass_and_series_roundtrip(self):
        @dataclass
        class Result:
            name: str
            series: TimeSeries

        ts = TimeSeries("x")
        ts.record(0, 1.0)
        payload = json.loads(results_to_json(Result("r", ts)))
        assert payload["name"] == "r"
        assert payload["series"]["values"] == [1.0]

    def test_nested_containers(self):
        payload = json.loads(results_to_json({"a": [1, (2, 3)], "b": {"c": None}}))
        assert payload == {"a": [1, [2, 3]], "b": {"c": None}}


class TestWrite:
    def test_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "out.csv"
        write_text(target, "x,y\n")
        assert target.read_text() == "x,y\n"

"""Smoke tests: every experiment module runs at reduced scale and
reproduces its paper-shape claim qualitatively."""

import pytest

from repro.experiments import fig5, fig6, fig7, fig8, fig10, fig11, fig12, fig13, table1


class TestFig5:
    def test_usage_tracks_request_rate(self):
        points = fig5.run(request_rates=(10.0, 30.0, 50.0), duration=30.0)
        usages = [p.measured_usage for p in points]
        assert usages == sorted(usages)  # monotone in rate
        for p in points:
            assert p.measured_usage == pytest.approx(p.expected_demand, abs=0.05)


class TestFig6:
    def test_staircase(self):
        result = fig6.run()
        # phase 1: A alone, capped at its limit 0.6
        assert result.window_mean("A", 60, 195) == pytest.approx(0.6, abs=0.04)
        # phase 2: fair residual split at 0.5 each
        assert result.window_mean("A", 260, 395) == pytest.approx(0.5, abs=0.04)
        assert result.window_mean("B", 260, 395) == pytest.approx(0.5, abs=0.04)
        # phase 3: everyone at their own request
        assert result.window_mean("A", 460, 640) == pytest.approx(0.3, abs=0.04)
        assert result.window_mean("B", 460, 640) == pytest.approx(0.4, abs=0.05)
        assert result.window_mean("C", 460, 640) == pytest.approx(0.3, abs=0.04)
        # C completes around the paper's 660 s
        assert result.finish_times["C"] == pytest.approx(660.0, abs=30.0)
        # after C: residual redistributed to A and B
        t = result.finish_times["C"] + 20
        assert result.window_mean("A", t, t + 40) > 0.4

    def test_full_gpu_utilization_after_second_arrival(self):
        result = fig6.run()
        total = sum(result.window_mean(j, 260, 395) for j in "ABC")
        assert total == pytest.approx(1.0, abs=0.06)


class TestFig7:
    def test_overhead_under_5_percent_at_30ms(self):
        points = fig7.run(quotas=(0.030, 0.100), steps=600)
        by_quota = {p.quota: p for p in points}
        assert by_quota[0.030].normalized_throughput >= 0.95
        assert by_quota[0.100].normalized_throughput >= 0.98

    def test_larger_quota_lower_overhead(self):
        points = fig7.run(quotas=(0.030, 0.080, 0.160), steps=600)
        tputs = [p.normalized_throughput for p in points]
        assert tputs == sorted(tputs)


class TestFig8:
    def test_kubeshare_wins_under_load(self):
        points = fig8.run_frequency_sweep(
            factors=(6,), n_jobs=40, nodes=2, gpus_per_node=4, seed=5
        )
        tput = {p.system: p.throughput for p in points}
        assert tput["KubeShare"] > 1.4 * tput["Kubernetes"]

    def test_no_loss_at_light_load(self):
        points = fig8.run_frequency_sweep(
            factors=(0.5,), n_jobs=20, nodes=2, gpus_per_node=4, seed=5
        )
        tput = {p.system: p.throughput for p in points}
        assert tput["KubeShare"] == pytest.approx(tput["Kubernetes"], rel=0.15)

    def test_gain_shrinks_with_demand(self):
        low = fig8.run_demand_mean_sweep(
            means=(0.2,), frequency_factor=8, n_jobs=40, nodes=2,
            gpus_per_node=4, seed=5,
        )
        high = fig8.run_demand_mean_sweep(
            means=(0.6,), frequency_factor=8, n_jobs=40, nodes=2,
            gpus_per_node=4, seed=5,
        )

        def gain(points):
            t = {p.system: p.throughput for p in points}
            return t["KubeShare"] / t["Kubernetes"]

        assert gain(low) > gain(high)
        assert gain(high) == pytest.approx(1.0, abs=0.25)


class TestFig10:
    def test_overhead_ratios(self):
        k8s = fig10._measure_native(4, 2, 4)
        without = fig10._measure_kubeshare(4, 2, 4, prewarm=True)
        with_ = fig10._measure_kubeshare(4, 2, 4, prewarm=False)
        assert 1.0 < without / k8s < 1.35  # the paper's ~15%
        assert 1.7 < with_ / k8s < 2.4  # the paper's ~2x


class TestFig11:
    def test_linear_scaling(self):
        # Wall-clock micro-timing is noisy under a loaded machine (e.g.
        # the bench suite running in parallel): use generous repeats and a
        # loose fit bound; the precise R² check lives in the benchmark.
        points = fig11.run(sizes=(20, 80, 320), repeats=40)
        times = [p.mean_seconds for p in points]
        assert times[2] > times[0]  # grows with N
        assert fig11.linear_fit_r2(points) > 0.7
        assert points[-1].mean_seconds < 0.4  # far under the paper's 400 ms


class TestFig12:
    def test_slowdown_shape(self):
        results = {r.combo: r for r in fig12.run()}
        assert results["A+A"].max_slowdown < 1.10
        assert results["A+B"].max_slowdown < 1.20
        assert 1.3 < results["B+B"].max_slowdown < 1.8


class TestFig13:
    def test_three_setting_shape(self):
        points = fig13.run(
            ratios=(0.0, 1.0), n_jobs=12, jobs_per_minute=40.0,
            nodes=1, gpus_per_node=4, seed=3,
        )
        by = {(p.setting, p.job_a_ratio): p.throughput for p in points}
        # all-B: unrestricted sharing beats anti-affinity (≈ Kubernetes)
        assert by[("KubeShare", 0.0)] > by[("KubeShare+anti-affinity", 0.0)]
        assert by[("KubeShare+anti-affinity", 0.0)] == pytest.approx(
            by[("Kubernetes", 0.0)], rel=0.25
        )
        # all-A: both KubeShare settings equal and beat Kubernetes
        assert by[("KubeShare", 1.0)] == pytest.approx(
            by[("KubeShare+anti-affinity", 1.0)], rel=0.05
        )
        assert by[("KubeShare", 1.0)] > 1.3 * by[("Kubernetes", 1.0)]


class TestTable1:
    def test_main_prints_matrix(self, capsys):
        table1.main()
        out = capsys.readouterr().out
        assert "KubeShare" in out
        assert "first class with GPU identity" in out

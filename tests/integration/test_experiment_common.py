"""Tests for the shared experiment harness (`repro.experiments.common`)."""

import pytest

from repro.baselines import KubeShareSystem, NativeKubernetes
from repro.experiments.common import default_requirements, run_inference_workload
from repro.workloads.generator import JobArrival, WorkloadGenerator


class TestDefaultRequirements:
    def test_request_equals_demand_with_headroom_limit(self):
        job = JobArrival("j", 0.0, demand=0.5, mem_fraction=0.25, duration=60.0)
        reqs = default_requirements(job)
        assert reqs.request == 0.5
        assert reqs.limit == pytest.approx(0.6)
        assert reqs.mem == 0.25

    def test_limit_capped_at_one(self):
        job = JobArrival("j", 0.0, demand=0.9, mem_fraction=0.25, duration=60.0)
        assert default_requirements(job).limit == 1.0


class TestRunner:
    def make_workload(self, n=6):
        return WorkloadGenerator(9).inference_workload(
            n_jobs=n, jobs_per_minute=60.0, demand_mean=0.3,
            demand_std=0.05, duration=15.0,
        )

    def test_completes_and_reports(self):
        result = run_inference_workload(
            NativeKubernetes, self.make_workload(), nodes=1, gpus_per_node=2
        )
        assert result.system == "Kubernetes"
        assert result.failed_jobs == 0
        assert len(result.stats) == 6
        assert result.throughput_jobs_per_min > 0
        assert result.makespan > 0
        assert result.sampler is None

    def test_sampler_attached_when_requested(self):
        result = run_inference_workload(
            NativeKubernetes, self.make_workload(4), nodes=1, gpus_per_node=2,
            sample_utilization=True, sample_interval=2.0,
        )
        assert result.sampler is not None
        series = result.sampler.average_utilization()
        assert len(series.times) > 0

    def test_anti_affinity_fn_reaches_kubeshare(self):
        result = run_inference_workload(
            KubeShareSystem, self.make_workload(2), nodes=1, gpus_per_node=2,
            anti_affinity_fn=lambda job: "spread",
        )
        system = result.extras["system"]
        ks = system.kubeshare
        uuids = {ks.get(h.name).status.gpu_uuid for h in system.handles}
        assert len(uuids) == 2  # the label forced separate devices

    def test_deterministic_given_seed(self):
        r1 = run_inference_workload(
            NativeKubernetes, self.make_workload(), nodes=1, gpus_per_node=2
        )
        r2 = run_inference_workload(
            NativeKubernetes, self.make_workload(), nodes=1, gpus_per_node=2
        )
        assert r1.makespan == r2.makespan
        assert r1.throughput_jobs_per_min == r2.throughput_jobs_per_min

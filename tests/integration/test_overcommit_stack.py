"""Memory over-commitment through the full KubeShare stack.

The swap extension is library-level; KubeShare-Sched still accounts
gpu_mem conservatively, so over-committed co-location is requested
explicitly by pinning the GPUID (first-class identity makes this possible
— §4.2's "explicitly identified and selected by the users").
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import PodPhase
from repro.core import KubeShare
from repro.gpu.frontend import ENV_MEM_OVERCOMMIT


def heavy_train(mem_fraction, work):
    def wl(ctx):
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        try:
            api.cu_mem_alloc(cu, int(mem_fraction * cu.device.memory))
            yield from api.cu_launch_kernel(cu, work)
        finally:
            api.cu_ctx_destroy(cu)

    return wl


@pytest.fixture
def stack(env):
    cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
    ks = KubeShare(cluster, isolation="token").start()
    return cluster, ks


def submit_overcommit(ks, name, gpu_id=None, mem=0.7, work=2.0):
    sp = ks.make_sharepod(
        name, gpu_request=0.4, gpu_limit=1.0, gpu_mem=mem,
        workload=heavy_train(mem, work), gpu_id=gpu_id,
    )
    sp.spec.pod_spec.containers[0].env[ENV_MEM_OVERCOMMIT] = "1"
    ks.submit(sp)


class TestOvercommitThroughKubeShare:
    def test_pinned_overcommit_pair_completes(self, env, stack):
        cluster, ks = stack
        submit_overcommit(ks, "first")
        wait = env.process(ks.wait_for_phase("first", [PodPhase.RUNNING]))
        env.run(until=wait)
        gpuid = ks.get("first").spec.gpu_id
        # Explicitly co-locate a second 70%-memory job on the same vGPU.
        submit_overcommit(ks, "second", gpu_id=gpuid)
        done = env.process(ks.wait_all_terminal(["first", "second"]))
        env.run(until=done)
        assert ks.get("first").status.phase is PodPhase.SUCCEEDED
        assert ks.get("second").status.phase is PodPhase.SUCCEEDED
        assert ks.get("second").status.gpu_uuid == ks.get("first").status.gpu_uuid
        # real swap traffic occurred on that node
        node = cluster.nodes[0]
        gpu = cluster.gpu_by_uuid(ks.get("first").status.gpu_uuid)
        assert node.swap.stats(gpu)["bytes_swapped"] > 0

    def test_without_extension_second_job_ooms(self, env, stack):
        cluster, ks = stack
        sp = ks.make_sharepod(
            "first", gpu_request=0.4, gpu_limit=1.0, gpu_mem=0.7,
            workload=heavy_train(0.7, 5.0),
        )
        ks.submit(sp)
        wait = env.process(ks.wait_for_phase("first", [PodPhase.RUNNING]))
        env.run(until=wait)
        gpuid = ks.get("first").spec.gpu_id
        sp2 = ks.make_sharepod(
            "second", gpu_request=0.4, gpu_limit=1.0, gpu_mem=0.7,
            workload=heavy_train(0.7, 1.0), gpu_id=gpuid,
        )
        ks.submit(sp2)
        done = env.process(ks.wait_all_terminal(["first", "second"]))
        env.run(until=done)
        assert ks.get("second").status.phase is PodPhase.FAILED
        assert "OutOfMemory" in ks.get("second").status.message

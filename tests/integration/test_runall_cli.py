"""Smoke tests for the runall CLI and example scripts' importability."""

import subprocess
import sys

import pytest

from repro.experiments.runall import EXPERIMENTS, main


class TestRunAllCli:
    def test_experiment_registry_covers_every_module(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13",
        }

    def test_single_fast_experiment(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "client req/s" in out

    def test_quick_flag_accepted(self, capsys):
        assert main(["--quick", "table1"]) == 0
        assert "KubeShare" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])


class TestExamplesRun:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "interference_mitigation.py", "replicated_inference.py"],
    )
    def test_example_exits_cleanly(self, script):
        result = subprocess.run(
            [sys.executable, f"examples/{script}"],
            capture_output=True,
            text=True,
            timeout=300,
            cwd="/root/repo",
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()

"""Unit tests for the Figure 3 fragmentation experiment."""

import pytest

from repro.experiments import fig3


class TestRoundRobin:
    def test_spreads_in_arrival_order(self):
        result = fig3.round_robin_assign((0.5, 0.4, 0.3), n_gpus=2)
        assert result.per_gpu == {"GPU0": pytest.approx(0.8), "GPU1": 0.4}

    def test_overcommits_default_demands(self):
        result = fig3.round_robin_assign(fig3.DEFAULT_DEMANDS)
        assert result.overcommitted_gpus >= 1
        assert result.active_gpus == 4


class TestAlgorithm1Assignment:
    def test_never_overcommits(self):
        result = fig3.algorithm1_assign(fig3.DEFAULT_DEMANDS)
        assert result.overcommitted_gpus == 0
        assert result.max_commitment <= 1.0 + 1e-9

    def test_uses_fewer_gpus_than_round_robin(self):
        rr, a1 = fig3.run()
        assert a1.active_gpus < rr.active_gpus

    def test_conserves_total_demand(self):
        rr, a1 = fig3.run()
        total = sum(fig3.DEFAULT_DEMANDS)
        assert sum(rr.per_gpu.values()) == pytest.approx(total)
        assert sum(a1.per_gpu.values()) == pytest.approx(total)

    def test_main_prints_table(self, capsys):
        fig3.main()
        out = capsys.readouterr().out
        assert "round-robin" in out and "Algorithm 1" in out

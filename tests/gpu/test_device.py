"""Unit tests for the GPU device: memory ledger + fluid compute engine."""

import pytest

from repro.gpu.device import GPUDevice, GpuOutOfMemory, V100_MEMORY
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return GPUDevice(env, uuid="GPU-t", node_name="n0")


class TestMemoryLedger:
    def test_alloc_and_free(self, gpu):
        gpu.alloc_memory("c1", 4 * 2**30)
        assert gpu.memory_used == 4 * 2**30
        gpu.free_memory("c1", 4 * 2**30)
        assert gpu.memory_used == 0

    def test_oom_on_physical_exhaustion(self, gpu):
        gpu.alloc_memory("c1", V100_MEMORY)
        with pytest.raises(GpuOutOfMemory):
            gpu.alloc_memory("c2", 1)

    def test_free_all_for_owner(self, gpu):
        gpu.alloc_memory("c1", 100)
        gpu.alloc_memory("c1", 200)
        gpu.free_memory("c1")
        assert gpu.memory_of("c1") == 0

    def test_overfree_raises(self, gpu):
        gpu.alloc_memory("c1", 100)
        with pytest.raises(ValueError):
            gpu.free_memory("c1", 200)

    def test_negative_alloc_rejected(self, gpu):
        with pytest.raises(ValueError):
            gpu.alloc_memory("c1", -5)

    def test_per_owner_accounting(self, gpu):
        gpu.alloc_memory("a", 10)
        gpu.alloc_memory("b", 20)
        assert gpu.memory_of("a") == 10
        assert gpu.memory_of("b") == 20
        assert gpu.memory_free == gpu.memory - 30


class TestComputeEngine:
    def test_single_session_runs_at_full_rate(self, env, gpu):
        s = gpu.open_session("job")

        def proc():
            yield from s.run(5.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(5.0)

    def test_limit_caps_rate(self, env, gpu):
        s = gpu.open_session("job", limit=0.5)

        def proc():
            yield from s.run(5.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(10.0)

    def test_demand_caps_rate(self, env, gpu):
        s = gpu.open_session("job")

        def proc():
            yield from s.run(3.0, demand=0.3)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(10.0)

    def test_two_saturating_sessions_share_fairly(self, env, gpu):
        done = {}

        def proc(name):
            s = gpu.open_session(name)
            yield from s.run(5.0)
            done[name] = env.now
            s.close()

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # both at 0.5 until first completes; total work 10 => both ~10.0
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_departure_speeds_up_remaining(self, env, gpu):
        done = {}

        def proc(name, work):
            s = gpu.open_session(name)
            yield from s.run(work)
            done[name] = env.now
            s.close()

        env.process(proc("small", 1.0))
        env.process(proc("big", 5.0))
        env.run()
        # share 0.5 until small finishes at t=2, then big runs alone:
        # big did 1.0 by t=2, then 4.0 more at rate 1 => t=6.
        assert done["small"] == pytest.approx(2.0)
        assert done["big"] == pytest.approx(6.0)

    def test_request_guarantee_respected(self, env, gpu):
        done = {}

        def proc(name, request, limit, work):
            s = gpu.open_session(name, request=request, limit=limit)
            yield from s.run(work)
            done[name] = env.now
            s.close()

        # guaranteed 0.7 vs best-effort: guaranteed job gets its floor
        env.process(proc("vip", 0.7, 1.0, 7.0))
        env.process(proc("be", 0.0, 1.0, 10.0))
        env.run()
        assert done["vip"] == pytest.approx(10.0)

    def test_isolated_sessions_escape_contention(self, env):
        gpu = GPUDevice(env, "GPU-c", "n0", contention_per_peer=0.25)
        done = {}

        def proc(name, isolated):
            s = gpu.open_session(name, isolated=isolated)
            yield from s.run(2.0)
            done[name] = env.now
            s.close()

        env.process(proc("iso", True))
        env.process(proc("raw", False))
        env.run()
        # both get 0.5 shares but the unisolated one pays the 1.25 factor
        assert done["iso"] < done["raw"]

    def test_unisolated_overcommit_contention(self, env):
        gpu = GPUDevice(env, "GPU-c", "n0", contention_per_peer=0.2)
        done = {}

        def proc(name):
            s = gpu.open_session(name, isolated=False)
            yield from s.run(3.0)
            done[name] = env.now
            s.close()

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # fair share 0.5, contention eff = 1/1.2 => rate 0.4167 => ~7.2s+
        assert done["a"] > 6.0 + 1.0

    def test_closed_session_rejects_run(self, env, gpu):
        s = gpu.open_session("x")
        s.close()
        with pytest.raises(RuntimeError):
            next(iter(s.run(1.0)))

    def test_param_validation(self, env, gpu):
        with pytest.raises(ValueError):
            gpu.open_session("x", request=1.5)
        with pytest.raises(ValueError):
            gpu.open_session("x", limit=0.0)

    def test_set_params_rebalances(self, env, gpu):
        done = {}

        def throttled():
            s = gpu.open_session("t", limit=0.25)
            env.process(adjuster(s))
            yield from s.run(2.0)
            done["t"] = env.now

        def adjuster(s):
            yield env.timeout(4.0)  # 1.0 work done at rate 0.25
            s.set_params(limit=1.0)

        env.process(throttled())
        env.run()
        assert done["t"] == pytest.approx(5.0)


class TestUtilizationAccounting:
    def test_busy_time_integrates_rates(self, env, gpu):
        s = gpu.open_session("job", limit=0.5)

        def proc():
            yield from s.run(2.0)  # 4 seconds at 0.5

        env.process(proc())
        env.run()
        assert gpu.busy_time() == pytest.approx(2.0)
        assert env.now == pytest.approx(4.0)

    def test_granted_time_per_session(self, env, gpu):
        s1 = gpu.open_session("a")
        s2 = gpu.open_session("b")

        def proc(s, work):
            yield from s.run(work)

        env.process(proc(s1, 1.0))
        env.process(proc(s2, 1.0))
        env.run()
        assert s1.granted_time() == pytest.approx(1.0)
        assert s2.granted_time() == pytest.approx(1.0)

    def test_utilization_since(self, env, gpu):
        s = gpu.open_session("job")
        t0, b0 = env.now, gpu.busy_time()

        def proc():
            yield from s.run(3.0)
            yield env.timeout(3.0)  # idle second half

        env.process(proc())
        env.run()
        assert gpu.utilization_since(t0, b0) == pytest.approx(0.5)

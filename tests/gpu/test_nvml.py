"""Unit tests for the NVML-style utilization sampler."""

import pytest

from repro.gpu.device import GPUDevice
from repro.gpu.nvml import NVMLSampler
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def busy(env, gpu, work, delay=0.0):
    def proc():
        if delay:
            yield env.timeout(delay)
        s = gpu.open_session("w")
        yield from s.run(work)
        s.close()

    env.process(proc())


class TestSampler:
    def test_interval_validation(self, env):
        with pytest.raises(ValueError):
            NVMLSampler(env, [], interval=0)

    def test_idle_device_samples_zero(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=5)
        series = sampler.device_utilization("g0")
        assert series.values == [0.0] * len(series.values)

    def test_busy_device_samples_one(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        busy(env, gpu, work=5.0)
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=4)
        series = sampler.device_utilization("g0")
        assert all(v == pytest.approx(1.0) for v in series.values)

    def test_partial_utilization(self, env):
        gpu = GPUDevice(env, "g0", "n0")

        def proc():
            s = gpu.open_session("w", limit=0.5)
            yield from s.run(5.0)
            s.close()

        env.process(proc())
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=5)
        assert sampler.device_utilization("g0").mean() == pytest.approx(0.5)

    def test_average_utilization_across_devices(self, env):
        g0 = GPUDevice(env, "g0", "n0")
        g1 = GPUDevice(env, "g1", "n0")
        busy(env, g0, work=10.0)
        sampler = NVMLSampler(env, [g0, g1], interval=1.0).start()
        env.run(until=5)
        assert sampler.average_utilization().values[-1] == pytest.approx(0.5)
        assert sampler.average_utilization(active_only=True).values[-1] == pytest.approx(1.0)

    def test_active_gpu_count(self, env):
        g0 = GPUDevice(env, "g0", "n0")
        g1 = GPUDevice(env, "g1", "n0")
        busy(env, g0, work=10.0)
        busy(env, g1, work=2.0)
        sampler = NVMLSampler(env, [g0, g1], interval=1.0).start()
        env.run(until=6)
        counts = sampler.active_gpus().values
        assert counts[0] == 2.0  # both busy in the first interval
        assert counts[-1] == 1.0  # g1 finished at t=2

    def test_stop_halts_sampling(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=2)
        sampler.stop()
        n = len(sampler.device_utilization("g0").values)
        env.run(until=10)
        assert len(sampler.device_utilization("g0").values) == n

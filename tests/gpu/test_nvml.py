"""Unit tests for the NVML-style utilization sampler."""

import pytest

from repro.gpu.device import GPUDevice
from repro.gpu.nvml import NVMLSampler
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def busy(env, gpu, work, delay=0.0):
    def proc():
        if delay:
            yield env.timeout(delay)
        s = gpu.open_session("w")
        yield from s.run(work)
        s.close()

    env.process(proc())


class TestSampler:
    def test_interval_validation(self, env):
        with pytest.raises(ValueError):
            NVMLSampler(env, [], interval=0)

    def test_idle_device_samples_zero(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=5)
        series = sampler.device_utilization("g0")
        assert series.values == [0.0] * len(series.values)

    def test_busy_device_samples_one(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        busy(env, gpu, work=5.0)
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=4)
        series = sampler.device_utilization("g0")
        assert all(v == pytest.approx(1.0) for v in series.values)

    def test_partial_utilization(self, env):
        gpu = GPUDevice(env, "g0", "n0")

        def proc():
            s = gpu.open_session("w", limit=0.5)
            yield from s.run(5.0)
            s.close()

        env.process(proc())
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=5)
        assert sampler.device_utilization("g0").mean() == pytest.approx(0.5)

    def test_average_utilization_across_devices(self, env):
        g0 = GPUDevice(env, "g0", "n0")
        g1 = GPUDevice(env, "g1", "n0")
        busy(env, g0, work=10.0)
        sampler = NVMLSampler(env, [g0, g1], interval=1.0).start()
        env.run(until=5)
        assert sampler.average_utilization().values[-1] == pytest.approx(0.5)
        assert sampler.average_utilization(active_only=True).values[-1] == pytest.approx(1.0)

    def test_active_gpu_count(self, env):
        g0 = GPUDevice(env, "g0", "n0")
        g1 = GPUDevice(env, "g1", "n0")
        busy(env, g0, work=10.0)
        busy(env, g1, work=2.0)
        sampler = NVMLSampler(env, [g0, g1], interval=1.0).start()
        env.run(until=6)
        counts = sampler.active_gpus().values
        assert counts[0] == 2.0  # both busy in the first interval
        assert counts[-1] == 1.0  # g1 finished at t=2

    def test_stop_halts_sampling(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=2)
        sampler.stop()
        n = len(sampler.device_utilization("g0").values)
        env.run(until=10)
        assert len(sampler.device_utilization("g0").values) == n


def busy_tolerant(env, gpu, work):
    """Like ``busy`` but survives the device dying under it."""

    def proc():
        from repro.gpu.device import DeviceLostError

        s = gpu.open_session("w")
        try:
            yield from s.run(work)
        except DeviceLostError:
            return
        finally:
            s.close()

    env.process(proc())


class TestFailedDevice:
    """NVML_ERROR_GPU_IS_LOST analogue: failed reads never raise."""

    def test_on_failure_validation(self, env):
        with pytest.raises(ValueError):
            NVMLSampler(env, [], on_failure="raise")

    def test_mid_run_failure_leaves_gap(self, env):
        gpu = GPUDevice(env, "g0", "n0")

        def chaos():
            yield env.timeout(3.5)
            gpu.fail("uncorrectable ECC error")

        env.process(chaos())
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=8)  # keeps sampling through the failure, no raise
        series = sampler.device_utilization("g0")
        assert series.times == [1.0, 2.0, 3.0]  # samples stop at the fault
        assert sampler.gaps["g0"] == 5  # t=4..8 all failed reads

    def test_mid_run_failure_zero_policy(self, env):
        gpu = GPUDevice(env, "g0", "n0")
        busy_tolerant(env, gpu, work=10.0)

        def chaos():
            yield env.timeout(2.5)
            gpu.fail()

        env.process(chaos())
        sampler = NVMLSampler(env, [gpu], interval=1.0, on_failure="zero").start()
        env.run(until=5)
        series = sampler.device_utilization("g0")
        assert series.times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert series.values[-1] == 0.0 and series.values[-2] == 0.0

    def test_recovery_resumes_without_outage_smear(self, env):
        gpu = GPUDevice(env, "g0", "n0")

        def chaos():
            yield env.timeout(2.5)
            gpu.fail()
            yield env.timeout(3.0)
            gpu.recover()

        env.process(chaos())

        def worker():
            # busy before the fault; busy again after recovery
            s = gpu.open_session("w")
            try:
                yield from s.run(10.0)
            except Exception:
                pass
            yield env.timeout(3.5)  # device recovers at t=5.5
            s2 = gpu.open_session("w2")
            yield from s2.run(3.0)
            s2.close()

        env.process(worker())
        sampler = NVMLSampler(env, [gpu], interval=1.0).start()
        env.run(until=9)
        series = sampler.device_utilization("g0")
        # The first post-recovery read (t=6) only re-seeds the baseline;
        # real samples resume at t=7 and never exceed one interval's work.
        assert 6.0 not in series.times
        assert all(v <= 1.0 for v in series.values)
        assert series.values[-1] == pytest.approx(1.0)

    def test_aggregates_tolerate_gaps(self, env):
        g0 = GPUDevice(env, "g0", "n0")
        g1 = GPUDevice(env, "g1", "n0")
        busy(env, g0, work=10.0)
        busy_tolerant(env, g1, work=10.0)

        def chaos():
            yield env.timeout(2.5)
            g1.fail()

        env.process(chaos())
        sampler = NVMLSampler(env, [g0, g1], interval=1.0).start()
        env.run(until=6)
        # g1's series is shorter; the aggregate views must not truncate
        # g0's samples to match (the old min-length alignment bug).
        avg = sampler.average_utilization()
        assert avg.times == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert avg.values[0] == pytest.approx(1.0)  # both busy
        assert avg.values[-1] == pytest.approx(1.0)  # only g0 reports
        counts = sampler.active_gpus().values
        assert counts[0] == 2.0
        assert counts[-1] == 1.0  # the failed device is simply not active

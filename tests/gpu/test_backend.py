"""Unit tests for the token backend daemon (§4.5 token scheduling)."""

import pytest

from repro.gpu.backend import TokenBackend
from repro.sim import Environment

DEV = "GPU-0"


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def backend(env):
    return TokenBackend(env, quota=0.1, window=1.0, handoff_overhead=0.0)


class TestValidation:
    def test_bad_quota(self, env):
        with pytest.raises(ValueError):
            TokenBackend(env, quota=0)

    def test_window_smaller_than_quota(self, env):
        with pytest.raises(ValueError):
            TokenBackend(env, quota=0.1, window=0.05)

    def test_register_validates_ranges(self, backend):
        with pytest.raises(ValueError):
            backend.register(DEV, "c", request=-0.1, limit=0.5)
        with pytest.raises(ValueError):
            backend.register(DEV, "c", request=0.1, limit=0.0)

    def test_acquire_requires_registration(self, env, backend):
        def proc():
            yield from backend.acquire(DEV, "ghost")

        env.process(proc())
        with pytest.raises(KeyError):
            env.run()


class TestTokenProtocol:
    def test_single_client_gets_token_immediately(self, env, backend):
        backend.register(DEV, "c1", 0.5, 1.0)

        def proc():
            token = yield from backend.acquire(DEV, "c1")
            return (env.now, token.quota)

        p = env.process(proc())
        env.run()
        grant_time, quota = p.value
        # handoff_overhead=0 still pays the minimal decision delay (quota/1000)
        assert grant_time == pytest.approx(0.0, abs=backend.quota * 1e-3 + 1e-9)
        assert quota == 0.1

    def test_token_expires_after_quota(self, env, backend):
        backend.register(DEV, "c1", 0.5, 1.0)
        tokens = {}

        def proc():
            token = yield from backend.acquire(DEV, "c1")
            tokens["t"] = token
            yield env.timeout(0.2)

        env.process(proc())
        env.run()
        assert not tokens["t"].valid

    def test_release_passes_token_to_waiter(self, env, backend):
        backend.register(DEV, "a", 0.5, 1.0)
        backend.register(DEV, "b", 0.5, 1.0)
        times = {}

        def holder():
            token = yield from backend.acquire(DEV, "a")
            yield env.timeout(0.03)
            backend.release(token)

        def waiter():
            yield env.timeout(0.01)
            yield from backend.acquire(DEV, "b")
            times["b"] = env.now

        env.process(holder())
        env.process(waiter())
        env.run()
        # two minimal decision delays: the holder's grant and the re-grant
        assert times["b"] == pytest.approx(0.03, abs=2 * backend.quota * 1e-3 + 1e-6)

    def test_handoff_overhead_delays_grant(self, env):
        backend = TokenBackend(env, quota=0.1, handoff_overhead=0.005)
        backend.register(DEV, "c1", 0.5, 1.0)

        def proc():
            yield from backend.acquire(DEV, "c1")
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(0.005)

    def test_stats_count_grants(self, env, backend):
        backend.register(DEV, "c1", 0.5, 1.0)

        def proc():
            for _ in range(3):
                token = yield from backend.acquire(DEV, "c1")
                yield env.timeout(0.02)
                backend.release(token)

        env.process(proc())
        env.run()
        assert backend.stats(DEV)["grants"] == 3

    def test_unregister_removes_queued_requests(self, env, backend):
        backend.register(DEV, "a", 0.5, 1.0)
        backend.register(DEV, "b", 0.5, 1.0)

        def holder():
            yield from backend.acquire(DEV, "a")
            yield env.timeout(0.01)
            backend.unregister(DEV, "b")

        def doomed():
            yield from backend.acquire(DEV, "b")

        env.process(holder())
        env.process(doomed())
        env.run(until=1.0)
        assert backend.stats(DEV)["queued"] == 0


class TestSchedulingPolicy:
    def test_below_request_client_prioritized(self, env, backend):
        """Step 2: the client farthest below its gpu_request goes first."""
        backend.register(DEV, "low", request=0.8, limit=1.0)
        backend.register(DEV, "high", request=0.1, limit=1.0)
        order = []

        def holder():
            token = yield from backend.acquire(DEV, "high")
            yield env.timeout(0.05)
            # both queue now; on release, 'low' must win (0.8 - 0 > 0.1 - x)
            backend.release(token)

        def client(name, delay):
            yield env.timeout(delay)
            yield from backend.acquire(DEV, name)
            order.append(name)

        env.process(holder())
        env.process(client("high", 0.01))
        env.process(client("low", 0.02))
        env.run(until=0.5)
        assert order[0] == "low"

    def test_limit_filter_blocks_overuser(self, env):
        """Step 1: a client at its gpu_limit must wait for its usage to
        decay below the limit."""
        backend = TokenBackend(env, quota=0.1, window=0.5, handoff_overhead=0.0)
        backend.register(DEV, "capped", request=0.1, limit=0.3)
        grants = []

        def proc():
            for _ in range(4):
                token = yield from backend.acquire(DEV, "capped")
                grants.append(env.now)
                yield env.timeout(token.remaining(env.now))

        env.process(proc())
        env.run(until=3.0)
        # after the first two grants usage=0.2/0.5=0.4 > 0.3 ⇒ throttled;
        # further grants spread out instead of back-to-back.
        assert grants[1] - grants[0] == pytest.approx(0.1, abs=0.03)
        assert grants[2] - grants[1] > 0.15

    def test_usage_tracking_sliding_window(self, env, backend):
        backend.register(DEV, "c1", 0.5, 1.0)

        def proc():
            token = yield from backend.acquire(DEV, "c1")
            yield env.timeout(token.remaining(env.now))  # hold 0.1 of 1.0 win
            yield env.timeout(0.1)

        env.process(proc())
        env.run()
        usage = backend.usage(DEV, "c1")
        assert usage == pytest.approx(0.1, abs=0.02)

    def test_usage_decays_to_zero(self, env, backend):
        backend.register(DEV, "c1", 0.5, 1.0)

        def proc():
            token = yield from backend.acquire(DEV, "c1")
            yield env.timeout(0.05)
            backend.release(token)
            yield env.timeout(2.0)  # window is 1.0

        env.process(proc())
        env.run()
        assert backend.usage(DEV, "c1") == pytest.approx(0.0, abs=1e-9)

    def test_residual_shared_by_lowest_usage(self, env):
        """Step 3: everyone at their request ⇒ lowest usage wins; the
        long-run shares converge to the elastic allocation."""
        backend = TokenBackend(env, quota=0.05, window=1.0, handoff_overhead=0.0)
        backend.register(DEV, "a", request=0.2, limit=1.0)
        backend.register(DEV, "b", request=0.2, limit=1.0)
        held = {"a": 0.0, "b": 0.0}

        def hog(name):
            while True:
                token = yield from backend.acquire(DEV, name)
                hold = token.remaining(env.now)
                yield env.timeout(hold)
                held[name] += hold

        env.process(hog("a"))
        env.process(hog("b"))
        env.run(until=20.0)
        assert held["a"] == pytest.approx(held["b"], rel=0.05)
        assert held["a"] + held["b"] == pytest.approx(20.0, rel=0.02)


class TestFailureAndRestart:
    """Failure semantics: holder churn, dead devices, daemon restarts."""

    def test_unregister_mid_hold_invalidates_token(self, env, backend):
        """Regression: the holder unregistering mid-hold must invalidate
        its token immediately — otherwise the device stays dead until the
        quota expires and the expiry path touches a popped record."""
        backend.register(DEV, "c1", 0.5, 1.0)
        backend.register(DEV, "c2", 0.5, 1.0)
        grant_times = {}

        def holder():
            token = yield from backend.acquire(DEV, "c1")
            grant_times["c1"] = env.now
            yield env.timeout(0.05)  # quota is 0.1: mid-hold
            backend.unregister(DEV, "c1")
            assert not token.valid

        def waiter():
            yield from backend.acquire(DEV, "c2")
            grant_times["c2"] = env.now

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        # c2 got the token right after the unregister, not at quota expiry.
        assert grant_times["c2"] == pytest.approx(0.05, abs=0.01)

    def test_expiry_after_mid_hold_reregistration_keeps_record_clean(
        self, env, backend
    ):
        """Regression: unregister + re-register while the original grant's
        expiry timer is still pending must not credit the *fresh* record
        with the dead hold (the expiry path re-fetches the record)."""
        backend.register(DEV, "c1", 0.5, 1.0)

        def churn():
            yield from backend.acquire(DEV, "c1")
            yield env.timeout(0.05)
            backend.unregister(DEV, "c1")
            fresh = backend.register(DEV, "c1", 0.5, 1.0)
            yield env.timeout(0.5)  # well past the original expiry
            assert fresh.hold_start is None
            assert list(fresh.intervals) == []

        env.process(churn())
        env.run()
        assert backend.usage(DEV, "c1") == pytest.approx(0.0, abs=1e-9)

    def test_fail_device_fails_queued_grants(self, env, backend):
        from repro.gpu.device import DeviceLostError

        backend.register(DEV, "c1", 0.5, 1.0)
        backend.register(DEV, "c2", 0.5, 1.0)
        outcomes = {}

        def holder():
            yield from backend.acquire(DEV, "c1")
            yield env.timeout(10.0)

        def waiter():
            try:
                yield from backend.acquire(DEV, "c2")
                outcomes["c2"] = "granted"
            except DeviceLostError:
                outcomes["c2"] = "lost"

        env.process(holder())
        env.process(waiter())
        env.run(until=0.02)
        backend.fail_device(DEV, reason="XID 79")
        env.run(until=1.0)
        assert outcomes["c2"] == "lost"

    def test_acquire_on_dead_device_raises_until_revived(self, env, backend):
        from repro.gpu.device import DeviceLostError

        backend.register(DEV, "c1", 0.5, 1.0)
        backend.fail_device(DEV)

        def ask():
            yield from backend.acquire(DEV, "c1")

        with pytest.raises(DeviceLostError):
            env.process(ask()).env.run()

        backend.revive_device(DEV)
        backend.register(DEV, "c1", 0.5, 1.0)

        def ask_again():
            token = yield from backend.acquire(DEV, "c1")
            return token.valid

        p = env.process(ask_again())
        env.run(until=p)
        assert p.value is True

    def test_restart_drops_state_and_bumps_epoch(self, env, backend):
        from repro.gpu.backend import TokenBackendUnavailable

        backend.register(DEV, "c1", 0.5, 1.0)
        backend.register(DEV, "c2", 0.5, 1.0)
        outcomes = {}

        def holder():
            yield from backend.acquire(DEV, "c1")
            yield env.timeout(10.0)

        def waiter():
            try:
                yield from backend.acquire(DEV, "c2")
                outcomes["c2"] = "granted"
            except TokenBackendUnavailable:
                outcomes["c2"] = "dropped"

        env.process(holder())
        env.process(waiter())
        env.run(until=0.02)
        assert backend.epoch == 0
        backend.restart()
        env.run(until=0.5)
        assert outcomes["c2"] == "dropped"
        assert backend.epoch == 1
        assert backend.restarts_total == 1

        # Registrations were lost: acquiring without re-registering fails.
        def stale():
            yield from backend.acquire(DEV, "c1")

        env.process(stale())
        with pytest.raises(KeyError):
            env.run()

    def test_restart_mid_handoff_is_harmless(self, env):
        """A grant decision in flight across restart() must not blow up on
        the cleared device table."""
        backend = TokenBackend(env, quota=0.1, window=1.0, handoff_overhead=0.01)
        backend.register(DEV, "c1", 0.5, 1.0)
        from repro.gpu.backend import TokenBackendUnavailable

        def ask():
            try:
                yield from backend.acquire(DEV, "c1")
            except TokenBackendUnavailable:
                pass

        env.process(ask())
        env.run(until=0.005)  # inside the 10 ms handoff window
        backend.restart()
        env.run(until=1.0)  # the in-flight _grant resumes and finds no state

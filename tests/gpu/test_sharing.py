"""Unit + property tests for the elastic share solver (§4.5 steady state)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.sharing import ShareEntry, elastic_shares, elastic_shares_py


class TestValidation:
    def test_request_out_of_range(self):
        with pytest.raises(ValueError):
            ShareEntry(request=1.5, cap=1.0)
        with pytest.raises(ValueError):
            ShareEntry(request=-0.1, cap=1.0)

    def test_negative_cap(self):
        with pytest.raises(ValueError):
            ShareEntry(request=0.1, cap=-0.1)

    def test_cap_clipped_to_one(self):
        assert ShareEntry(request=0.0, cap=2.0).cap == 1.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            elastic_shares([ShareEntry(0.1, 0.5)], capacity=0.0)

    def test_empty(self):
        assert elastic_shares([]).size == 0


class TestPaperScenarios:
    """The Figure 6 staircase, computed in closed form."""

    def test_single_job_capped_by_limit(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6)])
        assert alloc == pytest.approx([0.6])

    def test_two_jobs_split_residual_fairly(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6)])
        assert alloc == pytest.approx([0.5, 0.5])

    def test_three_jobs_each_at_request(self):
        alloc = elastic_shares(
            [ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6), ShareEntry(0.3, 0.5)]
        )
        assert alloc == pytest.approx([0.3, 0.4, 0.3])

    def test_job_departure_redistributes(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6)])
        assert alloc.sum() == pytest.approx(1.0)

    def test_idle_entry_gets_nothing(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.0), ShareEntry(0.2, 1.0)])
        assert alloc[0] == 0.0
        assert alloc[1] == pytest.approx(1.0)

    def test_interference_jobs(self):
        """Fig 12's A+B: A capped by its 0.3 demand, B soaks the rest."""
        alloc = elastic_shares([ShareEntry(0.45, 0.30), ShareEntry(0.45, 0.75)])
        assert alloc[0] == pytest.approx(0.30)
        assert alloc[1] == pytest.approx(0.70)

    def test_two_underrequesting_jobs_squeezed(self):
        """Fig 12's B+B: floors 0.45 each, fair residual → 0.5 each."""
        alloc = elastic_shares([ShareEntry(0.45, 0.75), ShareEntry(0.45, 0.75)])
        assert alloc == pytest.approx([0.5, 0.5])

    def test_undersubscribed_runs_at_demand(self):
        alloc = elastic_shares([ShareEntry(0.1, 0.2), ShareEntry(0.1, 0.3)])
        assert alloc == pytest.approx([0.2, 0.3])

    def test_overcommitted_floors_scale_proportionally(self):
        alloc = elastic_shares([ShareEntry(0.8, 1.0), ShareEntry(0.8, 1.0)])
        assert alloc == pytest.approx([0.5, 0.5])


entries_strategy = st.lists(
    st.builds(
        ShareEntry,
        request=st.floats(0.0, 1.0, allow_nan=False),
        cap=st.floats(0.0, 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


class TestProperties:
    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_never_exceeds_caps_or_capacity(self, entries):
        alloc = elastic_shares(entries)
        caps = np.array([e.cap for e in entries])
        assert (alloc <= caps + 1e-7).all()
        assert alloc.sum() <= 1.0 + 1e-6

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_guarantees_requests_when_feasible(self, entries):
        floors = np.array([min(e.request, e.cap) for e in entries])
        if floors.sum() > 1.0:
            return  # infeasible guarantee: proportional degradation mode
        alloc = elastic_shares(entries)
        assert (alloc >= floors - 1e-7).all()

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_work_conserving(self, entries):
        """Capacity is fully used whenever demand saturates it."""
        caps = np.array([e.cap for e in entries])
        alloc = elastic_shares(entries)
        expected = min(1.0, caps.sum())
        floors = np.array([min(e.request, e.cap) for e in entries])
        if floors.sum() <= 1.0:
            assert alloc.sum() == pytest.approx(expected, abs=1e-6)

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_nonnegative(self, entries):
        assert (elastic_shares(entries) >= -1e-12).all()

    @given(entries=entries_strategy)
    @settings(max_examples=200, deadline=None)
    def test_water_filling_fairness(self, entries):
        """Above their floors, no entry with slack sits below another's
        allocation (equal water level up to caps)."""
        alloc = elastic_shares(entries)
        floors = np.array([min(e.request, e.cap) for e in entries])
        caps = np.array([e.cap for e in entries])
        if floors.sum() > 1.0:
            return
        for i in range(len(entries)):
            for j in range(len(entries)):
                # if i could still grow (below cap) it must not be under
                # j's above-floor allocation level
                if alloc[i] < caps[i] - 1e-6 and alloc[j] > floors[j] + 1e-6:
                    assert alloc[i] >= alloc[j] - 1e-6


# Small-n entries for the pure-Python mirror: bit-identical equivalence
# is only promised below numpy's pairwise-summation threshold (n < 8).
# A coarse grid is mixed in so floors and caps collide, exercising the
# breakpoint ties where the two implementations could plausibly part.
_small_share_floats = st.one_of(
    st.sampled_from([0.0, 0.1, 0.25, 0.3, 0.5, 0.75, 1.0]),
    st.floats(0.0, 1.0, allow_nan=False),
)
small_entries_strategy = st.lists(
    st.builds(ShareEntry, request=_small_share_floats, cap=_small_share_floats),
    min_size=0,
    max_size=7,
)


class TestPurePythonMirror:
    """The fuzz promised by the ``elastic_shares_py`` docstring: for
    ``n < 8`` the pure-Python mirror must be *bit-identical* to the numpy
    solver — it replaces the reference on the fast path, so any rounding
    difference would leak into scenario summaries as a replay diff."""

    @given(entries=small_entries_strategy)
    @settings(max_examples=400, deadline=None)
    def test_bit_identical_to_numpy(self, entries):
        ref = elastic_shares(entries).tolist()
        mirror = elastic_shares_py(entries)
        assert mirror == ref  # exact float equality, not approx

    @given(
        entries=small_entries_strategy,
        capacity=st.floats(0.05, 1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_bit_identical_at_partial_capacity(self, entries, capacity):
        assert elastic_shares_py(entries, capacity=capacity) == elastic_shares(
            entries, capacity=capacity
        ).tolist()

    def test_empty_and_validation_match(self):
        assert elastic_shares_py([]) == []
        with pytest.raises(ValueError):
            elastic_shares_py([ShareEntry(0.1, 0.5)], capacity=0.0)

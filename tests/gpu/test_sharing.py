"""Unit + property tests for the elastic share solver (§4.5 steady state)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.sharing import ShareEntry, elastic_shares


class TestValidation:
    def test_request_out_of_range(self):
        with pytest.raises(ValueError):
            ShareEntry(request=1.5, cap=1.0)
        with pytest.raises(ValueError):
            ShareEntry(request=-0.1, cap=1.0)

    def test_negative_cap(self):
        with pytest.raises(ValueError):
            ShareEntry(request=0.1, cap=-0.1)

    def test_cap_clipped_to_one(self):
        assert ShareEntry(request=0.0, cap=2.0).cap == 1.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            elastic_shares([ShareEntry(0.1, 0.5)], capacity=0.0)

    def test_empty(self):
        assert elastic_shares([]).size == 0


class TestPaperScenarios:
    """The Figure 6 staircase, computed in closed form."""

    def test_single_job_capped_by_limit(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6)])
        assert alloc == pytest.approx([0.6])

    def test_two_jobs_split_residual_fairly(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6)])
        assert alloc == pytest.approx([0.5, 0.5])

    def test_three_jobs_each_at_request(self):
        alloc = elastic_shares(
            [ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6), ShareEntry(0.3, 0.5)]
        )
        assert alloc == pytest.approx([0.3, 0.4, 0.3])

    def test_job_departure_redistributes(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.6), ShareEntry(0.4, 0.6)])
        assert alloc.sum() == pytest.approx(1.0)

    def test_idle_entry_gets_nothing(self):
        alloc = elastic_shares([ShareEntry(0.3, 0.0), ShareEntry(0.2, 1.0)])
        assert alloc[0] == 0.0
        assert alloc[1] == pytest.approx(1.0)

    def test_interference_jobs(self):
        """Fig 12's A+B: A capped by its 0.3 demand, B soaks the rest."""
        alloc = elastic_shares([ShareEntry(0.45, 0.30), ShareEntry(0.45, 0.75)])
        assert alloc[0] == pytest.approx(0.30)
        assert alloc[1] == pytest.approx(0.70)

    def test_two_underrequesting_jobs_squeezed(self):
        """Fig 12's B+B: floors 0.45 each, fair residual → 0.5 each."""
        alloc = elastic_shares([ShareEntry(0.45, 0.75), ShareEntry(0.45, 0.75)])
        assert alloc == pytest.approx([0.5, 0.5])

    def test_undersubscribed_runs_at_demand(self):
        alloc = elastic_shares([ShareEntry(0.1, 0.2), ShareEntry(0.1, 0.3)])
        assert alloc == pytest.approx([0.2, 0.3])

    def test_overcommitted_floors_scale_proportionally(self):
        alloc = elastic_shares([ShareEntry(0.8, 1.0), ShareEntry(0.8, 1.0)])
        assert alloc == pytest.approx([0.5, 0.5])


entries_strategy = st.lists(
    st.builds(
        ShareEntry,
        request=st.floats(0.0, 1.0, allow_nan=False),
        cap=st.floats(0.0, 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


class TestProperties:
    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_never_exceeds_caps_or_capacity(self, entries):
        alloc = elastic_shares(entries)
        caps = np.array([e.cap for e in entries])
        assert (alloc <= caps + 1e-7).all()
        assert alloc.sum() <= 1.0 + 1e-6

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_guarantees_requests_when_feasible(self, entries):
        floors = np.array([min(e.request, e.cap) for e in entries])
        if floors.sum() > 1.0:
            return  # infeasible guarantee: proportional degradation mode
        alloc = elastic_shares(entries)
        assert (alloc >= floors - 1e-7).all()

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_work_conserving(self, entries):
        """Capacity is fully used whenever demand saturates it."""
        caps = np.array([e.cap for e in entries])
        alloc = elastic_shares(entries)
        expected = min(1.0, caps.sum())
        floors = np.array([min(e.request, e.cap) for e in entries])
        if floors.sum() <= 1.0:
            assert alloc.sum() == pytest.approx(expected, abs=1e-6)

    @given(entries=entries_strategy)
    @settings(max_examples=300, deadline=None)
    def test_nonnegative(self, entries):
        assert (elastic_shares(entries) >= -1e-12).all()

    @given(entries=entries_strategy)
    @settings(max_examples=200, deadline=None)
    def test_water_filling_fairness(self, entries):
        """Above their floors, no entry with slack sits below another's
        allocation (equal water level up to caps)."""
        alloc = elastic_shares(entries)
        floors = np.array([min(e.request, e.cap) for e in entries])
        caps = np.array([e.cap for e in entries])
        if floors.sum() > 1.0:
            return
        for i in range(len(entries)):
            for j in range(len(entries)):
                # if i could still grow (below cap) it must not be under
                # j's above-floor allocation level
                if alloc[i] < caps[i] - 1e-6 and alloc[j] > floors[j] + 1e-6:
                    assert alloc[i] >= alloc[j] - 1e-6

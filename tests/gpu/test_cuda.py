"""Unit tests for the CUDA driver-API façade and interception registry."""

import pytest

from repro.gpu.cuda import CudaAPI, CudaError
from repro.gpu.device import GPUDevice, GpuOutOfMemory
from repro.gpu.interception import HookRegistry
from repro.gpu.standalone import standalone_context
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return GPUDevice(env, uuid="GPU-x", node_name="n0")


@pytest.fixture
def api(env, gpu):
    return standalone_context(env, [gpu]).cuda()


class TestContexts:
    def test_create_on_visible_device(self, api, gpu):
        ctx = api.cu_ctx_create()
        assert ctx.device is gpu
        assert len(api.contexts) == 1

    def test_no_visible_devices_raises(self, env, gpu):
        cctx = standalone_context(env, [gpu], env_vars={"NVIDIA_VISIBLE_DEVICES": "none"})
        with pytest.raises(CudaError, match="no CUDA-capable device"):
            cctx.cuda().cu_ctx_create()

    def test_bad_ordinal_raises(self, api):
        with pytest.raises(CudaError, match="ordinal"):
            api.cu_ctx_create(device_index=5)

    def test_destroy_frees_memory_and_session(self, api, gpu):
        ctx = api.cu_ctx_create()
        api.cu_mem_alloc(ctx, 1024)
        api.cu_ctx_destroy(ctx)
        assert gpu.memory_used == 0
        assert gpu.sessions == []
        assert api.contexts == []

    def test_double_destroy_raises(self, api):
        ctx = api.cu_ctx_create()
        api.cu_ctx_destroy(ctx)
        with pytest.raises(CudaError):
            api.cu_ctx_destroy(ctx)

    def test_calls_on_destroyed_context_raise(self, api):
        ctx = api.cu_ctx_create()
        api.cu_ctx_destroy(ctx)
        with pytest.raises(CudaError):
            api.cu_mem_alloc(ctx, 1)


class TestMemory:
    def test_alloc_tracks_on_device(self, api, gpu):
        ctx = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(ctx, 2048)
        assert ptr.nbytes == 2048
        assert gpu.memory_used == 2048

    def test_array_create_same_ledger(self, api, gpu):
        ctx = api.cu_ctx_create()
        api.cu_array_create(ctx, 512)
        assert gpu.memory_used == 512

    def test_free_returns_memory(self, api, gpu):
        ctx = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(ctx, 2048)
        api.cu_mem_free(ctx, ptr)
        assert gpu.memory_used == 0

    def test_double_free_raises(self, api):
        ctx = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(ctx, 64)
        api.cu_mem_free(ctx, ptr)
        with pytest.raises(CudaError):
            api.cu_mem_free(ctx, ptr)

    def test_zero_alloc_rejected(self, api):
        ctx = api.cu_ctx_create()
        with pytest.raises(CudaError):
            api.cu_mem_alloc(ctx, 0)

    def test_physical_oom_propagates(self, api, gpu):
        ctx = api.cu_ctx_create()
        with pytest.raises(GpuOutOfMemory):
            api.cu_mem_alloc(ctx, gpu.memory + 1)


class TestLaunch:
    def test_launch_executes_work(self, env, api):
        ctx = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(ctx, 2.5)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(2.5)

    def test_launch_grid_same_path(self, env, api):
        ctx = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_grid(ctx, 1.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(1.0)

    def test_negative_work_rejected(self, env, api):
        ctx = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(ctx, -1.0)

        env.process(proc())
        with pytest.raises(CudaError):
            env.run()

    def test_bad_demand_rejected(self, env, api):
        ctx = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(ctx, 1.0, demand=1.5)

        env.process(proc())
        with pytest.raises(CudaError):
            env.run()

    def test_memcpy_costs_transfer_time(self, env, api):
        ctx = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(ctx, int(CudaAPI.HTOD_BANDWIDTH))

        def proc():
            yield from api.cu_memcpy_htod(ctx, ptr, int(CudaAPI.HTOD_BANDWIDTH))
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(1.0)

    def test_memcpy_overflow_rejected(self, env, api):
        ctx = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(ctx, 10)

        def proc():
            yield from api.cu_memcpy_htod(ctx, ptr, 20)

        env.process(proc())
        with pytest.raises(CudaError):
            env.run()


class TestHookRegistry:
    def test_uninstalled_symbol_calls_original(self):
        hooks = HookRegistry()
        assert hooks.call("sym", lambda x: x + 1, 41) == 42

    def test_wrapper_wraps_original(self):
        hooks = HookRegistry()
        hooks.install("sym", lambda next_fn, x: next_fn(x) * 10)
        assert hooks.call("sym", lambda x: x + 1, 1) == 20

    def test_wrappers_compose_lifo(self):
        hooks = HookRegistry()
        hooks.install("sym", lambda next_fn, x: next_fn(x) + "a")
        hooks.install("sym", lambda next_fn, x: next_fn(x) + "b")
        # last installed runs outermost
        assert hooks.call("sym", lambda x: x, "") == "ab"

    def test_uninstall(self):
        hooks = HookRegistry()
        wrapper = lambda next_fn, x: -next_fn(x)  # noqa: E731
        hooks.install("sym", wrapper)
        hooks.uninstall("sym", wrapper)
        assert not hooks.installed("sym")
        assert hooks.call("sym", lambda x: x, 5) == 5

    def test_observers_notified(self):
        hooks = HookRegistry()
        seen = []
        hooks.observe("free", lambda *a: seen.append(a))
        hooks.notify("free", 1, 2)
        assert seen == [(1, 2)]

    def test_wrapper_can_block_call(self):
        hooks = HookRegistry()

        def deny(next_fn, x):
            raise PermissionError("quota")

        hooks.install("sym", deny)
        with pytest.raises(PermissionError):
            hooks.call("sym", lambda x: x, 1)

"""Tests for the optional GPU memory over-commitment (swap) extension."""

import pytest

from repro.gpu.backend import TokenBackend
from repro.gpu.device import GPUDevice, GpuOutOfMemory
from repro.gpu.frontend import ENV_MEM_OVERCOMMIT
from repro.gpu.standalone import kubeshare_env_vars, standalone_context
from repro.gpu.swap import SwapManager
from repro.sim import Environment

GB = 2**30


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return GPUDevice(env, uuid="GPU-s", node_name="n0", memory=16 * GB)


@pytest.fixture
def swap(env):
    return SwapManager(env, bandwidth=8 * GB)  # 8 GB/s => easy math


def overcommit_ctx(env, gpu, swap, mem=1.0, name=None, isolation="fluid"):
    env_vars = kubeshare_env_vars(0.2, 1.0, mem, isolation)
    env_vars[ENV_MEM_OVERCOMMIT] = "1"
    return standalone_context(
        env, [gpu], env_vars=env_vars,
        backend=TokenBackend(env, handoff_overhead=0.0),
        swap=swap, name=name,
    )


class TestSwapManagerUnit:
    def test_bandwidth_validation(self, env):
        with pytest.raises(ValueError):
            SwapManager(env, bandwidth=0)

    def test_make_room_noop_when_fits(self, env, gpu, swap):
        swap.make_room(gpu, "a", 4 * GB)
        assert swap.stats(gpu)["swapouts"] == 0

    def test_eviction_frees_device_memory(self, env, gpu, swap):
        gpu.alloc_memory("victim", 12 * GB)
        swap.note_alloc(gpu, "victim", 12 * GB)
        swap.make_room(gpu, "newcomer", 8 * GB)
        assert gpu.memory_free >= 8 * GB
        # only the shortfall is evicted: 8 GB needed - 4 GB already free
        assert swap.swapped_bytes(gpu, "victim") == 4 * GB

    def test_lru_victim_choice(self, env, gpu, swap):
        for owner, t in (("old", 0.0), ("recent", 5.0)):
            gpu.alloc_memory(owner, 6 * GB)
            swap.note_alloc(gpu, owner, 6 * GB)
            swap._owner(gpu, owner).last_active = t
        swap.make_room(gpu, "newcomer", 6 * GB)  # needs 2 GB evicted
        assert swap.swapped_bytes(gpu, "old") == 2 * GB
        assert swap.swapped_bytes(gpu, "recent") == 0

    def test_oom_when_nothing_evictable(self, env, gpu, swap):
        gpu.alloc_memory("me", 10 * GB)
        swap.note_alloc(gpu, "me", 10 * GB)
        with pytest.raises(GpuOutOfMemory):
            swap.make_room(gpu, "me", 10 * GB)  # own bytes are not victims

    def test_ensure_resident_costs_transfer_time(self, env, gpu, swap):
        gpu.alloc_memory("victim", 12 * GB)
        swap.note_alloc(gpu, "victim", 12 * GB)
        swap.make_room(gpu, "newcomer", 8 * GB)  # victim loses 8 GB

        def proc():
            yield from swap.ensure_resident(gpu, "victim")
            return env.now

        # freeing room for the swap-in requires evicting the newcomer...
        gpu.alloc_memory("newcomer", 8 * GB)
        swap.note_alloc(gpu, "newcomer", 8 * GB)
        p = env.process(proc())
        env.run()
        # 8 GB back in at 8 GB/s ⇒ at least 1 s
        assert p.value >= 1.0
        assert swap.swapped_bytes(gpu, "victim") == 0
        assert swap.stats(gpu)["swapins"] == 1


class TestOvercommitThroughLibrary:
    def test_two_containers_overcommit_succeeds(self, env, gpu, swap):
        """Two containers each holding 60% of device memory coexist —
        impossible without the extension (cf. test_frontend's
        no-overcommit test)."""
        backend = TokenBackend(env, handoff_overhead=0.0)

        def job(name, order):
            env_vars = kubeshare_env_vars(0.2, 1.0, 0.6, "fluid")
            env_vars[ENV_MEM_OVERCOMMIT] = "1"
            ctx = standalone_context(
                env, [gpu], env_vars=env_vars, backend=backend,
                swap=swap, name=name,
            )
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            yield env.timeout(order)  # stagger so eviction has a victim
            api.cu_mem_alloc(cu, int(0.6 * gpu.memory))
            yield from api.cu_launch_kernel(cu, 0.5)
            yield env.timeout(1.0)
            # a second burst: evicted pages must swap back in first
            yield from api.cu_launch_kernel(cu, 0.5)
            api.cu_ctx_destroy(cu)
            return env.now

        p1 = env.process(job("j1", 0.0))
        p2 = env.process(job("j2", 0.1))
        env.run()
        assert swap.stats(gpu)["swapouts"] >= 1
        assert swap.stats(gpu)["swapins"] >= 1

    def test_quota_still_enforced_with_overcommit(self, env, gpu, swap):
        ctx = overcommit_ctx(env, gpu, swap, mem=0.25)
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        with pytest.raises(GpuOutOfMemory, match="quota"):
            api.cu_mem_alloc(cu, int(0.3 * gpu.memory))

    def test_physical_memory_never_exceeded(self, env, gpu, swap):
        backend = TokenBackend(env, handoff_overhead=0.0)
        apis = []
        for i in range(3):
            env_vars = kubeshare_env_vars(0.2, 1.0, 0.5, "fluid")
            env_vars[ENV_MEM_OVERCOMMIT] = "1"
            ctx = standalone_context(
                env, [gpu], env_vars=env_vars, backend=backend,
                swap=swap, name=f"c{i}",
            )
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            api.cu_mem_alloc(cu, int(0.5 * gpu.memory))
            apis.append((api, cu))
        assert gpu.memory_used <= gpu.memory

    def test_free_of_partially_swapped_pointer(self, env, gpu, swap):
        backend = TokenBackend(env, handoff_overhead=0.0)
        env_vars = kubeshare_env_vars(0.2, 1.0, 0.8, "fluid")
        env_vars[ENV_MEM_OVERCOMMIT] = "1"
        ctx1 = standalone_context(env, [gpu], env_vars=dict(env_vars),
                                  backend=backend, swap=swap, name="v")
        ctx2 = standalone_context(env, [gpu], env_vars=dict(env_vars),
                                  backend=backend, swap=swap, name="e")
        api1, api2 = ctx1.cuda(), ctx2.cuda()
        cu1, cu2 = api1.cu_ctx_create(), api2.cu_ctx_create()
        ptr = api1.cu_mem_alloc(cu1, int(0.8 * gpu.memory))
        api2.cu_mem_alloc(cu2, int(0.8 * gpu.memory))  # evicts most of cu1
        assert swap.swapped_bytes(gpu, cu1.owner) > 0
        api1.cu_mem_free(cu1, ptr)  # must not corrupt the ledger
        assert gpu.memory_of(cu1.owner) == 0
        assert swap.swapped_bytes(gpu, cu1.owner) == 0

    def test_swap_in_before_compute(self, env, gpu, swap):
        """A container whose pages were evicted pays the transfer cost
        before its kernels run."""
        backend = TokenBackend(env, handoff_overhead=0.0)
        durations = {}

        def job(name, alloc_frac, start, work):
            env_vars = kubeshare_env_vars(0.2, 1.0, 0.9, "fluid")
            env_vars[ENV_MEM_OVERCOMMIT] = "1"
            ctx = standalone_context(env, [gpu], env_vars=env_vars,
                                     backend=backend, swap=swap, name=name)
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            yield env.timeout(start)
            api.cu_mem_alloc(cu, int(alloc_frac * gpu.memory))
            yield from api.cu_launch_kernel(cu, 0.1)
            yield env.timeout(5.0)  # go idle (eviction target)
            t0 = env.now
            yield from api.cu_launch_kernel(cu, work)
            durations[name] = env.now - t0
            api.cu_ctx_destroy(cu)

        env.process(job("victim", 0.7, 0.0, 0.5))
        env.process(job("evictor", 0.7, 1.0, 0.5))
        env.run()
        # the victim's second launch includes a swap-in delay
        assert durations["victim"] > 0.5 + 0.2

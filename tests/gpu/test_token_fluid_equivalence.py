"""Token mode converges to the fluid (elastic-shares) steady state.

DESIGN.md's substitution argument for running cluster-scale experiments in
fluid mode rests on this equivalence: the discrete 100 ms token scheduler's
long-run per-container usage matches the closed-form elastic allocation.
"""

import pytest

from repro.gpu.backend import TokenBackend
from repro.gpu.device import GPUDevice
from repro.gpu.sharing import ShareEntry, elastic_shares
from repro.gpu.standalone import kubeshare_env_vars, standalone_context
from repro.sim import Environment, Interrupt

HORIZON = 60.0


def run_token_mode(specs):
    """specs: list of (request, limit). Returns long-run usage fractions of
    saturating jobs under token isolation."""
    env = Environment()
    gpu = GPUDevice(env, uuid="GPU-eq", node_name="n0")
    backend = TokenBackend(env, quota=0.1, window=2.0, handoff_overhead=0.0)
    done_work = {}

    def job(idx, request, limit):
        ctx = standalone_context(
            env,
            [gpu],
            env_vars=kubeshare_env_vars(request, limit, 0.3, "token"),
            backend=backend,
            name=f"eq-{idx}",
        )
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        session = cu.session
        try:
            yield from api.cu_launch_kernel(cu, 10_000.0)  # never finishes
        except Interrupt:
            pass
        finally:
            done_work[idx] = session.granted_time()

    procs = [
        env.process(job(i, request, limit))
        for i, (request, limit) in enumerate(specs)
    ]
    env.run(until=HORIZON)
    for p in procs:
        if p.is_alive:
            p.interrupt("horizon")
    env.run(until=HORIZON + 1)
    return [done_work[i] / HORIZON for i in range(len(specs))]


CASES = [
    # single job capped by its limit
    [(0.3, 0.6)],
    # fair residual split (Fig 6 phase 2)
    [(0.3, 0.6), (0.4, 0.6)],
    # fully committed: everyone at their request (Fig 6 phase 3)
    [(0.3, 0.6), (0.4, 0.6), (0.3, 0.5)],
    # strongly asymmetric requests
    [(0.7, 1.0), (0.1, 1.0)],
    # limits bind for some, not others
    [(0.2, 0.25), (0.2, 1.0)],
]


@pytest.mark.parametrize("specs", CASES, ids=[str(c) for c in CASES])
def test_token_long_run_matches_elastic_shares(specs):
    measured = run_token_mode(specs)
    expected = elastic_shares(
        [ShareEntry(request=r, cap=l) for r, l in specs]
    )
    for got, want in zip(measured, expected):
        assert got == pytest.approx(want, abs=0.05)

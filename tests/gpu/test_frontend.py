"""Unit tests for the vGPU device library (frontend, §4.5)."""

import pytest

from repro.gpu.backend import TokenBackend
from repro.gpu.device import GPUDevice, GpuOutOfMemory
from repro.gpu.frontend import (
    DEVICE_LIB_SONAME,
    ENV_ISOLATION,
    ENV_LIMIT,
    ENV_MEM,
    ENV_REQUEST,
)
from repro.gpu.standalone import kubeshare_env_vars, standalone_context
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return GPUDevice(env, uuid="GPU-f", node_name="n0")


def make_ctx(env, gpu, request=0.5, limit=0.8, mem=0.25, isolation="token",
             backend=None, name=None):
    return standalone_context(
        env,
        [gpu],
        env_vars=kubeshare_env_vars(request, limit, mem, isolation),
        backend=backend or TokenBackend(env),
        name=name,
    )


class TestInstallation:
    def test_library_installed_when_preloaded(self, env, gpu):
        api = make_ctx(env, gpu).cuda()
        assert api.hooks.installed("cuMemAlloc")
        assert api.hooks.installed("cuLaunchKernel")

    def test_no_preload_no_hooks(self, env, gpu):
        api = standalone_context(env, [gpu]).cuda()
        assert not api.hooks.installed("cuMemAlloc")
        assert not api.hooks.installed("cuLaunchKernel")

    def test_memory_mode_installs_memory_hooks_only(self, env, gpu):
        api = make_ctx(env, gpu, isolation="memory").cuda()
        assert api.hooks.installed("cuMemAlloc")
        assert not api.hooks.installed("cuLaunchKernel")

    def test_invalid_isolation_rejected(self, env, gpu):
        ctx = standalone_context(
            env,
            [gpu],
            env_vars={
                "LD_PRELOAD": DEVICE_LIB_SONAME,
                ENV_REQUEST: "0.5",
                ENV_LIMIT: "0.8",
                ENV_MEM: "0.3",
                ENV_ISOLATION: "quantum",
            },
        )
        with pytest.raises(ValueError, match="isolation"):
            ctx.cuda()

    def test_invalid_spec_env_rejected(self, env, gpu):
        ctx = standalone_context(
            env,
            [gpu],
            env_vars={
                "LD_PRELOAD": DEVICE_LIB_SONAME,
                ENV_REQUEST: "1.5",
                ENV_LIMIT: "0.8",
                ENV_MEM: "0.3",
            },
        )
        with pytest.raises(ValueError):
            ctx.cuda()

    def test_fluid_mode_configures_sessions(self, env, gpu):
        api = make_ctx(env, gpu, request=0.4, limit=0.7, isolation="fluid").cuda()
        cu = api.cu_ctx_create()
        assert cu.session.request == 0.4
        assert cu.session.limit == 0.7
        assert cu.session.isolated


class TestMemoryQuota:
    def test_allocation_within_quota(self, env, gpu):
        api = make_ctx(env, gpu, mem=0.25).cuda()
        cu = api.cu_ctx_create()
        api.cu_mem_alloc(cu, int(0.2 * gpu.memory))

    def test_allocation_beyond_quota_raises_oom(self, env, gpu):
        """The paper: the frontend throws OOM rather than over-committing."""
        api = make_ctx(env, gpu, mem=0.25).cuda()
        cu = api.cu_ctx_create()
        with pytest.raises(GpuOutOfMemory, match="gpu_mem quota"):
            api.cu_mem_alloc(cu, int(0.3 * gpu.memory))

    def test_quota_accumulates_across_allocations(self, env, gpu):
        api = make_ctx(env, gpu, mem=0.25).cuda()
        cu = api.cu_ctx_create()
        api.cu_mem_alloc(cu, int(0.15 * gpu.memory))
        with pytest.raises(GpuOutOfMemory):
            api.cu_mem_alloc(cu, int(0.15 * gpu.memory))

    def test_free_returns_quota(self, env, gpu):
        api = make_ctx(env, gpu, mem=0.25).cuda()
        cu = api.cu_ctx_create()
        ptr = api.cu_mem_alloc(cu, int(0.2 * gpu.memory))
        api.cu_mem_free(cu, ptr)
        api.cu_mem_alloc(cu, int(0.2 * gpu.memory))  # fits again

    def test_no_overcommit_between_containers(self, env, gpu):
        """Two containers with gpu_mem=0.6 each: the device itself rejects
        the second container's over-commitment (no swap support, §4.5)."""
        backend = TokenBackend(env)
        api1 = make_ctx(env, gpu, mem=0.6, backend=backend, name="c1").cuda()
        api2 = make_ctx(env, gpu, mem=0.6, backend=backend, name="c2").cuda()
        cu1 = api1.cu_ctx_create()
        cu2 = api2.cu_ctx_create()
        api1.cu_mem_alloc(cu1, int(0.6 * gpu.memory))
        with pytest.raises(GpuOutOfMemory):
            api2.cu_mem_alloc(cu2, int(0.6 * gpu.memory))


class TestTokenGating:
    def test_single_job_proceeds_with_small_overhead(self, env, gpu):
        backend = TokenBackend(env, quota=0.1, handoff_overhead=0.0015)
        api = make_ctx(env, gpu, backend=backend).cuda()
        cu = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(cu, 1.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert 1.0 < p.value < 1.05  # ~1.5% token overhead

    def test_two_containers_serialize_via_token(self, env, gpu):
        backend = TokenBackend(env, quota=0.05, handoff_overhead=0.0)
        done = {}

        def job(name):
            api = make_ctx(
                env, gpu, request=0.5, limit=1.0, backend=backend, name=name
            ).cuda()
            cu = api.cu_ctx_create()
            yield from api.cu_launch_kernel(cu, 1.0)
            api.cu_ctx_destroy(cu)
            done[name] = env.now

        env.process(job("a"))
        env.process(job("b"))
        env.run()
        # total 2.0 of work time-sliced: both finish close to 2.0
        assert done["a"] == pytest.approx(2.0, abs=0.1)
        assert done["b"] == pytest.approx(2.0, abs=0.1)

    def test_limit_throttles_job(self, env, gpu):
        backend = TokenBackend(env, quota=0.1, window=1.0, handoff_overhead=0.0)
        api = make_ctx(env, gpu, request=0.2, limit=0.5, backend=backend).cuda()
        cu = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(cu, 2.0)
            return env.now

        p = env.process(proc())
        env.run()
        # limit 0.5 ⇒ 2.0 work needs ≈ 4s
        assert p.value == pytest.approx(4.0, rel=0.15)

    def test_ctx_destroy_releases_backend_state(self, env, gpu):
        backend = TokenBackend(env, quota=0.1)
        api = make_ctx(env, gpu, backend=backend, name="bye").cuda()
        cu = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(cu, 0.2)
            api.cu_ctx_destroy(cu)

        env.process(proc())
        env.run()
        assert backend.usage(gpu.uuid, "uid-bye") == 0.0

    def test_missing_backend_raises(self, env, gpu):
        ctx = standalone_context(
            env, [gpu], env_vars=kubeshare_env_vars(0.5, 1.0, 0.3, "token")
        )
        api = ctx.cuda()
        cu = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(cu, 0.1)

        env.process(proc())
        with pytest.raises(RuntimeError, match="backend daemon"):
            env.run()


class TestFluidCalibration:
    def test_fluid_overhead_matches_token_quota_ratio(self, env, gpu):
        backend = TokenBackend(env, quota=0.1, handoff_overhead=0.0015)
        api = make_ctx(env, gpu, isolation="fluid", limit=1.0, backend=backend).cuda()
        cu = api.cu_ctx_create()

        def proc():
            yield from api.cu_launch_kernel(cu, 1.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == pytest.approx(1.0 * (1 + 0.0015 / 0.1), rel=1e-6)

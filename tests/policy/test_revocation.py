"""The shared revocation helpers: idempotent, race-tolerant by contract."""

import pytest

from repro.cluster.apiserver import APIServer, NotFound
from repro.policy.objects import (
    ANN_EVICT,
    ANN_EVICT_DEADLINE,
    ANN_EVICTED_BY,
    ANN_REQUEUE_AFTER,
    ANN_REQUEUE_COUNT,
)
from repro.policy.revocation import (
    eviction_of,
    finish_eviction,
    mark_eviction,
    requeue_backoff,
    requeue_gate,
    safe_delete,
    tolerant_patch,
)
from repro.sim import Environment

from .conftest import make_sharepod


@pytest.fixture
def api():
    api = APIServer(Environment())
    api.register_crd("SharePod")
    return api


class TestSafeDelete:
    def test_first_delete_wins(self, api):
        api.create(make_sharepod("sp"))
        assert safe_delete(api, "SharePod", "sp") is True
        assert api.get("SharePod", "sp") is None

    def test_second_delete_is_success_not_error(self, api):
        api.create(make_sharepod("sp"))
        safe_delete(api, "SharePod", "sp")
        assert safe_delete(api, "SharePod", "sp") is False  # no raise

    def test_raw_delete_would_raise(self, api):
        with pytest.raises(NotFound):
            api.delete("SharePod", "ghost")


class TestTolerantPatch:
    def test_patch_applies(self, api):
        api.create(make_sharepod("sp"))

        def mutate(obj):
            obj.metadata.labels["touched"] = "yes"

        assert tolerant_patch(api, "SharePod", "sp", mutate) is True
        assert api.get("SharePod", "sp").metadata.labels["touched"] == "yes"

    def test_missing_object_tolerated(self, api):
        assert tolerant_patch(api, "SharePod", "ghost", lambda o: None) is False


class TestEvictionStateMachine:
    def test_mark_persists_annotations(self, api):
        api.create(make_sharepod("sp"))
        assert mark_eviction(api, "default/sp", "test", 5.0, "preemptor") is True
        sp = api.get("SharePod", "sp")
        ev = eviction_of(sp)
        assert ev is not None
        assert ev.reason == "test"
        assert ev.deadline == 5.0
        assert ev.evicted_by == "preemptor"

    def test_remark_never_extends_an_inflight_drain(self, api):
        api.create(make_sharepod("sp"))
        mark_eviction(api, "default/sp", "first", 5.0, "a")
        mark_eviction(api, "default/sp", "second", 50.0, "b")
        ev = eviction_of(api.get("SharePod", "sp"))
        assert ev.reason == "first"
        assert ev.deadline == 5.0
        assert ev.evicted_by == "a"

    def test_mark_missing_object_tolerated(self, api):
        assert mark_eviction(api, "default/ghost", "r", 1.0, "x") is False

    def test_finish_clears_evict_and_arms_requeue(self, api):
        api.create(make_sharepod("sp"))
        mark_eviction(api, "default/sp", "test", 5.0, "preemptor")

        def clear(obj):
            obj.spec.gpu_id = None

        assert finish_eviction(api, "default/sp", "test", 7.5, 1, clear) is True
        sp = api.get("SharePod", "sp")
        ann = sp.metadata.annotations
        assert ANN_EVICT not in ann
        assert ANN_EVICT_DEADLINE not in ann
        assert ANN_EVICTED_BY not in ann
        assert ann[ANN_REQUEUE_AFTER] == repr(7.5)
        assert ann[ANN_REQUEUE_COUNT] == "1"
        assert eviction_of(sp) is None
        assert requeue_gate(sp) == 7.5
        assert sp.status.message == "evicted: test"

    def test_finish_missing_object_tolerated(self, api):
        assert finish_eviction(api, "default/ghost", "r", 1.0, 1, lambda o: None) is False


class TestBackoff:
    def test_deterministic_doubling_to_cap(self):
        seq = [requeue_backoff(n, base=0.5, cap=8.0) for n in range(1, 8)]
        assert seq == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_no_jitter(self):
        assert requeue_backoff(3) == requeue_backoff(3)

    def test_gate_absent_or_garbage_is_none(self):
        sp = make_sharepod("sp")
        assert requeue_gate(sp) is None
        sp.metadata.annotations[ANN_REQUEUE_AFTER] = "not-a-float"
        assert requeue_gate(sp) is None

"""The lifetime reaper: TTL enforcement, terminated GC, orphan collection."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import ObjectMeta, Pod
from repro.core import KubeShare
from repro.core.vgpu import PLACEHOLDER_PREFIX
from repro.policy import PolicyConfig, ReaperConfig
from repro.policy.objects import ANN_TTL
from repro.policy.reaper import LifetimeReaper

from .conftest import make_sharepod, train


def stack(env, reaper_cfg):
    cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=2)).start()
    ks = KubeShare(cluster, contention=PolicyConfig(reaper=reaper_cfg)).start()
    return cluster, ks


class TestLifetimeTTL:
    def test_default_ttl_reaps_running_sharepod(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(default_ttl=2.0, orphan_ttl=None, sweep_interval=0.25),
        )
        ks.submit(
            ks.make_sharepod(
                "long", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(60.0),
            )
        )
        env.run(until=5.0)
        assert ks.get("long") is None
        assert ks.policy_layer.reaper.reaped_total >= 1

    def test_annotation_ttl_overrides_default(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(default_ttl=60.0, orphan_ttl=None, sweep_interval=0.25),
        )
        ks.submit(
            ks.make_sharepod(
                "short", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(60.0), annotations={ANN_TTL: "1.0"},
            )
        )
        env.run(until=4.0)
        assert ks.get("short") is None

    def test_namespace_ttl_applies(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(default_ttl=None, orphan_ttl=None, sweep_interval=0.25),
        )
        ks.policy_layer.create_namespace("t1", sharepod_ttl=1.5)
        ks.submit(
            ks.make_sharepod(
                "tenant-job", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(60.0), namespace="t1",
            )
        )
        env.run(until=4.0)
        assert ks.get("tenant-job", namespace="t1") is None

    def test_no_ttl_anywhere_means_immortal(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(default_ttl=None, orphan_ttl=None, sweep_interval=0.25),
        )
        ks.submit(
            ks.make_sharepod(
                "forever", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(60.0),
            )
        )
        env.run(until=10.0)
        assert ks.get("forever") is not None

    def test_excluded_namespace_never_reaped(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(
                default_ttl=1.0,
                orphan_ttl=None,
                sweep_interval=0.25,
                excluded_namespaces=("kube-system",),
            ),
        )
        ks.submit(
            ks.make_sharepod(
                "system-job", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(60.0), namespace="kube-system",
            )
        )
        env.run(until=5.0)
        assert ks.get("system-job", namespace="kube-system") is not None


class TestTerminatedGC:
    def test_terminal_sharepods_linger_then_go(self, env):
        cluster, ks = stack(
            env,
            ReaperConfig(
                default_ttl=None,
                terminated_ttl=3.0,
                orphan_ttl=None,
                sweep_interval=0.25,
            ),
        )
        ks.submit(
            ks.make_sharepod(
                "quick", gpu_request=0.5, gpu_limit=1.0, gpu_mem=0.2,
                workload=train(0.5),
            )
        )
        done = env.process(ks.wait_all_terminal(["quick"]))
        env.run(until=done)
        finished_at = ks.get("quick").status.finish_time
        env.run(until=finished_at + 2.0)
        assert ks.get("quick") is not None  # post-mortem window
        env.run(until=finished_at + 5.0)
        assert ks.get("quick") is None


class TestOrphanCollection:
    def test_unreferenced_placeholder_collected_after_grace(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        cluster.api.register_crd("SharePod")
        reaper = LifetimeReaper(
            env,
            cluster.api,
            ReaperConfig(orphan_ttl=1.0, sweep_interval=0.25),
        ).start()
        cluster.api.create(
            Pod(metadata=ObjectMeta(name=PLACEHOLDER_PREFIX + "GPUID-orphan"))
        )
        env.run(until=0.5)
        assert cluster.api.get("Pod", PLACEHOLDER_PREFIX + "GPUID-orphan") is not None
        env.run(until=3.0)
        assert cluster.api.get("Pod", PLACEHOLDER_PREFIX + "GPUID-orphan") is None
        assert reaper.orphans_reaped_total == 1

    def test_referenced_placeholder_protected(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        cluster.api.register_crd("SharePod")
        reaper = LifetimeReaper(
            env,
            cluster.api,
            ReaperConfig(orphan_ttl=1.0, sweep_interval=0.25),
        ).start()
        owner = make_sharepod("owner", gpu_id="GPUID-live")
        cluster.api.create(owner)
        cluster.api.create(
            Pod(metadata=ObjectMeta(name=PLACEHOLDER_PREFIX + "GPUID-live"))
        )
        env.run(until=5.0)
        assert cluster.api.get("Pod", PLACEHOLDER_PREFIX + "GPUID-live") is not None
        assert reaper.orphans_reaped_total == 0

    def test_ha_rebuild_clears_grace_tracking(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        cluster.api.register_crd("SharePod")
        reaper = LifetimeReaper(
            env, cluster.api, ReaperConfig(orphan_ttl=10.0, sweep_interval=0.25)
        ).start()
        cluster.api.create(
            Pod(metadata=ObjectMeta(name=PLACEHOLDER_PREFIX + "GPUID-x"))
        )
        env.run(until=1.0)
        assert reaper._orphan_since  # grace window under way
        reaper.rebuild_state()
        assert reaper._orphan_since == {}

"""Graceful revocation: drain window semantics in DevMgr.

An eviction mark starts a drain; the workload keeps running until the
deadline. If it finishes first, completion wins. At the deadline DevMgr
forces teardown: the real pod is deleted (token reclamation via the
kubelet), the vGPU share is released, and the SharePod is requeued with
backoff — all through one atomic status patch.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.objects import PodPhase
from repro.core import KubeShare
from repro.policy import PolicyConfig
from repro.policy.objects import (
    ANN_EVICT,
    ANN_REQUEUE_AFTER,
    ANN_REQUEUE_COUNT,
)
from repro.policy.revocation import mark_eviction

from .conftest import train


@pytest.fixture
def stack(env):
    cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
    ks = KubeShare(cluster, contention=PolicyConfig()).start()
    return cluster, ks


def start_job(ks, env, name, work):
    ks.submit(
        ks.make_sharepod(
            name,
            gpu_request=0.5,
            gpu_limit=1.0,
            gpu_mem=0.2,
            workload=train(work),
        )
    )
    wait = env.process(ks.wait_for_phase(name, [PodPhase.RUNNING]))
    env.run(until=wait)
    sp = ks.get(name)
    assert sp.spec.gpu_id is not None, "job must be bound before the drain test"
    return sp


class TestDrainWindow:
    def test_workload_keeps_running_inside_the_window(self, stack):
        cluster, ks = stack
        env = cluster.env
        start_job(ks, env, "j", work=30.0)
        mark_eviction(ks.api, "default/j", "test drain", env.now + 3.0, "manual")
        env.run(until=env.now + 2.0)  # inside the window
        sp = ks.get("j")
        assert sp.status.phase.value == "Running"
        assert sp.spec.gpu_id is not None

    def test_deadline_forces_teardown_and_requeues(self, stack):
        cluster, ks = stack
        env = cluster.env
        start_job(ks, env, "j", work=30.0)
        deadline = env.now + 1.0
        mark_eviction(ks.api, "default/j", "test drain", deadline, "manual")
        # look just after the deadline, before the requeue backoff expires
        # and the scheduler re-places the pod.
        env.run(until=deadline + 0.25)
        sp = ks.get("j")
        ann = sp.metadata.annotations
        assert ANN_EVICT not in ann  # eviction state cleared atomically
        assert ann[ANN_REQUEUE_COUNT] == "1"
        assert float(ann[ANN_REQUEUE_AFTER]) > deadline
        assert sp.spec.gpu_id is None
        assert sp.spec.node_name is None
        assert sp.status.phase.value == "Pending"
        assert ks.devmgr.sharepods_evicted_total == 1
        # token reclamation: the real pod is gone, so the backend client
        # released its share of the kernel-time window.
        assert cluster.api.get("Pod", "j") is None

    def test_workload_completion_wins_over_eviction(self, stack):
        cluster, ks = stack
        env = cluster.env
        start_job(ks, env, "j", work=1.0)  # finishes around t≈3
        mark_eviction(ks.api, "default/j", "test drain", env.now + 10.0, "manual")
        done = env.process(ks.wait_all_terminal(["j"]))
        env.run(until=done)
        sp = ks.get("j")
        assert sp.status.phase.value == "Succeeded"
        assert ks.devmgr.sharepods_evicted_total == 0

    def test_evicted_sharepod_reschedules_after_backoff(self, stack):
        cluster, ks = stack
        env = cluster.env
        start_job(ks, env, "j", work=2.0)
        mark_eviction(ks.api, "default/j", "test drain", env.now + 0.5, "manual")
        done = env.process(ks.wait_all_terminal(["j"]))
        env.run(until=done)
        sp = ks.get("j")
        assert sp.status.phase.value == "Succeeded"  # re-placed and finished
        assert ks.devmgr.sharepods_evicted_total == 1

    def test_past_deadline_mark_evicts_immediately(self, stack):
        cluster, ks = stack
        env = cluster.env
        start_job(ks, env, "j", work=30.0)
        mark_eviction(ks.api, "default/j", "no grace", env.now, "manual")
        env.run(until=env.now + 0.5)
        assert ks.get("j").spec.gpu_id is None
        assert ks.devmgr.sharepods_evicted_total == 1

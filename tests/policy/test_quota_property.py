"""The quota fairness invariant, as a property test.

Admission bounds each namespace's *concurrent* sum of ``gpu_request`` by
its quota Q. Because the token backend grants every admitted container
exactly its request share of kernel time, the namespace's granted
GPU-time over ANY window [t0, t1] is the integral of its concurrent
charge rate — so it can never exceed ``Q × (t1 - t0)``. The accountant
records exactly that integral; here we drive it with arbitrary
admission-controlled job schedules and check the bound over arbitrary
windows.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.quota import QuotaAccountant

EPS = 1e-6


jobs_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0),  # start
        st.floats(min_value=0.01, max_value=10.0),  # duration
        st.floats(min_value=0.05, max_value=1.0),  # gpu_request
    ),
    min_size=1,
    max_size=40,
)


def drive(accountant, jobs, quota, namespace="tenant"):
    """Feed *jobs* through admission-controlled charge/release calls.

    Mirrors what admission + the quota controller do: a job only opens a
    charge if the namespace's concurrent rate stays within quota;
    otherwise it is dropped (a queued job charges nothing until it
    actually runs, which is the same thing for the ledger).
    """
    open_jobs = []  # heap of (end, key, rate)
    open_rate = 0.0
    horizon = 0.0
    admitted = 0
    for i, (start, duration, rate) in enumerate(sorted(jobs)):
        while open_jobs and open_jobs[0][0] <= start:
            end, key, r = heapq.heappop(open_jobs)
            accountant.release(key, end)
            open_rate -= r
        if open_rate + rate > quota + 1e-9:
            continue  # admission queues/rejects it; no charge opens
        key = f"{namespace}/j{i}"
        accountant.charge(namespace, key, rate, start)
        heapq.heappush(open_jobs, (start + duration, key, rate))
        open_rate += rate
        horizon = max(horizon, start + duration)
        admitted += 1
    while open_jobs:
        end, key, r = heapq.heappop(open_jobs)
        accountant.release(key, end)
    return horizon + 1.0, admitted


class TestQuotaInvariant:
    @given(
        jobs=jobs_strategy,
        quota=st.floats(min_value=0.1, max_value=3.0),
        window=st.tuples(
            st.floats(min_value=0.0, max_value=25.0),
            st.floats(min_value=0.01, max_value=25.0),
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_granted_gpu_time_never_exceeds_quota_times_window(
        self, jobs, quota, window
    ):
        accountant = QuotaAccountant()
        now, _ = drive(accountant, jobs, quota)
        t0, span = window
        t1 = t0 + span
        usage = accountant.usage_in_window("tenant", t0, t1, now)
        assert usage <= quota * (t1 - t0) + EPS

    @given(jobs=jobs_strategy, quota=st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=80, deadline=None)
    def test_peak_concurrent_rate_bounded_by_quota(self, jobs, quota):
        accountant = QuotaAccountant()
        now, _ = drive(accountant, jobs, quota)
        assert accountant.max_concurrent("tenant", now) <= quota + EPS

    @given(jobs=jobs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_unlimited_quota_admits_everything(self, jobs):
        accountant = QuotaAccountant()
        _, admitted = drive(accountant, jobs, quota=float("inf"))
        assert admitted == len(jobs)


class TestAccountantUnit:
    def test_charge_is_idempotent_while_rate_unchanged(self):
        acc = QuotaAccountant()
        acc.charge("ns", "ns/a", 0.5, 1.0)
        acc.charge("ns", "ns/a", 0.5, 2.0)  # duplicate reconcile
        acc.release("ns/a", 3.0)
        assert acc.usage_in_window("ns", 0.0, 10.0, 10.0) == 0.5 * 2.0

    def test_rate_change_splits_the_interval(self):
        acc = QuotaAccountant()
        acc.charge("ns", "ns/a", 0.5, 0.0)
        acc.charge("ns", "ns/a", 0.2, 2.0)
        acc.release("ns/a", 4.0)
        assert acc.usage_in_window("ns", 0.0, 4.0, 4.0) == 0.5 * 2 + 0.2 * 2

    def test_release_without_charge_is_noop(self):
        acc = QuotaAccountant()
        acc.release("ns/ghost", 1.0)
        assert acc.usage_in_window("ns", 0.0, 10.0, 10.0) == 0.0

    def test_open_interval_accrues_to_now(self):
        acc = QuotaAccountant()
        acc.charge("ns", "ns/a", 1.0, 0.0)
        assert acc.usage_in_window("ns", 0.0, 5.0, 5.0) == 5.0

    def test_namespaces_isolated(self):
        acc = QuotaAccountant()
        acc.charge("a", "a/x", 1.0, 0.0)
        acc.charge("b", "b/y", 1.0, 0.0)
        assert acc.usage_in_window("a", 0.0, 2.0, 2.0) == 2.0
        assert acc.usage_in_window("b", 0.0, 2.0, 2.0) == 2.0

"""Shared helpers for the multi-tenant policy tests."""

from repro.core.framework import SharePodClient


def train(work, mem_bytes=1 * 2**30):
    """A simple training workload: allocate memory, burn *work* GPU-seconds."""

    def wl(ctx):
        api = ctx.cuda()
        cu = api.cu_ctx_create()
        try:
            api.cu_mem_alloc(cu, mem_bytes)
            yield from api.cu_launch_kernel(cu, work)
        finally:
            api.cu_ctx_destroy(cu)
        return "done"

    return wl


def make_sharepod(name, **kwargs):
    """Build a SharePod object without a cluster (client-side only)."""
    kwargs.setdefault("gpu_request", 0.5)
    kwargs.setdefault("gpu_limit", 1.0)
    kwargs.setdefault("gpu_mem", 0.2)
    return SharePodClient().make_sharepod(name, **kwargs)

"""Priority preemption: deterministic victim selection and full replay.

The victim planner is a pure function of the cluster snapshot, and the
whole pipeline (defer → plan → mark → drain → teardown → requeue) is
driven by the deterministic simulator — so two identical runs must evict
the byte-identical victim set and write the byte-identical decision log.
"""

import json

from repro.analysis.resets import reset_all
from repro.cluster import Cluster, ClusterConfig
from repro.core import KubeShare
from repro.obs.runtime import ObsHub, disable, enable
from repro.policy import PolicyConfig
from repro.policy.preemption import (
    BEST_EFFORT_PRIORITY,
    Victim,
    select_victims,
)
from repro.sim import Environment

from .conftest import make_sharepod, train


def victim(key, gpuid, priority, request=0.4, mem=0.2, born=0.0, **labels):
    return Victim(
        key=key,
        gpuid=gpuid,
        priority=priority,
        gpu_request=request,
        gpu_mem=mem,
        creation_time=born,
        **labels,
    )


class TestSelectVictims:
    def test_minimal_fractional_set(self):
        req = make_sharepod("hi", gpu_request=0.5)
        occupants = {
            "GPU-a": [
                victim("default/v1", "GPU-a", 0, request=0.5),
                victim("default/v2", "GPU-a", 0, request=0.4),
            ],
        }
        plan = select_victims(req, 100, occupants, needs_new_device=False)
        assert plan is not None
        assert plan.reason == "fractional"
        assert len(plan.victims) == 1  # one eviction is enough

    def test_equal_priority_never_victimised(self):
        req = make_sharepod("hi", gpu_request=0.5)
        occupants = {"GPU-a": [victim("default/v1", "GPU-a", 100, request=0.9)]}
        assert select_victims(req, 100, occupants, needs_new_device=False) is None

    def test_lowest_priority_evicted_first(self):
        req = make_sharepod("hi", gpu_request=0.5)
        occupants = {
            "GPU-a": [
                victim("default/keep", "GPU-a", 50, request=0.5),
                victim("default/best-effort", "GPU-a", BEST_EFFORT_PRIORITY, request=0.5),
            ],
        }
        plan = select_victims(req, 100, occupants, needs_new_device=False)
        assert plan.victim_keys == ("default/best-effort",)

    def test_whole_device_requires_all_lower(self):
        req = make_sharepod("hi", gpu_request=1.0)
        occupants = {
            "GPU-a": [
                victim("default/v1", "GPU-a", 0),
                victim("default/pinned", "GPU-a", 200),
            ],
            "GPU-b": [victim("default/v2", "GPU-b", 0)],
        }
        plan = select_victims(req, 100, occupants, needs_new_device=True)
        assert plan.reason == "whole-device"
        assert plan.victim_keys == ("default/v2",)

    def test_residual_label_conflict_widens_the_set(self):
        # evicting just the smallest occupant is not enough when a residual
        # occupant carries the request's anti-affinity label.
        req = make_sharepod("hi", gpu_request=0.3, anti_affinity="team-a")
        occupants = {
            "GPU-a": [
                victim("default/small", "GPU-a", 0, request=0.3),
                victim(
                    "default/tagged", "GPU-a", 0, request=0.4, anti_aff="team-a"
                ),
            ],
        }
        plan = select_victims(req, 100, occupants, needs_new_device=False)
        assert plan is not None
        assert "default/tagged" in plan.victim_keys

    def test_identical_snapshot_identical_plan(self):
        req = make_sharepod("hi", gpu_request=0.7)
        occupants = {
            "GPU-b": [
                victim("default/v3", "GPU-b", 10, request=0.4, born=3.0),
                victim("default/v4", "GPU-b", 0, request=0.4, born=1.0),
            ],
            "GPU-a": [
                victim("default/v1", "GPU-a", 0, request=0.4, born=2.0),
                victim("default/v2", "GPU-a", 5, request=0.4, born=0.0),
            ],
        }
        plans = [
            select_victims(req, 100, occupants, needs_new_device=False)
            for _ in range(3)
        ]
        assert plans[0] == plans[1] == plans[2]
        assert all(v.priority < 100 for v in plans[0].victims)


def preemption_scenario():
    """Overload two GPUs with low-priority work, then submit a
    high-priority SharePod that can only place by preempting."""
    reset_all()
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=1)).start()
    ks = KubeShare(
        cluster, contention=PolicyConfig(drain_window=0.5, requeue_base=0.5)
    ).start()
    hub = enable(ObsHub(env, label="preemption"))
    try:
        ks.policy_layer.create_priority_class("high", 100)
        for i in range(2):
            ks.submit(
                ks.make_sharepod(
                    f"low{i}",
                    gpu_request=0.6,
                    gpu_limit=1.0,
                    gpu_mem=0.2,
                    workload=train(30.0),
                )
            )
        env.run(until=5.0)  # lows bound and running
        ks.submit(
            ks.make_sharepod(
                "high",
                gpu_request=0.6,
                gpu_limit=1.0,
                gpu_mem=0.2,
                workload=train(1.0),
                priority_class="high",
            )
        )
        done = env.process(ks.wait_all_terminal(["high"]))
        env.run(until=done)
        env.run(until=env.now + 1.0)
        policy_records = [
            r for r in hub.decisions.to_dicts() if r["placement"] == "policy"
        ]
        evicted = sorted(
            v
            for r in policy_records
            if r["rule"] == "policy:preempt"
            for v in r["request"].get("victims", [])
        )
        return {
            "high_phase": ks.get("high").status.phase.value,
            "evictions": ks.devmgr.sharepods_evicted_total,
            "evicted_keys": evicted,
            "log": json.dumps(policy_records, sort_keys=True),
        }
    finally:
        disable()


class TestPreemptionEndToEnd:
    def test_high_priority_places_by_evicting_lower(self):
        out = preemption_scenario()
        assert out["high_phase"] == "Succeeded"
        assert out["evictions"] == 1  # minimal victim set: exactly one
        assert len(out["evicted_keys"]) == 1
        assert out["evicted_keys"][0].startswith("default/low")

    def test_identical_runs_replay_identical_eviction_set_and_log(self):
        a = preemption_scenario()
        b = preemption_scenario()
        assert a["evicted_keys"] == b["evicted_keys"]
        assert a["log"] == b["log"]  # byte-identical decision log

    def test_victim_requeues_after_backoff(self):
        out = preemption_scenario()
        # the evicted low-priority SharePod must not be lost: it either
        # re-placed after its backoff or is pending retry — never stuck
        # carrying eviction state.
        reset_all()
        env = Environment()
        cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=1)).start()
        ks = KubeShare(
            cluster, contention=PolicyConfig(drain_window=0.5, requeue_base=0.5)
        ).start()
        ks.policy_layer.create_priority_class("high", 100)
        for i in range(2):
            ks.submit(
                ks.make_sharepod(
                    f"low{i}",
                    gpu_request=0.6,
                    gpu_limit=1.0,
                    gpu_mem=0.2,
                    workload=train(30.0),
                )
            )
        env.run(until=5.0)
        ks.submit(
            ks.make_sharepod(
                "high",
                gpu_request=0.6,
                gpu_limit=1.0,
                gpu_mem=0.2,
                workload=train(1.0),
                priority_class="high",
            )
        )
        done = env.process(ks.wait_all_terminal(["low0", "low1", "high"]))
        env.run(until=done)
        for name in ("low0", "low1", "high"):
            assert ks.get(name).status.phase.value == "Succeeded"


class TestBestEffortHarvesting:
    def test_best_effort_binds_spare_capacity(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        ks = KubeShare(cluster, contention=PolicyConfig()).start()
        ks.submit(
            ks.make_sharepod(
                "payer",
                gpu_request=0.5,
                gpu_limit=1.0,
                gpu_mem=0.2,
                workload=train(5.0),
            )
        )
        env.run(until=2.0)
        ks.submit(
            ks.make_sharepod(
                "scav",
                gpu_request=0.3,
                gpu_limit=0.6,
                gpu_mem=0.2,
                workload=train(1.0),
                best_effort=True,
            )
        )
        done = env.process(ks.wait_all_terminal(["scav"]))
        env.run(until=done)
        assert ks.get("scav").status.phase.value == "Succeeded"

    def test_classless_pod_revokes_best_effort_capacity(self, env):
        cluster = Cluster(env, ClusterConfig(nodes=1, gpus_per_node=1)).start()
        ks = KubeShare(
            cluster, contention=PolicyConfig(drain_window=0.5)
        ).start()
        # a long-running paying tenant opens the vGPU the scavenger rides on
        ks.submit(
            ks.make_sharepod(
                "seed",
                gpu_request=0.2,
                gpu_limit=0.5,
                gpu_mem=0.1,
                workload=train(30.0),
            )
        )
        env.run(until=2.0)
        ks.submit(
            ks.make_sharepod(
                "scav",
                gpu_request=0.7,
                gpu_limit=1.0,
                gpu_mem=0.2,
                workload=train(30.0),
                best_effort=True,
            )
        )
        env.run(until=4.0)
        assert ks.get("scav").spec.gpu_id is not None
        ks.submit(
            ks.make_sharepod(
                "normal",
                gpu_request=0.7,
                gpu_limit=1.0,
                gpu_mem=0.2,
                workload=train(1.0),
            )
        )
        done = env.process(ks.wait_all_terminal(["normal"]))
        env.run(until=done)
        assert ks.get("normal").status.phase.value == "Succeeded"
        assert ks.devmgr.sharepods_evicted_total >= 1

"""Quota admission: reject or queue SharePods that would exceed the
namespace's concurrent GPU quota."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import KubeShare
from repro.policy import AdmissionDenied, PolicyConfig
from repro.policy.objects import ANN_QUEUED

from .conftest import train


@pytest.fixture
def stack(env):
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2)).start()
    ks = KubeShare(cluster, contention=PolicyConfig()).start()
    return cluster, ks


def submit(ks, name, request=0.5, namespace="default", workload=None):
    return ks.submit(
        ks.make_sharepod(
            name,
            gpu_request=request,
            gpu_limit=1.0,
            gpu_mem=0.2,
            workload=workload,
            namespace=namespace,
        )
    )


class TestRejectMode:
    def test_over_quota_create_is_refused(self, stack):
        cluster, ks = stack
        ks.policy_layer.create_namespace("t1", gpu_quota=0.5, on_exceeded="reject")
        submit(ks, "a", request=0.5, namespace="t1")
        with pytest.raises(AdmissionDenied):
            submit(ks, "b", request=0.5, namespace="t1")
        assert ks.get("b", namespace="t1") is None  # nothing persisted

    def test_within_quota_admitted(self, stack):
        cluster, ks = stack
        ks.policy_layer.create_namespace("t1", gpu_quota=1.0, on_exceeded="reject")
        submit(ks, "a", request=0.5, namespace="t1")
        submit(ks, "b", request=0.5, namespace="t1")  # exactly at quota

    def test_other_namespaces_unaffected(self, stack):
        cluster, ks = stack
        ks.policy_layer.create_namespace("t1", gpu_quota=0.4, on_exceeded="reject")
        submit(ks, "a", request=0.4, namespace="t1")
        submit(ks, "free", request=0.9)  # default ns has no Namespace object

    def test_terminal_sharepods_do_not_count(self, stack):
        cluster, ks = stack
        env = cluster.env
        ks.policy_layer.create_namespace("t1", gpu_quota=0.5, on_exceeded="reject")
        submit(ks, "a", request=0.5, namespace="t1", workload=train(0.5))
        done = env.process(ks.wait_all_terminal(["a"], namespace="t1"))
        env.run(until=done)
        submit(ks, "b", request=0.5, namespace="t1")  # a is terminal now


class TestQueueMode:
    def test_over_quota_create_is_parked(self, stack):
        cluster, ks = stack
        ks.policy_layer.create_namespace("t1", gpu_quota=0.5, on_exceeded="queue")
        submit(ks, "a", request=0.5, namespace="t1")
        submit(ks, "b", request=0.5, namespace="t1")
        b = ks.get("b", namespace="t1")
        assert ANN_QUEUED in b.metadata.annotations

    def test_scheduler_skips_parked_sharepods(self, stack):
        cluster, ks = stack
        ks.policy_layer.create_namespace("t1", gpu_quota=0.5, on_exceeded="queue")
        submit(ks, "a", request=0.5, namespace="t1", workload=train(20.0))
        submit(ks, "b", request=0.5, namespace="t1", workload=train(1.0))
        cluster.env.run(until=3.0)
        b = ks.get("b", namespace="t1")
        assert ANN_QUEUED in b.metadata.annotations
        assert b.spec.gpu_id is None  # never scheduled while parked

    def test_queued_sharepod_released_when_capacity_frees(self, stack):
        cluster, ks = stack
        env = cluster.env
        ks.policy_layer.create_namespace("t1", gpu_quota=0.5, on_exceeded="queue")
        submit(ks, "a", request=0.5, namespace="t1", workload=train(1.0))
        submit(ks, "b", request=0.5, namespace="t1", workload=train(1.0))
        done = env.process(ks.wait_all_terminal(["a", "b"], namespace="t1"))
        env.run(until=done)
        assert ks.get("b", namespace="t1").status.phase.value == "Succeeded"

    def test_unqueue_is_strict_fifo(self, stack):
        cluster, ks = stack
        env = cluster.env
        ks.policy_layer.create_namespace("t1", gpu_quota=1.0, on_exceeded="queue")
        submit(ks, "a", request=1.0, namespace="t1", workload=train(2.0))
        env.run(until=0.5)
        # big queued first, then a small one that WOULD fit once a little
        # capacity frees — it must still wait behind the big job.
        submit(ks, "big", request=1.0, namespace="t1", workload=train(1.0))
        env.run(until=0.6)
        submit(ks, "small", request=0.2, namespace="t1", workload=train(1.0))
        done = env.process(
            ks.wait_all_terminal(["a", "big", "small"], namespace="t1")
        )
        env.run(until=done)
        big = ks.get("big", namespace="t1")
        small = ks.get("small", namespace="t1")
        assert big.status.start_time <= small.status.start_time

"""Shared fixtures for the test suite."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def small_cluster(env):
    """A started 2-node / 2-GPU-per-node cluster (4 GPUs total)."""
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2))
    return cluster.start()


def run_process(env, gen, **kwargs):
    """Run *gen* as a process to completion and return its value."""
    proc = env.process(gen, **kwargs)
    env.run(until=proc)
    return proc.value

"""Shared fixtures for the test suite."""

import pytest

from repro.analysis.resets import reset_all
from repro.cluster import Cluster, ClusterConfig
from repro.sim import Environment


@pytest.fixture(autouse=True)
def _fresh_process_state():
    """Reset every registered piece of process-global mutable state
    (GPUID/UID/pointer counters, ...) so each test runs as if in a fresh
    process. Modules register their own hooks via
    :func:`repro.analysis.resets.register_reset`; nothing is hand-listed
    here, so new global state can never be silently forgotten."""
    reset_all()


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def small_cluster(env):
    """A started 2-node / 2-GPU-per-node cluster (4 GPUs total)."""
    cluster = Cluster(env, ClusterConfig(nodes=2, gpus_per_node=2))
    return cluster.start()


def run_process(env, gen, **kwargs):
    """Run *gen* as a process to completion and return its value."""
    proc = env.process(gen, **kwargs)
    env.run(until=proc)
    return proc.value

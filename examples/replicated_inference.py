#!/usr/bin/env python3
"""Higher-level controllers over sharePods (paper §4.6 compatibility).

KubeShare's operator design means stock controllers integrate by simply
creating SharePods instead of Pods. This example runs a ReplicaSet whose
replicas are fractional-GPU inference servers: four replicas at
gpu_request 0.25 all fit on a single physical GPU, then the set is scaled
down and the freed capacity is released.

Run:  python examples/replicated_inference.py
"""

from repro import Cluster, ClusterConfig, KubeShare
from repro.cluster.controllers import ReplicaSet, ReplicaSetController
from repro.cluster.objects import LabelSelector, ObjectMeta, PodPhase
from repro.core.sharepod import SharePod, SharePodSpec
from repro.metrics.reporting import ascii_table


def main() -> None:
    cluster = Cluster(config=ClusterConfig(nodes=2, gpus_per_node=2)).start()
    kubeshare = KubeShare(cluster, isolation="token").start()

    def sharepod_factory(rs: ReplicaSet, name: str) -> SharePod:
        sp = SharePod(
            metadata=ObjectMeta(name=name, namespace=rs.metadata.namespace),
            spec=SharePodSpec(
                gpu_request=0.25,
                gpu_limit=0.5,
                gpu_mem=0.2,
                # pack all replicas of this service onto one device
                sched_affinity="serve-deeplab",
            ),
        )
        sp.metadata.labels = dict(rs.template_labels)
        sp.metadata.owner_references = [rs.metadata.key]
        return sp

    ReplicaSetController(cluster.env, cluster.api, pod_factory=sharepod_factory).start()

    replicaset = ReplicaSet(
        metadata=ObjectMeta(name="deeplab"),
        replicas=4,
        selector=LabelSelector({"app": "deeplab"}),
        template_labels={"app": "deeplab"},
    )
    cluster.api.create(replicaset)
    cluster.env.run(until=20)

    def live_replicas():
        return [
            sp
            for sp in cluster.api.list("SharePod")
            if sp.metadata.labels.get("app") == "deeplab"
            and sp.status.phase in (PodPhase.PENDING, PodPhase.RUNNING)
        ]

    replicas = live_replicas()
    rows = [
        (sp.name, str(sp.status.phase.value), sp.spec.gpu_id, sp.status.gpu_uuid)
        for sp in sorted(replicas, key=lambda s: s.name)
    ]
    print(ascii_table(["replica", "phase", "GPUID", "physical UUID"], rows,
                      title="ReplicaSet of 4 fractional-GPU serving replicas:"))
    uuids = {sp.status.gpu_uuid for sp in replicas}
    print(f"\nPhysical GPUs used by 4 replicas: {len(uuids)} "
          f"(affinity packs them together)")

    cluster.api.patch("ReplicaSet", "deeplab", lambda rs: setattr(rs, "replicas", 1))
    cluster.env.run(until=40)
    print(f"After scaling replicas 4 → 1: {len(live_replicas())} replica left, "
          f"vGPU pool size {len(kubeshare.pool)}")


if __name__ == "__main__":
    main()

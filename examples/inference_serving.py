#!/usr/bin/env python3
"""Inference serving under load: KubeShare vs native Kubernetes.

Recreates the paper's §5.3 scenario at a small scale: a Poisson stream of
TF-Serving-style inference jobs (GPU demand ~ N(0.3, 0.1²), ~4 GB model
each) hits a cluster whose GPUs can each comfortably serve several of
them. Native Kubernetes parks one job per GPU; KubeShare packs them onto
shared vGPUs, roughly doubling throughput.

Run:  python examples/inference_serving.py [--jobs N] [--rate JOBS_PER_MIN]
"""

import argparse

from repro.baselines import KubeShareSystem, NativeKubernetes
from repro.experiments.common import run_inference_workload
from repro.metrics.reporting import ascii_table
from repro.workloads import WorkloadGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=40, help="number of jobs")
    parser.add_argument(
        "--rate", type=float, default=60.0, help="arrival rate (jobs/min)"
    )
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--gpus-per-node", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    rows = []
    for system_cls in (NativeKubernetes, KubeShareSystem):
        workload = WorkloadGenerator(args.seed).inference_workload(
            n_jobs=args.jobs,
            jobs_per_minute=args.rate,
            demand_mean=0.3,
            demand_std=0.1,
            duration=40.0,
        )
        result = run_inference_workload(
            system_cls,
            workload,
            nodes=args.nodes,
            gpus_per_node=args.gpus_per_node,
        )
        rows.append(
            (
                result.system,
                result.throughput_jobs_per_min,
                result.makespan,
                result.failed_jobs,
            )
        )

    print(
        ascii_table(
            ["system", "throughput (jobs/min)", "makespan (s)", "failed"],
            rows,
            title=f"{args.jobs} inference jobs at {args.rate:.0f} jobs/min on "
            f"{args.nodes * args.gpus_per_node} GPUs:",
        )
    )
    k8s, kubeshare = rows[0][1], rows[1][1]
    print(f"\nGPU sharing gain: {kubeshare / k8s:.2f}x")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: share one GPU between two training jobs with KubeShare.

Builds a simulated 2-node cluster (paper-testbed flavour), attaches the
KubeShare operator, and submits two sharePods whose gpu_requests sum to
0.7 — so Algorithm 1 packs them onto a single vGPU and the token-based
device library isolates them elastically.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, KubeShare
from repro.cluster.objects import PodPhase
from repro.metrics.reporting import ascii_table
from repro.workloads import TrainingJob


def main() -> None:
    cluster = Cluster(config=ClusterConfig(nodes=2, gpus_per_node=2)).start()
    kubeshare = KubeShare(cluster, isolation="token").start()

    # Two ResNet-style training jobs; requests sum to 0.7 ≤ 1.0 so they can
    # share a device. Limits above requests leave room for elastic bursts.
    jobs = {
        "train-a": TrainingJob("train-a", steps=200, step_work=0.05),
        "train-b": TrainingJob("train-b", steps=300, step_work=0.05),
    }
    specs = {"train-a": (0.3, 0.6), "train-b": (0.4, 0.8)}
    for name, job in jobs.items():
        request, limit = specs[name]
        sharepod = kubeshare.make_sharepod(
            name,
            gpu_request=request,
            gpu_limit=limit,
            gpu_mem=0.25,
            workload=job.workload(),
        )
        kubeshare.submit(sharepod)

    done = cluster.env.process(kubeshare.wait_all_terminal(list(jobs)))
    cluster.env.run(until=done)

    rows = []
    for name in jobs:
        sp = kubeshare.get(name)
        assert sp.status.phase is PodPhase.SUCCEEDED, sp.status.message
        rows.append(
            (
                name,
                sp.spec.gpu_id,
                sp.status.gpu_uuid,
                sp.spec.node_name,
                sp.status.finish_time - sp.status.start_time,
            )
        )
    print(
        ascii_table(
            ["sharePod", "GPUID (vGPU)", "physical UUID", "node", "duration (s)"],
            rows,
            title="Both jobs shared one first-class vGPU:",
        )
    )
    a, b = (kubeshare.get(n) for n in jobs)
    assert a.status.gpu_uuid == b.status.gpu_uuid, "expected co-location!"
    print(f"\nSimulated wall clock: {cluster.env.now:.1f}s; "
          f"vGPUs created: {kubeshare.devmgr.vgpus_created_total}, "
          f"released after use: {kubeshare.devmgr.vgpus_released_total}")


if __name__ == "__main__":
    main()

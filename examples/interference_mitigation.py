#!/usr/bin/env python3
"""Mitigating interference with device-level anti-affinity (paper §5.5).

Job B under-requests: it asks for 45% of a GPU but actually uses ~75% when
alone, so two Bs sharing a device both slow down by ~1.5x. Because
KubeShare treats GPUs as first-class resources, the user can attach a
``sched_anti_affinity`` label to B — forcing Bs onto different devices —
something no device-plugin or scheduler-extender system can express.

This example packs two Job Bs with and without the label and shows the
per-job slowdown disappear.

Run:  python examples/interference_mitigation.py
"""

from repro import Cluster, ClusterConfig, KubeShare
from repro.cluster.objects import PodPhase
from repro.metrics.reporting import ascii_table
from repro.workloads import ANTI_AFFINITY_LABEL, JOB_B


def run_pair(use_anti_affinity: bool):
    cluster = Cluster(config=ClusterConfig(nodes=1, gpus_per_node=2)).start()
    kubeshare = KubeShare(cluster, isolation="token").start()
    names = ["job-b-0", "job-b-1"]
    for name in names:
        sharepod = kubeshare.make_sharepod(
            name,
            gpu_request=JOB_B.gpu_request,
            gpu_limit=JOB_B.gpu_limit,
            gpu_mem=JOB_B.gpu_mem,
            workload=JOB_B.job(name).workload(),
            anti_affinity=ANTI_AFFINITY_LABEL if use_anti_affinity else None,
        )
        kubeshare.submit(sharepod)
    done = cluster.env.process(kubeshare.wait_all_terminal(names))
    cluster.env.run(until=done)

    durations, uuids = [], set()
    for name in names:
        sp = kubeshare.get(name)
        assert sp.status.phase is PodPhase.SUCCEEDED, sp.status.message
        durations.append(sp.status.finish_time - sp.status.start_time)
        uuids.add(sp.status.gpu_uuid)
    return durations, len(uuids)


def main() -> None:
    baseline = JOB_B.standalone_duration
    rows = []
    for use_anti in (False, True):
        durations, n_gpus = run_pair(use_anti)
        rows.append(
            (
                "with anti-affinity" if use_anti else "no constraint",
                n_gpus,
                max(durations),
                max(durations) / baseline,
            )
        )
    print(
        ascii_table(
            ["setting", "GPUs used", "slowest job (s)", "slowdown vs alone"],
            rows,
            title="Two under-requesting jobs (B+B), standalone duration "
            f"{baseline:.0f}s:",
        )
    )
    print(
        "\nWithout the label both Bs share one GPU and suffer ~1.5x; the "
        "anti-affinity label spreads them and restores full speed."
    )


if __name__ == "__main__":
    main()

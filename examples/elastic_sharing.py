#!/usr/bin/env python3
"""Elastic GPU allocation with the vGPU device library (paper Figure 6).

Drives the token backend + LD_PRELOAD-style frontend directly (no cluster
needed): three training jobs with staggered arrivals share one GPU, and
the printed timeline shows the elastic staircase — a lone job bursts up to
its gpu_limit, residual capacity is split fairly, and once requests sum to
1.0 everyone settles at exactly its guarantee.

Run:  python examples/elastic_sharing.py
"""

from repro.experiments.fig6 import DEFAULT_JOBS, run
from repro.metrics.reporting import ascii_table, format_series


def main() -> None:
    print("Jobs (arrival, gpu_request, gpu_limit):")
    for cfg in DEFAULT_JOBS:
        print(
            f"  {cfg.name}: t={cfg.arrival:>5.0f}s  request={cfg.gpu_request}"
            f"  limit={cfg.gpu_limit}  work={cfg.work:.0f} GPU-seconds"
        )
    result = run()

    windows = [
        ("A alone (burst to limit)", 60.0, 195.0),
        ("A+B (fair residual)", 260.0, 395.0),
        ("A+B+C (at requests)", 460.0, 640.0),
    ]
    rows = [
        (label, *(result.window_mean(j, t0, t1) for j in "ABC"))
        for label, t0, t1 in windows
    ]
    print()
    print(
        ascii_table(
            ["phase", "A usage", "B usage", "C usage"],
            rows,
            title="Measured per-container GPU usage (device library view):",
        )
    )
    print()
    for name in "ABC":
        print(format_series(result.usage[name].resample(60.0), max_points=12))
        print()
    finishes = ", ".join(
        f"{k} at {v:.0f}s" for k, v in sorted(result.finish_times.items())
    )
    print(f"completions: {finishes}")


if __name__ == "__main__":
    main()

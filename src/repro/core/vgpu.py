"""vGPU objects and the vGPU pool (paper §4.4).

A *vGPU* is a physical GPU that KubeShare has acquired from Kubernetes
(via a placeholder native pod) and made shareable. Each vGPU carries a
unique virtual identifier — the **GPUID** — which is what makes GPUs
first-class, explicitly bindable entities; KubeShare-DevMgr maintains the
GPUID → physical-UUID mapping.

Lifecycle: ``CREATING`` (placeholder pod launched, UUID unknown) →
``ACTIVE`` (attached to ≥1 sharePod) ↔ ``IDLE`` (no sharePods attached) →
``DELETING`` (placeholder released back to Kubernetes).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from ..analysis.resets import register_reset

__all__ = [
    "VGPUPhase",
    "VGPU",
    "VGPUPool",
    "new_gpuid",
    "reset_gpuid_counter",
    "PLACEHOLDER_PREFIX",
    "placeholder_gpuid",
]

#: Placeholder pods are named ``vgpu-holder-<gpuid>`` — deterministically,
#: so a vGPU's placeholder can be recognized (and its creation retried
#: idempotently) by any controller instance, including a freshly promoted
#: leader rebuilding state after a failover.
PLACEHOLDER_PREFIX = "vgpu-holder-"

_gpuid_counter = itertools.count(1)


def new_gpuid() -> str:
    """Generate a fresh hashed GPUID (the paper's ``new_dev()``)."""
    seq = next(_gpuid_counter)
    digest = hashlib.sha1(f"vgpu-{seq}".encode()).hexdigest()[:8]
    return f"vgpu-{digest}"


@register_reset("repro.core.vgpu.gpuid_counter")
def reset_gpuid_counter() -> None:
    """Restart GPUID generation from 1 (a fresh control plane's counter).

    GPUIDs only need to be unique within one cluster; simulations that
    must replay bit-for-bit (same seed ⇒ identical placement, including
    Algorithm 1's GPUID-ordered tie-breaks) call this at scenario start
    so the sequence does not depend on what ran earlier in the process.
    """
    global _gpuid_counter
    _gpuid_counter = itertools.count(1)


def placeholder_gpuid(pod_name: str) -> str:
    """The GPUID encoded in a placeholder pod's name."""
    return pod_name[len(PLACEHOLDER_PREFIX):]


class VGPUPhase(str, Enum):
    CREATING = "Creating"
    ACTIVE = "Active"
    IDLE = "Idle"
    DELETING = "Deleting"


@dataclass
class VGPU:
    """One shareable GPU in the pool."""

    gpuid: str
    phase: VGPUPhase = VGPUPhase.CREATING
    #: Physical device UUID (known once the placeholder pod is running).
    uuid: Optional[str] = None
    node_name: Optional[str] = None
    #: Name of the placeholder pod holding the physical allocation.
    placeholder_pod: Optional[str] = None
    #: Keys (namespace/name) of sharePods attached to this vGPU.
    attached: Set[str] = field(default_factory=set)
    created_at: Optional[float] = None
    idle_since: Optional[float] = None

    @property
    def materialized(self) -> bool:
        return self.uuid is not None

    @property
    def idle(self) -> bool:
        return not self.attached


class VGPUPool:
    """All vGPUs managed by KubeShare-DevMgr, keyed by GPUID."""

    def __init__(self) -> None:
        self._by_gpuid: Dict[str, VGPU] = {}
        #: membership version — bumped on add/remove. Pool mutations bypass
        #: etcd (DevMgr owns the pool in-process), so derived caches (the
        #: scheduler's device-view index) compare this instead of listening
        #: on a write stream. Only *membership* matters to Algorithm 1's
        #: views: per-vGPU fields (phase, uuid, attached) never feed them.
        self.version = 0

    def __contains__(self, gpuid: str) -> bool:
        return gpuid in self._by_gpuid

    def __len__(self) -> int:
        return len(self._by_gpuid)

    def get(self, gpuid: str) -> Optional[VGPU]:
        return self._by_gpuid.get(gpuid)

    def add(self, vgpu: VGPU) -> VGPU:
        if vgpu.gpuid in self._by_gpuid:
            raise ValueError(f"vGPU {vgpu.gpuid} already in pool")
        self._by_gpuid[vgpu.gpuid] = vgpu
        self.version += 1
        return vgpu

    def remove(self, gpuid: str) -> Optional[VGPU]:
        removed = self._by_gpuid.pop(gpuid, None)
        if removed is not None:
            self.version += 1
        return removed

    def list(self) -> List[VGPU]:
        return sorted(self._by_gpuid.values(), key=lambda v: v.gpuid)

    def idle_vgpus(self) -> List[VGPU]:
        return [v for v in self.list() if v.idle and v.phase is not VGPUPhase.DELETING]

    def by_uuid(self, uuid: str) -> Optional[VGPU]:
        for v in self._by_gpuid.values():
            if v.uuid == uuid:
                return v
        return None

    def by_placeholder(self, pod_name: str) -> Optional[VGPU]:
        for v in self._by_gpuid.values():
            if v.placeholder_pod == pod_name:
                return v
        return None

    def gpuid_to_uuid(self, gpuid: str) -> Optional[str]:
        """The GPUID → UUID mapping DevMgr maintains (§4.4)."""
        v = self._by_gpuid.get(gpuid)
        return v.uuid if v else None

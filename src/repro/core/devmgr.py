"""KubeShare-DevMgr: vGPU lifecycle and explicit pod↔device binding (§4.4).

DevMgr is the second of KubeShare's two custom controllers. For every
SharePod that KubeShare-Sched (or the user) has assigned a GPUID, it:

1. **materializes the vGPU** if the GPUID is new — by creating a native
   *placeholder pod* that requests ``nvidia.com/gpu: 1`` through the
   ordinary Kubernetes machinery (so KubeShare co-exists with
   kube-scheduler rather than replacing it), then reading the physical
   UUID from ``NVIDIA_VISIBLE_DEVICES`` inside the launched container and
   recording the GPUID → UUID mapping;
2. **creates the real pod** pinned to the vGPU's node, with the device
   attached by env-var injection (``NVIDIA_VISIBLE_DEVICES=<UUID>``) and
   the vGPU device library installed (``LD_PRELOAD`` + the
   ``KUBESHARE_*`` configuration variables) to isolate its GPU usage;
3. **mirrors** the real pod's phase back onto the SharePod status;
4. **manages idle vGPUs** per the configured pool policy — on-demand
   release (the paper's choice), reservation, or hybrid.
"""

from __future__ import annotations

import copy
from typing import Dict, Generator, List, Optional

from ..cluster.apiserver import (
    AlreadyExists,
    APIServer,
    NotFound,
    ServiceUnavailable,
    translate_event,
)
from ..cluster.controller import Controller
from ..cluster.etcd import WatchEventType
from ..cluster.objects import (
    GPU_RESOURCE,
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
)
from ..gpu.frontend import (
    DEVICE_LIB_SONAME,
    ENV_ISOLATION,
    ENV_LIMIT,
    ENV_MEM,
    ENV_REQUEST,
)
from ..obs import runtime as obs
from ..policy.objects import ANN_REQUEUE_COUNT
from ..policy.revocation import (
    eviction_of,
    finish_eviction,
    requeue_backoff,
    safe_delete,
)
from ..sim import Environment
from .policies import OnDemandPolicy, PoolPolicy
from .sharepod import SharePod
from .vgpu import (
    PLACEHOLDER_PREFIX,
    VGPU,
    VGPUPhase,
    VGPUPool,
    new_gpuid,
    placeholder_gpuid,
)

__all__ = ["KubeShareDevMgr", "PLACEHOLDER_PREFIX"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


class KubeShareDevMgr(Controller):
    """The vGPU/device-manager controller."""

    kind = "SharePod"
    #: concurrent reconciles (see KubeShareSched.workers).
    workers = 16

    def __init__(
        self,
        env: Environment,
        api: APIServer,
        pool: VGPUPool,
        policy: Optional[PoolPolicy] = None,
        isolation: str = "token",
        op_latency: float = 0.06,
    ) -> None:
        if isolation not in ("token", "fluid"):
            raise ValueError(f"unknown isolation mode {isolation!r}")
        super().__init__(env, api, name="kubeshare-devmgr")
        self.pool = pool
        self.policy = policy or OnDemandPolicy()
        self.isolation = isolation
        #: API-roundtrip cost of binding a container to its vGPU and
        #: installing the device library (calibrated — EXPERIMENTS.md).
        self.op_latency = op_latency
        #: sharePod key -> gpuid, for detach bookkeeping after deletion.
        self._bound: Dict[str, str] = {}
        #: sharePod keys whose real pod has been created.
        self._pod_created: set[str] = set()
        #: timing records for the Figure 10 experiment.
        self.timings: Dict[str, Dict[str, float]] = {}
        self.vgpus_created_total = 0
        self.vgpus_released_total = 0
        self.vgpus_torn_down_total = 0
        self.sharepods_rescheduled_total = 0
        self.sharepods_evicted_total = 0
        #: requeue backoff for evicted SharePods (see the policy layer).
        self.requeue_base = 0.5
        self.requeue_cap = 8.0
        #: sharePod key -> armed drain-deadline timer process.
        self._drain_timers: Dict[str, object] = {}
        self._aux_procs: list = []
        self._aux_streams: list = []

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "KubeShareDevMgr":
        super().start()
        self._aux_procs = [
            self.env.process(self._watch_pods(), name="devmgr:pod-watch"),
            self.env.process(self._watch_nodes(), name="devmgr:node-watch"),
        ]
        return self

    def stop(self) -> None:
        """Stop everything, including the auxiliary pod/node watchers."""
        super().stop()
        for stream in self._aux_streams:
            stream.close()
        self._aux_streams = []
        for proc in self._aux_procs:
            if proc.is_alive:
                proc.kill()
        self._aux_procs = []
        # Drain timers die with the instance; the eviction state survives
        # in SharePod annotations, so a successor re-arms from there.
        for proc in self._drain_timers.values():
            if proc.is_alive:
                proc.kill()
        self._drain_timers = {}

    def rebuild_state(self) -> None:
        """Crash-safe rebuild of the in-memory view from the apiserver.

        A freshly promoted leader relists SharePods and Pods and
        reconstructs the vGPU pool (GPUID ↔ UUID ↔ node, from the
        deterministically named placeholder pods), the sharePod ↔ vGPU
        binding map, and the created-real-pod set — no informer cache or
        predecessor memory is trusted across a failover. Idle vGPUs found
        during the rebuild fall under the pool policy exactly as if their
        last sharePod had just detached.
        """
        pods = self.api.list("Pod")
        pod_names = {(p.metadata.namespace, p.name) for p in pods}
        for pod in pods:
            if not pod.name.startswith(PLACEHOLDER_PREFIX):
                continue
            gpuid = placeholder_gpuid(pod.name)
            if self.pool.get(gpuid) is not None:
                continue
            vgpu = VGPU(gpuid=gpuid, created_at=pod.metadata.creation_time)
            vgpu.placeholder_pod = pod.name
            if pod.status.phase is PodPhase.RUNNING:
                uuid = pod.status.container_env.get("NVIDIA_VISIBLE_DEVICES", "")
                vgpu.uuid = uuid.split(",")[0] if uuid else None
                vgpu.node_name = pod.spec.node_name
            self.pool.add(vgpu)
        for sp in self.api.list("SharePod"):
            key = sp.metadata.key
            if sp.spec.gpu_id is None or sp.status.phase in _TERMINAL:
                continue
            vgpu = self.pool.get(sp.spec.gpu_id)
            if vgpu is None:
                continue  # reconcile recreates the placeholder idempotently
            vgpu.attached.add(key)
            self._bound[key] = vgpu.gpuid
            if vgpu.materialized:
                vgpu.phase = VGPUPhase.ACTIVE
                vgpu.idle_since = None
            if (sp.metadata.namespace, sp.name) in pod_names:
                self._pod_created.add(key)
        for vgpu in self.pool.idle_vgpus():
            vgpu.phase = VGPUPhase.IDLE
            vgpu.idle_since = self.env.now
            if self.policy.release_on_idle(self.pool, vgpu):
                self._release(vgpu)
            elif self.policy.idle_ttl is not None:
                self.env.process(self._ttl_watch(vgpu, vgpu.idle_since))

    def _watch_pods(self) -> Generator:
        """React to placeholder and real pod changes by requeuing owners."""
        stream = self.api.watch("Pod", replay=True)
        self._aux_streams.append(stream)
        while True:
            raw = yield stream.get()
            _etype, pod = translate_event(raw)
            if pod is None:
                continue
            if pod.name.startswith(PLACEHOLDER_PREFIX):
                vgpu = self.pool.by_placeholder(pod.name)
                if vgpu is not None:
                    for key in sorted(vgpu.attached):
                        self.queue.add(key)
            else:
                for owner in pod.metadata.owner_references:
                    if owner.startswith("sharepod:"):
                        self.queue.add(owner.split(":", 1)[1])

    def _watch_nodes(self) -> Generator:
        """Tear down vGPUs whose physical GPU or node is gone.

        Two signals arrive on the Node object: ``ready`` flips false when
        the lifecycle controller declares the node dead, and
        ``unhealthy_gpus`` lists devices the kubelet's plugin reported
        failed (an ECC error on an otherwise healthy node)."""
        stream = self.api.watch("Node", replay=True)
        self._aux_streams.append(stream)
        while True:
            raw = yield stream.get()
            etype, node = translate_event(raw)
            if node is None:
                continue
            try:
                if etype is WatchEventType.DELETE or not node.status.ready:
                    for vgpu in self.pool.list():
                        if vgpu.node_name == node.name:
                            self._teardown_vgpu(vgpu, f"node {node.name} lost")
                else:
                    for uuid in node.status.unhealthy_gpus:
                        vgpu = self.pool.by_uuid(uuid)
                        if vgpu is not None:
                            self._teardown_vgpu(vgpu, f"GPU {uuid} failed")
            except ServiceUnavailable:
                continue  # outage: node events will repeat once it heals

    # -- event routing ----------------------------------------------------------
    def filter(self, etype: WatchEventType, obj: SharePod) -> bool:
        return True  # deletions matter too (detach)

    # -- reconcile -----------------------------------------------------------------
    def reconcile(self, key: str) -> Generator:
        namespace, name = key.split("/", 1)
        sp = self.api.get("SharePod", name, namespace)
        if sp is None:
            yield from self._handle_deleted(key, namespace, name)
            return
        if sp.spec.gpu_id is None:
            return  # waiting for KubeShare-Sched
        if sp.status.phase in _TERMINAL:
            self._detach(key)
            return
        if sp.metadata.annotations:
            eviction = eviction_of(sp)
            if eviction is not None:
                yield from self._drain(sp, key, eviction)
                return

        timing = self.timings.setdefault(key, {})
        timing.setdefault("sharepod_created", sp.metadata.creation_time or 0.0)

        vgpu = self.pool.get(sp.spec.gpu_id)
        if vgpu is None:
            vgpu = self._create_vgpu(sp, timing)
        vgpu.attached.add(key)
        self._bound[key] = vgpu.gpuid

        if not vgpu.materialized:
            yield from self._try_materialize(vgpu, timing)
            if not vgpu.materialized:
                return  # placeholder still pending; pod watch requeues us

        vgpu.phase = VGPUPhase.ACTIVE
        vgpu.idle_since = None

        if key not in self._pod_created:
            self._pod_created.add(key)
            if self.op_latency > 0:
                yield self.env.timeout(self.op_latency)
            # Re-read after resuming: the SharePod may have been deleted or
            # completed while we were suspended (materialization wait + op
            # latency), and the real pod must not be created from the stale
            # pre-yield snapshot.
            try:
                fresh = self.api.get("SharePod", name, namespace)
            except ServiceUnavailable:
                # Outage mid-reconcile: undo the dedupe mark and let the
                # worker requeue this key with backoff once the API heals.
                self._pod_created.discard(key)
                raise
            if fresh is None:
                yield from self._handle_deleted(key, namespace, name)
                return
            if fresh.status.phase in _TERMINAL:
                self._detach(key)
                return
            sp = fresh
            self._create_real_pod(sp, vgpu, timing)

        self._mirror_pod_status(sp, key, timing)
        return

    # -- vGPU creation ----------------------------------------------------------------
    def _create_vgpu(self, sp: SharePod, timing: Dict[str, float]) -> VGPU:
        """Acquire a GPU from Kubernetes by launching a placeholder pod."""
        gpuid = sp.spec.gpu_id
        vgpu = VGPU(gpuid=gpuid, created_at=self.env.now)
        vgpu.placeholder_pod = f"{PLACEHOLDER_PREFIX}{gpuid}"
        self.pool.add(vgpu)
        placeholder = Pod(
            metadata=ObjectMeta(
                name=vgpu.placeholder_pod,
                # Always the default namespace: a vGPU is cluster
                # infrastructure shared across tenants, and every later
                # lookup/teardown of the placeholder is namespace-default.
                namespace="default",
                labels={"app": "kubeshare-vgpu"},
            ),
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        name="holder",
                        image="kubeshare/vgpu-holder",
                        requests={"cpu": 0.1, GPU_RESOURCE: 1},
                    )
                ],
                node_name=sp.spec.node_name,  # honour a user-pinned node
                workload=None,  # allocates the GPU without running work
            ),
        )
        try:
            self.api.create(placeholder)
        except AlreadyExists:  # pragma: no cover - idempotent retry
            pass
        timing["vgpu_requested"] = self.env.now
        self.vgpus_created_total += 1
        obs.event(
            "VGPUCreated",
            f"vGPU {gpuid} requested via placeholder {vgpu.placeholder_pod}",
            involved_kind="SharePod",
            involved_name=sp.name,
            involved_namespace=sp.metadata.namespace,
            source=self.name,
        )
        return vgpu

    def _try_materialize(self, vgpu: VGPU, timing: Dict[str, float]) -> Generator:
        """Read the physical UUID out of the running placeholder pod."""
        pod = self.api.get("Pod", vgpu.placeholder_pod)
        if pod is None:
            # The placeholder vanished (evicted with a dead node before we
            # ever materialized). Drop the vGPU and raise so the retry path
            # recreates it from scratch.
            self.pool.remove(vgpu.gpuid)
            raise RuntimeError(
                f"placeholder for {vgpu.gpuid} disappeared before materializing"
            )
        if pod.status.phase is PodPhase.RUNNING:
            uuid = pod.status.container_env.get("NVIDIA_VISIBLE_DEVICES", "")
            vgpu.uuid = uuid.split(",")[0] if uuid else None
            vgpu.node_name = pod.spec.node_name
            timing["vgpu_ready"] = self.env.now
            obs.event(
                "VGPUMaterialized",
                f"vGPU {vgpu.gpuid} bound to physical GPU {vgpu.uuid} "
                f"on {vgpu.node_name}",
                involved_kind="Pod",
                involved_name=vgpu.placeholder_pod,
                involved_namespace=pod.metadata.namespace,
                source=self.name,
            )
        elif pod.status.phase is PodPhase.FAILED:
            # Could not acquire a GPU; retry by recreating the placeholder.
            self.api.try_delete("Pod", vgpu.placeholder_pod)
            self.pool.remove(vgpu.gpuid)
            raise RuntimeError(
                f"placeholder for {vgpu.gpuid} failed: {pod.status.message}"
            )
        return
        yield  # pragma: no cover - generator by contract

    # -- real pod -----------------------------------------------------------------------
    def _create_real_pod(
        self, sp: SharePod, vgpu: VGPU, timing: Dict[str, float]
    ) -> None:
        """Explicit binding: launch the workload pod on the vGPU's node with
        the device attached and the device library installed."""
        pod_spec = copy.copy(sp.spec.pod_spec)
        pod_spec.containers = [copy.deepcopy(c) for c in sp.spec.pod_spec.containers]
        pod_spec.node_name = vgpu.node_name
        container = pod_spec.containers[0]
        # sharePods never request integer GPUs through the device plugin.
        container.requests.pop(GPU_RESOURCE, None)
        container.env.update(
            {
                "NVIDIA_VISIBLE_DEVICES": vgpu.uuid or "",
                "LD_PRELOAD": DEVICE_LIB_SONAME,
                ENV_REQUEST: str(sp.spec.gpu_request),
                ENV_LIMIT: str(sp.spec.gpu_limit),
                ENV_MEM: str(sp.spec.gpu_mem),
                ENV_ISOLATION: self.isolation,
            }
        )
        pod = Pod(
            metadata=ObjectMeta(
                name=sp.name,
                namespace=sp.metadata.namespace,
                labels=dict(sp.metadata.labels),
                owner_references=[f"sharepod:{sp.metadata.key}"],
            ),
            spec=pod_spec,
        )
        try:
            self.api.create(pod)
        except AlreadyExists:  # pragma: no cover - idempotent retry
            pass
        timing["pod_created"] = self.env.now

        def mutate(obj: SharePod) -> None:
            obj.spec.node_name = vgpu.node_name
            obj.status.pod_name = sp.name
            obj.status.gpu_uuid = vgpu.uuid

        try:
            self.api.patch("SharePod", sp.name, mutate, sp.metadata.namespace)
        except NotFound:  # pragma: no cover - concurrent delete
            pass
        obs.event(
            "Bound",
            f"pod {sp.name} bound to vGPU {vgpu.gpuid} "
            f"(GPU {vgpu.uuid}) on node {vgpu.node_name}",
            involved_kind="SharePod",
            involved_name=sp.name,
            involved_namespace=sp.metadata.namespace,
            source=self.name,
        )

    def _mirror_pod_status(
        self, sp: SharePod, key: str, timing: Dict[str, float]
    ) -> None:
        pod = self.api.get("Pod", sp.name, sp.metadata.namespace)
        if pod is None:
            return
        phase = pod.status.phase
        if phase is sp.status.phase:
            return
        if (
            phase is PodPhase.FAILED
            and sp.spec.restart_policy == "reschedule"
            and self._infra_failure(pod.status.message or "")
        ):
            # The pod died with its infrastructure, not on its own merits;
            # recover instead of mirroring a terminal failure.
            self._recover_sharepod(sp, key, pod.status.message or "infra failure")
            return
        if phase is PodPhase.RUNNING and "pod_running" not in timing:
            timing["pod_running"] = self.env.now

        def mutate(obj: SharePod) -> None:
            obj.status.phase = phase
            obj.status.message = pod.status.message
            obj.status.start_time = pod.status.start_time
            obj.status.finish_time = pod.status.finish_time

        try:
            self.api.patch("SharePod", sp.name, mutate, sp.metadata.namespace)
        except NotFound:
            return
        if phase is PodPhase.RUNNING:
            obs.sharepod_running(key)
        elif phase is PodPhase.FAILED:
            obs.sharepod_failed(key, pod.status.message or "pod failed")
        if phase in _TERMINAL:
            self._detach(key)

    # -- graceful revocation (policy layer) ---------------------------------
    def _drain(self, sp: SharePod, key: str, eviction) -> Generator:
        """Graceful eviction: wait out the drain window, then tear down.

        The eviction request lives in the SharePod's annotations (written
        by the preemptor), so this path is crash-safe: a freshly promoted
        DevMgr re-arms the drain from apiserver state, and a drain whose
        deadline passed while nobody was leading is forced immediately.
        """
        pod = self.api.get("Pod", sp.name, sp.metadata.namespace)
        if pod is not None and pod.status.phase in _TERMINAL:
            # The workload finished inside its drain window: completion
            # wins, and the normal mirror/detach path applies.
            self._mirror_pod_status(sp, key, self.timings.setdefault(key, {}))
            return
        if self.env.now >= eviction.deadline - 1e-9:
            self._drain_timers.pop(key, None)
            yield from self._evict_now(sp, key, eviction)
            return
        if key not in self._drain_timers:
            obs.event(
                "Evicting",
                f"drain window open until t={eviction.deadline:g} "
                f"({eviction.reason})",
                involved_kind="SharePod",
                involved_name=sp.name,
                involved_namespace=sp.metadata.namespace,
                type="Warning",
                source=self.name,
            )
            self._drain_timers[key] = self.env.process(
                self._drain_timer(key, eviction.deadline - self.env.now),
                name=f"{self.name}:drain:{key}",
            )

    def _drain_timer(self, key: str, delay: float) -> Generator:
        yield self.env.timeout(delay)
        self._drain_timers.pop(key, None)
        self.queue.add(key)  # reconcile forces the teardown past the deadline

    def _evict_now(self, sp: SharePod, key: str, eviction) -> Generator:
        """Forced teardown at the drain deadline.

        Deleting the real pod drives the kubelet's container teardown,
        which stops the GPU runtime and releases its token-allocator
        registration — that is the token-reclamation step; no allocator
        back-channel is needed. Every step tolerates concurrent deletes
        (kubelet, reaper, a racing preemptor finishing first).
        """
        safe_delete(self.api, "Pod", sp.name, sp.metadata.namespace)
        self._pod_created.discard(key)
        self._detach(key)  # idle vGPU falls under the pool policy as usual
        count = int(sp.metadata.annotations.get(ANN_REQUEUE_COUNT, "0") or 0) + 1
        resume_at = self.env.now + requeue_backoff(
            count, self.requeue_base, self.requeue_cap
        )

        def clear_placement(obj: SharePod) -> None:
            obj.spec.gpu_id = None
            obj.spec.node_name = None
            obj.status.phase = PodPhase.PENDING
            obj.status.pod_name = None
            obj.status.gpu_uuid = None
            obj.status.start_time = None
            obj.status.finish_time = None
            obj.status.scheduled_time = None

        finish_eviction(
            self.api, key, eviction.reason, resume_at, count, clear_placement
        )
        self.sharepods_evicted_total += 1
        obs.incr("repro_sharepods_evicted_total")
        obs.event(
            "Evicted",
            f"vGPU revoked ({eviction.reason}); requeued with backoff, "
            f"eligible again at t={resume_at:g}",
            involved_kind="SharePod",
            involved_name=sp.name,
            involved_namespace=sp.metadata.namespace,
            type="Warning",
            source=self.name,
        )
        obs.policy_decision(
            "evict",
            key,
            f"{eviction.reason}; requeue #{count} at t={resume_at:g}",
        )
        return
        yield  # pragma: no cover - generator by contract

    # -- detach & pool policy ---------------------------------------------------------------
    def _handle_deleted(self, key: str, namespace: str, name: str) -> Generator:
        self.api.try_delete("Pod", name, namespace)
        self._pod_created.discard(key)
        self._detach(key)
        return
        yield  # pragma: no cover

    def _detach(self, key: str) -> None:
        gpuid = self._bound.pop(key, None)
        if gpuid is None:
            return
        vgpu = self.pool.get(gpuid)
        if vgpu is None:
            return
        vgpu.attached.discard(key)
        if not vgpu.attached:
            vgpu.phase = VGPUPhase.IDLE
            vgpu.idle_since = self.env.now
            if self.policy.release_on_idle(self.pool, vgpu):
                self._release(vgpu)
            elif self.policy.idle_ttl is not None:
                self.env.process(self._ttl_watch(vgpu, vgpu.idle_since))

    def _ttl_watch(self, vgpu: VGPU, idle_since: float) -> Generator:
        yield self.env.timeout(self.policy.idle_ttl)
        current = self.pool.get(vgpu.gpuid)
        if (
            current is vgpu
            and vgpu.idle
            and vgpu.idle_since == idle_since
            and self.policy.release_on_ttl(self.pool, vgpu)
        ):
            self._release(vgpu)

    def _release(self, vgpu: VGPU) -> None:
        """Return the physical GPU to Kubernetes (delete the placeholder)."""
        vgpu.phase = VGPUPhase.DELETING
        if vgpu.placeholder_pod is not None:
            self.api.try_delete("Pod", vgpu.placeholder_pod)
        self.pool.remove(vgpu.gpuid)
        self.vgpus_released_total += 1

    # -- failure handling -------------------------------------------------------
    @staticmethod
    def _infra_failure(message: str) -> bool:
        """Did the pod die because the infrastructure under it died (as
        opposed to the application itself)?"""
        return any(
            marker in message
            for marker in ("DeviceLost", "crashed", "node restarted")
        )

    def _teardown_vgpu(self, vgpu: VGPU, reason: str) -> None:
        """A vGPU's physical device is gone: transition it to deletion and
        resolve every attached SharePod per its restart policy."""
        if self.pool.get(vgpu.gpuid) is not vgpu:
            return  # already torn down (events can repeat)
        self.vgpus_torn_down_total += 1
        obs.event(
            "VGPUTornDown",
            f"vGPU {vgpu.gpuid} lost its device: {reason}",
            involved_kind="GPU",
            involved_name=vgpu.uuid or vgpu.gpuid,
            type="Warning",
            source=self.name,
        )
        for key in sorted(vgpu.attached):
            namespace, name = key.split("/", 1)
            sp = self.api.get("SharePod", name, namespace)
            if sp is None or sp.status.phase in _TERMINAL:
                self._pod_created.discard(key)
                self._bound.pop(key, None)
                continue
            if sp.spec.restart_policy == "reschedule":
                self._recover_sharepod(sp, key, reason)
            else:
                self._fail_sharepod(sp, key, reason)
        vgpu.attached.clear()
        vgpu.phase = VGPUPhase.DELETING
        if vgpu.placeholder_pod is not None:
            self.api.try_delete("Pod", vgpu.placeholder_pod)
        self.pool.remove(vgpu.gpuid)
        self.vgpus_released_total += 1

    def _recover_sharepod(self, sp: SharePod, key: str, reason: str) -> None:
        """``restart_policy: reschedule`` — clear the placement and hand the
        SharePod back to KubeShare-Sched (Algorithm 1 re-runs on whatever
        capacity survives)."""
        self.api.try_delete("Pod", sp.name, sp.metadata.namespace)
        self._pod_created.discard(key)
        gpuid = self._bound.pop(key, None)
        if gpuid is not None:
            vgpu = self.pool.get(gpuid)
            if vgpu is not None:
                vgpu.attached.discard(key)

        def mutate(obj: SharePod) -> None:
            obj.spec.gpu_id = None
            obj.spec.node_name = None
            obj.status.phase = PodPhase.PENDING
            obj.status.message = f"rescheduling: {reason}"
            obj.status.pod_name = None
            obj.status.gpu_uuid = None
            obj.status.start_time = None
            obj.status.finish_time = None
            obj.status.scheduled_time = None

        try:
            self.api.patch("SharePod", sp.name, mutate, sp.metadata.namespace)
        except NotFound:
            return
        self.sharepods_rescheduled_total += 1
        obs.event(
            "Rescheduled",
            f"placement cleared, back to KubeShare-Sched: {reason}",
            involved_kind="SharePod",
            involved_name=sp.name,
            involved_namespace=sp.metadata.namespace,
            type="Warning",
            source=self.name,
        )

    def _fail_sharepod(self, sp: SharePod, key: str, reason: str) -> None:
        """``restart_policy: never`` — the SharePod dies with its device."""
        self.api.try_delete("Pod", sp.name, sp.metadata.namespace)
        self._pod_created.discard(key)
        self._bound.pop(key, None)

        def mutate(obj: SharePod) -> None:
            obj.status.phase = PodPhase.FAILED
            obj.status.message = reason
            obj.status.finish_time = self.env.now

        try:
            self.api.patch("SharePod", sp.name, mutate, sp.metadata.namespace)
        except NotFound:
            pass
        obs.sharepod_failed(key, reason)
        obs.event(
            "SharePodFailed",
            f"device lost and restart_policy is never: {reason}",
            involved_kind="SharePod",
            involved_name=sp.name,
            involved_namespace=sp.metadata.namespace,
            type="Warning",
            source=self.name,
        )

    # -- reservation prewarm -------------------------------------------------------------------
    def prewarm(self, count: int, namespace: str = "default") -> List[str]:
        """Pre-create *count* idle vGPUs (reservation mode bootstrap).

        Returns the new GPUIDs; they materialize asynchronously as their
        placeholder pods get scheduled.
        """
        gpuids: List[str] = []
        for _ in range(count):
            gpuid = new_gpuid()
            vgpu = VGPU(gpuid=gpuid, created_at=self.env.now)
            vgpu.placeholder_pod = f"{PLACEHOLDER_PREFIX}{gpuid}"
            vgpu.phase = VGPUPhase.IDLE
            self.pool.add(vgpu)
            placeholder = Pod(
                metadata=ObjectMeta(
                    name=vgpu.placeholder_pod,
                    namespace=namespace,
                    labels={"app": "kubeshare-vgpu"},
                ),
                spec=PodSpec(
                    containers=[
                        ContainerSpec(
                            name="holder",
                            image="kubeshare/vgpu-holder",
                            requests={"cpu": 0.1, GPU_RESOURCE: 1},
                        )
                    ],
                    workload=None,
                ),
            )
            self.api.create(placeholder)
            self.vgpus_created_total += 1
            gpuids.append(gpuid)
            self.env.process(self._materialize_poll(vgpu))
        return gpuids

    def _materialize_poll(self, vgpu: VGPU) -> Generator:
        """Background materialization for prewarmed vGPUs."""
        while not vgpu.materialized and self.pool.get(vgpu.gpuid) is vgpu:
            pod = self.api.get("Pod", vgpu.placeholder_pod)
            if pod is not None and pod.status.phase is PodPhase.RUNNING:
                uuid = pod.status.container_env.get("NVIDIA_VISIBLE_DEVICES", "")
                vgpu.uuid = uuid.split(",")[0] if uuid else None
                vgpu.node_name = pod.spec.node_name
                return
            yield self.env.timeout(0.2)

"""Cached, invalidation-driven device views for Algorithm 1.

The reference scheduling pass relists every SharePod, rebuilds the vGPU
pool view, and re-sorts the device list **per reconcile** — O(pods) work
per decision that dominates the control-plane profile at cluster scale.
:class:`DeviceViewIndex` memoizes those derived structures and invalidates
them with synchronous etcd commit listeners (see
:meth:`repro.cluster.etcd.Etcd.add_listener`), so a pass over an unchanged
cluster costs O(devices) copying instead of O(pods log pods) rebuilding.

Equivalence argument (why cached views can never diverge from a relist):

* Listeners run *inside* the etcd commit — before any watcher, any reader,
  or the writer itself can observe the new revision. There is no window in
  which the store has changed but the index believes its cache is fresh.
* No simulation time passes inside a scheduling pass between the (gated)
  SharePod ``get`` and the device-view construction, so the cache rebuilt
  at the same ``env.now`` reads exactly the state a relist would read.
* The SharePod currently being scheduled needs no special exclusion: its
  ``gpu_id`` is ``None`` (checked by the caller), so it contributes
  nothing to :func:`~repro.core.scheduler.build_device_views` or to the
  assigned-GPUID set either way.
* The in-process :class:`~repro.core.vgpu.VGPUPool` (single-instance
  wiring) is mutated without etcd writes; membership changes are detected
  via ``pool.version`` instead. Only membership feeds the views.

Cache rebuilds read through :meth:`Etcd.snapshot` — the untracked range
read — because they are not part of any read-modify-write cycle (the
scheduler's eventual ``patch`` still does its own tracked ``get``);
see the snapshot docstring for why tracking them would only add noise
to the race detector.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..cluster.apiserver import APIServer
from ..cluster.objects import GPU_RESOURCE, PodPhase
from .scheduler import DeviceView, build_device_views
from .vgpu import PLACEHOLDER_PREFIX, VGPU, VGPUPool, placeholder_gpuid

__all__ = ["DeviceViewIndex"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)

_SHAREPOD_PREFIX = "/registry/SharePod/"
_POD_PREFIX = "/registry/Pod/"
_NODE_PREFIX = "/registry/Node/"


class DeviceViewIndex:
    """Memoized inputs of one scheduler's Algorithm 1 passes.

    One index per scheduler instance; call :meth:`close` when the
    scheduler stops (a deposed HA leader must not leave listeners behind
    on the shared etcd).
    """

    def __init__(self, api: APIServer, pool: Optional[VGPUPool] = None) -> None:
        self.api = api
        self.pool = pool
        self._etcd = api.etcd
        # Cached derivations (None = dirty).
        self._base: Optional[List[DeviceView]] = None
        self._assigned: Optional[Set[str]] = None
        self._sharepod_count = 0
        self._ha_pool: Optional[VGPUPool] = None
        self._capacity: Optional[int] = None
        self._pool_version = -1
        self._closed = False
        # Instrumentation for the perf harness / tests.
        self.rebuilds = 0
        self.hits = 0
        self._etcd.add_listener(_SHAREPOD_PREFIX, self._on_sharepod)
        self._etcd.add_listener(_POD_PREFIX, self._on_pod)
        self._etcd.add_listener(_NODE_PREFIX, self._on_node)

    # -- invalidation (synchronous, inside the etcd commit) ---------------
    def _on_sharepod(self, _event) -> None:
        self._base = None
        self._assigned = None

    def _on_pod(self, _event) -> None:
        if self.pool is None:
            # HA wiring: the pool view is derived from placeholder pods.
            self._ha_pool = None
            self._base = None

    def _on_node(self, _event) -> None:
        self._capacity = None

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._etcd.remove_listener(self._on_sharepod)
            self._etcd.remove_listener(self._on_pod)
            self._etcd.remove_listener(self._on_node)

    # -- cached reads ------------------------------------------------------
    def pool_view(self) -> VGPUPool:
        """The scheduler's device pool (shared in-process, or HA-derived)."""
        if self.pool is not None:
            return self.pool
        if self._ha_pool is None:
            view = VGPUPool()
            for kv in self._etcd.snapshot(_POD_PREFIX):
                pod = kv.value
                if pod.name.startswith(PLACEHOLDER_PREFIX):
                    vgpu = VGPU(
                        gpuid=placeholder_gpuid(pod.name),
                        created_at=pod.metadata.creation_time,
                    )
                    vgpu.placeholder_pod = pod.name
                    vgpu.node_name = pod.spec.node_name
                    view.add(vgpu)
            self._ha_pool = view
        return self._ha_pool

    def _refresh(self) -> None:
        pool = self.pool_view()
        if self.pool is not None and self.pool.version != self._pool_version:
            self._pool_version = self.pool.version
            self._base = None
        if self._base is not None and self._assigned is not None:
            self.hits += 1
            return
        self.rebuilds += 1
        sharepods = [kv.value for kv in self._etcd.snapshot(_SHAREPOD_PREFIX)]
        self._sharepod_count = len(sharepods)
        self._base = build_device_views(pool, sharepods)
        self._assigned = {
            sp.spec.gpu_id
            for sp in sharepods
            if sp.spec.gpu_id is not None and sp.status.phase not in _TERMINAL
        }

    def device_views(self) -> List[DeviceView]:
        """Fresh, mutable Algorithm 1 device list (identical — field for
        field and in order — to ``build_device_views(pool, relist())``)."""
        self._refresh()
        return [
            DeviceView(
                gpuid=d.gpuid,
                util=d.util,
                mem=d.mem,
                aff=set(d.aff),
                anti_aff=set(d.anti_aff),
                excl=d.excl,
                idle=d.idle,
            )
            for d in self._base
        ]

    def assigned_gpuids(self) -> Set[str]:
        """GPUIDs held by live (non-terminal) SharePods."""
        self._refresh()
        return self._assigned

    def sharepod_count(self) -> int:
        """SharePod population size as of the last refresh."""
        return self._sharepod_count

    def gpu_capacity(self) -> int:
        """Cluster GPU capacity over Ready nodes (Node-write invalidated)."""
        if self._capacity is None:
            self._capacity = int(
                sum(
                    kv.value.status.capacity.get(GPU_RESOURCE, 0.0)
                    for kv in self._etcd.snapshot(_NODE_PREFIX)
                    if kv.value.status.ready
                )
            )
        return self._capacity

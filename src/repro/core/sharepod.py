"""The SharePod custom resource (paper §4.1/§4.2).

A *sharePod* is a pod with the ability to attach a fractionally-allocated
GPU. Its spec embeds the original pod spec plus KubeShare's first-class
GPU resource description:

* ``gpu_request`` — guaranteed minimum fraction of kernel execution time
  in a sliding window (time-shared compute);
* ``gpu_limit`` — elastic ceiling on compute usage;
* ``gpu_mem`` — fraction of device memory the container may allocate
  (space-shared, never over-committed);
* ``gpu_id`` — the vGPU identifier (GPUID); users may pin it explicitly —
  GPUs are first-class, identifiable entities;
* ``node_name`` — the GPU's node, once known;
* locality constraint labels: ``sched_affinity``, ``sched_anti_affinity``
  and ``sched_exclusion`` (§4.2).

All fractional demands are values in (0, 1] and ``request <= limit``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from ..cluster.objects import ObjectMeta, PodPhase, PodSpec
from ..perf import fastpath

__all__ = ["SharePodSpec", "SharePodStatus", "SharePod", "SpecError"]


class SpecError(ValueError):
    """A SharePodSpec fails validation."""


@dataclass
class SharePodSpec:
    """Desired state of a sharePod (Script 1 in the paper)."""

    pod_spec: PodSpec = field(default_factory=PodSpec)
    gpu_request: float = 0.0
    gpu_limit: float = 1.0
    gpu_mem: float = 0.0
    #: GPUID of the vGPU to bind; filled in by KubeShare-Sched (or the user).
    gpu_id: Optional[str] = None
    #: Node hosting the vGPU; filled in by KubeShare-DevMgr (or the user).
    node_name: Optional[str] = None
    sched_affinity: Optional[str] = None
    sched_anti_affinity: Optional[str] = None
    sched_exclusion: Optional[str] = None
    #: what DevMgr does when the SharePod's GPU or node dies:
    #: ``"never"`` — fail the SharePod (default, the paper's behaviour);
    #: ``"reschedule"`` — clear the placement and let KubeShare-Sched
    #: re-run Algorithm 1 on surviving capacity.
    restart_policy: str = "never"
    #: name of a PriorityClass object (``None`` = default priority 0).
    priority_class: Optional[str] = None
    #: best-effort / harvesting mode: the SharePod only binds spare
    #: fractional capacity on *existing* vGPUs (never acquires a new
    #: physical GPU), sits below every PriorityClass, and is revoked
    #: through the drain path whenever prioritised work needs the room.
    best_effort: bool = False

    def validate(self) -> None:
        if not 0.0 <= self.gpu_request <= 1.0:
            raise SpecError(f"gpu_request must be in [0,1], got {self.gpu_request}")
        if not 0.0 < self.gpu_limit <= 1.0:
            raise SpecError(f"gpu_limit must be in (0,1], got {self.gpu_limit}")
        if self.gpu_request > self.gpu_limit:
            raise SpecError(
                f"gpu_request ({self.gpu_request}) must not exceed "
                f"gpu_limit ({self.gpu_limit})"
            )
        if not 0.0 < self.gpu_mem <= 1.0:
            raise SpecError(f"gpu_mem must be in (0,1], got {self.gpu_mem}")
        for label_name in ("sched_affinity", "sched_anti_affinity", "sched_exclusion"):
            value = getattr(self, label_name)
            if value is not None and (not isinstance(value, str) or not value):
                raise SpecError(f"{label_name} must be a non-empty string")
        if self.restart_policy not in ("never", "reschedule"):
            raise SpecError(
                f"restart_policy must be 'never' or 'reschedule', "
                f"got {self.restart_policy!r}"
            )
        if self.priority_class is not None and (
            not isinstance(self.priority_class, str) or not self.priority_class
        ):
            raise SpecError("priority_class must be a non-empty string")
        if self.best_effort and self.priority_class is not None:
            raise SpecError(
                "best_effort and priority_class are mutually exclusive "
                "(best-effort sits below every priority class)"
            )

    def clone(self) -> "SharePodSpec":
        return SharePodSpec(
            pod_spec=self.pod_spec.clone(),
            gpu_request=self.gpu_request,
            gpu_limit=self.gpu_limit,
            gpu_mem=self.gpu_mem,
            gpu_id=self.gpu_id,
            node_name=self.node_name,
            sched_affinity=self.sched_affinity,
            sched_anti_affinity=self.sched_anti_affinity,
            sched_exclusion=self.sched_exclusion,
            restart_policy=self.restart_policy,
            priority_class=self.priority_class,
            best_effort=self.best_effort,
        )


@dataclass
class SharePodStatus:
    phase: PodPhase = PodPhase.PENDING
    message: str = ""
    #: Physical GPU UUID once the vGPU is materialized.
    gpu_uuid: Optional[str] = None
    #: Name of the real pod created by KubeShare-DevMgr.
    pod_name: Optional[str] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    scheduled_time: Optional[float] = None

    def clone(self) -> "SharePodStatus":
        return SharePodStatus(
            phase=self.phase,
            message=self.message,
            gpu_uuid=self.gpu_uuid,
            pod_name=self.pod_name,
            start_time=self.start_time,
            finish_time=self.finish_time,
            scheduled_time=self.scheduled_time,
        )


@dataclass
class SharePod:
    """The CRD object stored in the API server."""

    metadata: ObjectMeta
    spec: SharePodSpec = field(default_factory=SharePodSpec)
    status: SharePodStatus = field(default_factory=SharePodStatus)

    kind = "SharePod"

    @property
    def name(self) -> str:
        return self.metadata.name

    def clone(self) -> "SharePod":
        if fastpath.slow_kernel:
            workload = self.spec.pod_spec.workload
            self.spec.pod_spec.workload = None
            try:
                dup = copy.deepcopy(self)
            finally:
                self.spec.pod_spec.workload = workload
            dup.spec.pod_spec.workload = workload
            return dup
        return SharePod(
            metadata=self.metadata.clone(),
            spec=self.spec.clone(),
            status=self.status.clone(),
        )

    # -- dict (YAML-ish) construction, for examples/tests -------------------
    @classmethod
    def from_dict(cls, manifest: Mapping[str, Any]) -> "SharePod":
        """Build a SharePod from a manifest-shaped mapping.

        Mirrors the YAML a user would submit::

            {"metadata": {"name": "pod1", "labels": {...}},
             "spec": {"gpu_request": 0.4, "gpu_limit": 0.6, "gpu_mem": 0.25,
                      "sched_affinity": "teamA", "workload": fn}}
        """
        meta_raw = dict(manifest.get("metadata", {}))
        if "name" not in meta_raw:
            raise SpecError("metadata.name is required")
        meta = ObjectMeta(
            name=meta_raw["name"],
            namespace=meta_raw.get("namespace", "default"),
            labels=dict(meta_raw.get("labels", {})),
            annotations=dict(meta_raw.get("annotations", {})),
        )
        spec_raw = dict(manifest.get("spec", {}))
        pod_spec = spec_raw.pop("pod_spec", None) or PodSpec()
        workload = spec_raw.pop("workload", None)
        if workload is not None:
            pod_spec.workload = workload
        known = {
            k: spec_raw[k]
            for k in (
                "gpu_request",
                "gpu_limit",
                "gpu_mem",
                "gpu_id",
                "node_name",
                "sched_affinity",
                "sched_anti_affinity",
                "sched_exclusion",
                "restart_policy",
                "priority_class",
                "best_effort",
            )
            if k in spec_raw
        }
        unknown = set(spec_raw) - set(known)
        if unknown:
            raise SpecError(f"unknown SharePodSpec fields: {sorted(unknown)}")
        spec = SharePodSpec(pod_spec=pod_spec, **known)
        spec.validate()
        return cls(metadata=meta, spec=spec)

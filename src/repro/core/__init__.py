"""KubeShare core: the paper's primary contribution.

* :mod:`repro.core.sharepod` — the SharePod CRD and its first-class GPU
  resource specification (§4.1/§4.2);
* :mod:`repro.core.scheduler` — Algorithm 1 (locality & resource aware
  scheduling) and the KubeShare-Sched controller (§4.3);
* :mod:`repro.core.vgpu` — vGPU objects, GPUID↔UUID mapping, the pool;
* :mod:`repro.core.devmgr` — the KubeShare-DevMgr controller: vGPU
  lifecycle and explicit pod↔device binding (§4.4);
* :mod:`repro.core.policies` — on-demand / reservation / hybrid pool
  management;
* :mod:`repro.core.framework` — one-call wiring onto a cluster (§4.6).
"""

from .devmgr import KubeShareDevMgr, PLACEHOLDER_PREFIX
from .framework import KubeShare, SharePodClient
from .ha import HAKubeShare
from .policies import HybridPolicy, OnDemandPolicy, PoolPolicy, ReservationPolicy
from .scheduler import (
    Decision,
    DeviceView,
    KubeShareSched,
    RequestView,
    build_device_views,
    schedule_request,
)
from .sharepod import SharePod, SharePodSpec, SharePodStatus, SpecError
from .vgpu import (
    VGPU,
    VGPUPhase,
    VGPUPool,
    new_gpuid,
    placeholder_gpuid,
    reset_gpuid_counter,
)

__all__ = [
    "KubeShare",
    "HAKubeShare",
    "SharePodClient",
    "KubeShareSched",
    "KubeShareDevMgr",
    "PLACEHOLDER_PREFIX",
    "SharePod",
    "SharePodSpec",
    "SharePodStatus",
    "SpecError",
    "VGPU",
    "VGPUPhase",
    "VGPUPool",
    "new_gpuid",
    "placeholder_gpuid",
    "reset_gpuid_counter",
    "DeviceView",
    "RequestView",
    "Decision",
    "schedule_request",
    "build_device_views",
    "PoolPolicy",
    "OnDemandPolicy",
    "ReservationPolicy",
    "HybridPolicy",
]

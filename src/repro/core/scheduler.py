"""KubeShare-Sched: locality & resource aware scheduling (paper §4.3).

The heart of this module is :func:`schedule_request` — a faithful
implementation of the paper's Algorithm 1 as a pure function over
immutable device views, so it can be unit-tested, property-tested and
micro-benchmarked (Figure 11) in isolation. :class:`KubeShareSched` wraps
it in a controller that watches pending SharePods, derives the device
views from the vGPU pool plus the current SharePod population, and writes
the chosen GPUID back into the SharePodSpec for KubeShare-DevMgr to act
on.

Interpretation notes (documented deviations from the pseudo-code):

* Algorithm 1 line 17 reads ``if d.idle == false then next`` which, taken
  literally, would exempt *busy* devices from filtering and filter idle
  ones. An idle vGPU has no attached containers — no labels to conflict
  with and full residual capacity — so the evident intent is that idle
  devices pass the filter unconditionally and busy devices are checked.
  We implement that intent.
* ``new_dev()`` (lines 10/24) hands out a fresh hashed GPUID. Creating a
  vGPU ultimately requires a free physical GPU; when the cluster has none,
  the controller defers the sharePod and retries once capacity frees,
  rather than queueing an unbounded number of placeholder pods (this keeps
  later arrivals packable onto existing vGPUs — see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set, Tuple

from ..cluster.apiserver import APIServer, NotFound
from ..cluster.controller import Controller
from ..cluster.etcd import WatchEventType
from ..cluster.objects import GPU_RESOURCE, PodPhase
from ..obs import runtime as obs
from ..perf import fastpath
from ..policy.objects import ANN_QUEUED, ANN_REQUEUE_AFTER
from ..sim import Environment
from .sharepod import SharePod
from .vgpu import (
    PLACEHOLDER_PREFIX,
    VGPU,
    VGPUPool,
    new_gpuid,
    placeholder_gpuid,
)

__all__ = [
    "DeviceView",
    "RequestView",
    "Decision",
    "schedule_request",
    "build_device_views",
    "KubeShareSched",
]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass
class DeviceView:
    """Algorithm 1's view of one vGPU (Table 2's ``d``)."""

    gpuid: str
    util: float = 1.0  # residual computing capacity
    mem: float = 1.0  # residual memory space (fraction)
    aff: Set[str] = field(default_factory=set)
    anti_aff: Set[str] = field(default_factory=set)
    excl: Optional[str] = None
    idle: bool = True


@dataclass
class RequestView:
    """Algorithm 1's view of one container request (Table 2's ``r``)."""

    util: float = 0.0  # gpu_request
    mem: float = 0.0  # gpu_mem
    aff: Optional[str] = None
    anti_aff: Optional[str] = None
    excl: Optional[str] = None

    @classmethod
    def from_sharepod(cls, sp: SharePod) -> "RequestView":
        return cls(
            util=sp.spec.gpu_request,
            mem=sp.spec.gpu_mem,
            aff=sp.spec.sched_affinity,
            anti_aff=sp.spec.sched_anti_affinity,
            excl=sp.spec.sched_exclusion,
        )


@dataclass
class Decision:
    """Scheduling outcome."""

    gpuid: Optional[str]
    is_new: bool = False
    rejected: bool = False
    reason: str = ""

    @classmethod
    def reject(cls, reason: str) -> "Decision":
        return cls(gpuid=None, rejected=True, reason=reason)


def _fits(r: RequestView, d: DeviceView) -> bool:
    return r.mem <= d.mem + 1e-9 and r.util <= d.util + 1e-9


def _leftover(r: RequestView, d: DeviceView) -> float:
    """Residual capacity after a hypothetical placement (fit metric)."""
    return (d.util - r.util) + (d.mem - r.mem)


def schedule_request(
    r: RequestView,
    devices: List[DeviceView],
    placement: str = "paper",
    audit=None,
) -> Decision:
    """Algorithm 1: choose a vGPU (GPUID) for request *r*.

    *devices* is mutated the way the pseudo-code mutates ``d`` (label
    accretion on the chosen device) so that consecutive calls within one
    scheduling pass see each other's effects; callers that need a pristine
    view pass fresh copies.

    *placement* selects the step-3 heuristic (for the ablation bench):
    ``"paper"`` — best fit on label-free devices, worst fit on labelled
    ones (Algorithm 1's split); ``"best_fit"`` / ``"worst_fit"`` /
    ``"first_fit"`` — the same heuristic over all candidates.

    *audit* is an optional decision-log sink (duck-typed, see
    :class:`repro.obs.decisions.DecisionAudit`): every candidate
    considered is reported with its verdict, rejection reason, and fit
    score. ``None`` (the default) costs nothing; auditing never alters
    the decision.
    """
    if placement not in ("paper", "best_fit", "worst_fit", "first_fit"):
        raise ValueError(f"unknown placement policy {placement!r}")
    if audit is not None:
        audit.begin(r, devices, placement)
    # -- Step 1: assign by affinity label (lines 1-14) ---------------------
    if r.aff is not None:
        target = next((d for d in devices if r.aff in d.aff), None)
        if target is not None:
            reason = None
            if r.excl != target.excl:
                reason = (
                    f"affinity device {target.gpuid} has exclusion label "
                    f"{target.excl!r}, request has {r.excl!r}"
                )
            elif r.anti_aff is not None and r.anti_aff in target.anti_aff:
                reason = (
                    f"affinity device {target.gpuid} already hosts "
                    f"anti-affinity label {r.anti_aff!r}"
                )
            elif not _fits(r, target):
                reason = (
                    f"affinity device {target.gpuid} lacks capacity "
                    f"(util {target.util:.2f}/{r.util:.2f}, "
                    f"mem {target.mem:.2f}/{r.mem:.2f})"
                )
            if reason is not None:
                if audit is not None:
                    audit.consider(target.gpuid, "affinity", False, reason=reason)
                    audit.reject(reason)
                return Decision.reject(reason)
            if audit is not None:
                audit.consider(
                    target.gpuid,
                    "affinity",
                    True,
                    reason=f"carries affinity label {r.aff!r}",
                    score=_leftover(r, target),
                )
                audit.choose(target.gpuid, False, "affinity")
            if r.anti_aff is not None:
                target.anti_aff.add(r.anti_aff)
            target.aff.add(r.aff)
            target.idle = False
            target.util -= r.util
            target.mem -= r.mem
            return Decision(gpuid=target.gpuid)
        # No device carries the label yet: prefer an idle or new device so
        # future same-affinity containers have room (lines 9-14).
        target = next((d for d in devices if d.idle), None)
        is_new = False
        if target is None:
            target = DeviceView(gpuid=new_gpuid())
            devices.append(target)
            is_new = True
        if audit is not None:
            audit.consider(
                target.gpuid,
                "affinity",
                True,
                reason=(
                    "new vGPU seeded for unseen affinity label"
                    if is_new
                    else "idle device seeded for unseen affinity label"
                ),
                score=_leftover(r, target),
            )
            audit.choose(target.gpuid, is_new, "affinity-new")
        target.aff.add(r.aff)
        if r.anti_aff is not None:
            target.anti_aff.add(r.anti_aff)
        target.excl = r.excl
        target.idle = False
        target.util -= r.util
        target.mem -= r.mem
        return Decision(gpuid=target.gpuid, is_new=is_new)

    # -- Step 2: filter by exclusion / anti-affinity / resources (15-20) ----
    candidates: List[DeviceView] = []
    for d in devices:
        if d.idle:
            candidates.append(d)  # idle devices pass unconditionally
            if audit is not None:
                audit.consider(d.gpuid, "filter", True, reason="idle")
            continue
        if (r.excl is not None or d.excl is not None) and r.excl != d.excl:
            if audit is not None:
                audit.consider(
                    d.gpuid,
                    "filter",
                    False,
                    reason=f"exclusion mismatch ({d.excl!r} vs {r.excl!r})",
                )
            continue
        if r.anti_aff is not None and r.anti_aff in d.anti_aff:
            if audit is not None:
                audit.consider(
                    d.gpuid,
                    "filter",
                    False,
                    reason=f"hosts anti-affinity label {r.anti_aff!r}",
                )
            continue
        if not _fits(r, d):
            if audit is not None:
                audit.consider(
                    d.gpuid,
                    "filter",
                    False,
                    reason=(
                        f"insufficient capacity (util {d.util:.2f}/{r.util:.2f}, "
                        f"mem {d.mem:.2f}/{r.mem:.2f})"
                    ),
                )
            continue
        candidates.append(d)
        if audit is not None:
            audit.consider(d.gpuid, "filter", True)

    # -- Step 3: placement (lines 21-26) --------------------------------------
    target = None
    rule = ""
    if placement == "paper":
        no_aff = [d for d in candidates if not d.aff]
        if audit is not None:
            for d in candidates:
                audit.consider(
                    d.gpuid,
                    "placement",
                    True,
                    score=_leftover(r, d),
                    pool="label-free" if not d.aff else "labelled",
                )
        if no_aff:  # best fit among label-free devices
            target = min(no_aff, key=lambda d: (_leftover(r, d), d.gpuid))
            rule = "best-fit(label-free)"
        else:
            with_aff = [d for d in candidates if d.aff]
            if with_aff:  # worst fit among labelled devices
                target = max(with_aff, key=lambda d: (_leftover(r, d), d.gpuid))
                rule = "worst-fit(labelled)"
    elif candidates:
        if audit is not None:
            for d in candidates:
                audit.consider(d.gpuid, "placement", True, score=_leftover(r, d))
        if placement == "best_fit":
            target = min(candidates, key=lambda d: (_leftover(r, d), d.gpuid))
        elif placement == "worst_fit":
            target = max(candidates, key=lambda d: (_leftover(r, d), d.gpuid))
        else:  # first_fit: stable order of appearance
            target = candidates[0]
        rule = placement
    is_new = False
    if target is None:
        target = DeviceView(gpuid=new_gpuid())
        devices.append(target)
        is_new = True
        rule = "new-device"
    if audit is not None:
        audit.choose(target.gpuid, is_new, rule)
    target.excl = r.excl
    if r.anti_aff is not None:
        target.anti_aff.add(r.anti_aff)
    target.idle = False
    target.util -= r.util
    target.mem -= r.mem
    return Decision(gpuid=target.gpuid, is_new=is_new)


def build_device_views(
    pool: VGPUPool, sharepods: List[SharePod]
) -> List[DeviceView]:
    """Derive Algorithm 1's device list from the vGPU pool plus the live
    SharePod population (requests, memory, locality labels)."""
    views: Dict[str, DeviceView] = {
        v.gpuid: DeviceView(gpuid=v.gpuid) for v in pool.list()
    }
    for sp in sharepods:
        gpuid = sp.spec.gpu_id
        if gpuid is None or sp.status.phase in _TERMINAL:
            continue
        view = views.get(gpuid)
        if view is None:
            # Assigned but not yet materialized in the pool.
            view = views[gpuid] = DeviceView(gpuid=gpuid)
        view.idle = False
        view.util -= sp.spec.gpu_request
        view.mem -= sp.spec.gpu_mem
        if sp.spec.sched_affinity is not None:
            view.aff.add(sp.spec.sched_affinity)
        if sp.spec.sched_anti_affinity is not None:
            view.anti_aff.add(sp.spec.sched_anti_affinity)
        if sp.spec.sched_exclusion is not None:
            view.excl = sp.spec.sched_exclusion
    return sorted(views.values(), key=lambda d: d.gpuid)


class KubeShareSched(Controller):
    """The scheduling controller: pending SharePods → GPUID assignments."""

    kind = "SharePod"
    #: reconciles run concurrently, as goroutines would in the Go
    #: implementation — op latency must not serialize across sharePods
    #: (Figure 10: KubeShare's overhead stays constant with concurrency).
    workers = 16

    def __init__(
        self,
        env: Environment,
        api: APIServer,
        pool: Optional[VGPUPool] = None,
        defer_delay: float = 0.25,
        op_latency: float = 0.08,
    ) -> None:
        super().__init__(env, api, name="kubeshare-sched")
        #: shared in-process pool (classic single-instance wiring), or
        #: ``None`` to derive the device view from the apiserver on every
        #: pass (HA wiring — a promoted scheduler needs no state handoff).
        self.pool = pool
        self.defer_delay = defer_delay
        #: API-roundtrip cost of one scheduling pass (list SharePods +
        #: query vGPU info + patch), calibrated — see EXPERIMENTS.md.
        self.op_latency = op_latency
        #: wall-clock seconds spent in schedule_request, for Figure 11.
        self.algo_wall_times: List[Tuple[int, float]] = []
        self.scheduled_total = 0
        self.rejected_total = 0
        #: multi-tenant preemption planner (a
        #: :class:`repro.policy.layer.PolicyEngine`), or ``None`` — the
        #: default, costing one attribute test in the defer branch.
        self.contention = None
        #: lazily built cached device-view index (fast path only).
        self._index = None

    # -- lifecycle -----------------------------------------------------------
    def _get_index(self):
        """The cached device-view index (created on first fast-path pass)."""
        if self._index is None:
            from .viewindex import DeviceViewIndex  # deferred: import cycle

            self._index = DeviceViewIndex(self.api, self.pool)
        return self._index

    def stop(self) -> None:
        # Detach the index's etcd listeners: a deposed HA leader must not
        # keep invalidation hooks registered on the shared store.
        if self._index is not None:
            self._index.close()
            self._index = None
        super().stop()

    # -- event routing -------------------------------------------------------
    def filter(self, etype: WatchEventType, obj: SharePod) -> bool:
        if etype is WatchEventType.DELETE or obj.status.phase in _TERMINAL:
            # Capacity freed: wake every still-unscheduled sharePod.
            for sp in self.informer.list():
                if sp.spec.gpu_id is None and sp.status.phase not in _TERMINAL:
                    self.queue.add(sp.metadata.key)
            return False
        return obj.spec.gpu_id is None

    # -- reconcile --------------------------------------------------------------
    def _pool_view(self) -> VGPUPool:
        """Algorithm 1's device pool.

        With a shared in-process pool that pool is authoritative. In HA
        mode the view is rebuilt from the apiserver's placeholder pods
        (their names encode the GPUIDs), so a freshly promoted scheduler
        leader sees exactly the vGPUs that exist in the cluster without
        inheriting any in-memory state.
        """
        if self.pool is not None:
            return self.pool
        view = VGPUPool()
        for pod in self.api.list("Pod"):
            if pod.name.startswith(PLACEHOLDER_PREFIX):
                vgpu = VGPU(
                    gpuid=placeholder_gpuid(pod.name),
                    created_at=pod.metadata.creation_time,
                )
                vgpu.placeholder_pod = pod.name
                vgpu.node_name = pod.spec.node_name
                view.add(vgpu)
        return view

    def _cluster_gpu_capacity(self) -> int:
        # NotReady nodes contribute nothing: their GPUs are unreachable
        # until the node lifecycle controller sees a fresh lease again.
        return int(
            sum(
                n.status.capacity.get(GPU_RESOURCE, 0.0)
                for n in self.api.nodes()
                if n.status.ready
            )
        )

    def reconcile(self, key: str) -> Generator:  # hot-path
        pass_start = self.env.now  # virtual pass latency (repro_algo1_pass_seconds)
        namespace, name = key.split("/", 1)
        sp = self.api.get("SharePod", name, namespace)
        if sp is None or sp.spec.gpu_id is not None or sp.status.phase in _TERMINAL:
            return
        ann = sp.metadata.annotations
        if ann:  # policy gates; empty-dict check keeps the no-policy cost flat
            if ANN_QUEUED in ann:
                return  # quota-parked; the unqueue PUT re-triggers us
            resume = ann.get(ANN_REQUEUE_AFTER)
            if resume is not None and float(resume) > self.env.now:
                # post-eviction backoff: come back exactly when it expires
                self.env.process(
                    self._requeue_later(key, float(resume) - self.env.now)
                )
                return
        if self.op_latency > 0:
            yield self.env.timeout(self.op_latency)
            sp = self.api.get("SharePod", name, namespace)
            if sp is None or sp.spec.gpu_id is not None or sp.status.phase in _TERMINAL:
                return
        # hot-path: derive Algorithm 1's inputs. The reference mode relists
        # and re-sorts per pass; the fast path serves field-identical views
        # from the commit-invalidated DeviceViewIndex. The sharePod being
        # scheduled needs no exclusion from the cached population: its
        # gpu_id is None (checked above), so it contributes nothing to the
        # views or the assigned-GPUID set either way.
        assigned_ids: Optional[Set[str]] = None
        if fastpath.slow_kernel:
            sharepods = [s for s in self.api.list("SharePod") if s.metadata.key != key]  # noqa: RPR008 - reference mode for the cached index
            pool = self._pool_view()
            devices = build_device_views(pool, sharepods)
            population = len(sharepods) + 1
        else:
            # The relists this replaces were outage-gated; no sim time has
            # passed since the (gated) get above, so one gate call here
            # preserves identical ServiceUnavailable behavior.
            self.api._gate()
            index = self._get_index()
            devices = index.device_views()
            pool = index.pool_view()
            population = index.sharepod_count()
            assigned_ids = index.assigned_gpuids()

        audit = obs.decision_audit()
        t0 = time.perf_counter()  # noqa: RPR001 - Fig 11 measures host wall time of Algorithm 1 itself
        decision = schedule_request(RequestView.from_sharepod(sp), devices, audit=audit)
        self.algo_wall_times.append((population, time.perf_counter() - t0))  # noqa: RPR001 - Fig 11 host timing

        if decision.rejected:
            self.rejected_total += 1
            obs.commit_decision(audit, key, decision, started_at=pass_start)
            obs.event(
                "FailedScheduling",
                f"unschedulable: {decision.reason}",
                involved_kind="SharePod",
                involved_name=name,
                involved_namespace=namespace,
                type="Warning",
                source=self.name,
            )
            self._fail(namespace, name, decision.reason)
            return

        if decision.is_new:
            if sp.spec.best_effort:
                # Harvesting mode: spare capacity on existing vGPUs only —
                # a best-effort SharePod never acquires a physical GPU.
                obs.commit_decision(
                    audit, key, decision, outcome="deferred", started_at=pass_start
                )
                self.env.process(self._requeue_later(key, self.defer_delay))
                return
            # A new vGPU needs a free physical GPU; if the cluster is fully
            # acquired, defer and retry when something frees up.
            if assigned_ids is None:
                assigned_ids = {
                    s.spec.gpu_id
                    for s in sharepods
                    if s.spec.gpu_id is not None and s.status.phase not in _TERMINAL
                }
            in_flight = len({g for g in assigned_ids if g not in pool})
            capacity = (
                self._cluster_gpu_capacity()
                if fastpath.slow_kernel
                else self._get_index().gpu_capacity()
            )
            if len(pool) + in_flight >= max(capacity, 1):
                # Defer without blocking the worker; capacity-free events
                # also requeue us (see filter()).
                if self.contention is not None:
                    # Multi-tenant mode: try to plan a preemption so this
                    # (possibly high-priority) SharePod eventually places.
                    self.contention.try_preempt(self.api, sp, key, self.env.now)
                obs.commit_decision(
                    audit, key, decision, outcome="deferred", started_at=pass_start
                )
                obs.event(
                    "SchedulingDeferred",
                    "new vGPU needed but cluster GPU capacity is exhausted; "
                    "will retry when capacity frees",
                    involved_kind="SharePod",
                    involved_name=name,
                    involved_namespace=namespace,
                    source=self.name,
                )
                self.env.process(self._requeue_later(key, self.defer_delay))
                return

        def assign(obj: SharePod) -> None:
            if obj.spec.gpu_id is None:
                obj.spec.gpu_id = decision.gpuid
                obj.status.scheduled_time = self.env.now

        try:
            self.api.patch("SharePod", name, assign, namespace)
        except NotFound:
            return
        self.scheduled_total += 1
        obs.commit_decision(audit, key, decision, started_at=pass_start)
        obs.event(
            "Scheduled",
            f"assigned vGPU {decision.gpuid}"
            + (" (new vGPU)" if decision.is_new else ""),
            involved_kind="SharePod",
            involved_name=name,
            involved_namespace=namespace,
            source=self.name,
        )
        return
        yield  # pragma: no cover - generator by contract

    def _fail(self, namespace: str, name: str, reason: str) -> None:
        def mutate(obj: SharePod) -> None:
            obj.status.phase = PodPhase.FAILED
            obj.status.message = f"unschedulable: {reason}"
            obj.status.finish_time = self.env.now

        try:
            self.api.patch("SharePod", name, mutate, namespace)
        except NotFound:
            pass

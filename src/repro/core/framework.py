"""One-call wiring of KubeShare onto a simulated cluster.

Installs the SharePod CRD and starts the two custom controllers
(KubeShare-Sched + KubeShare-DevMgr) against an existing
:class:`~repro.cluster.cluster.Cluster`, following the operator pattern —
nothing in the cluster's own control plane is modified (§4.6).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence

from ..cluster.cluster import Cluster
from ..cluster.objects import ContainerSpec, ObjectMeta, PodPhase, PodSpec
from ..perf import fastpath
from ..sim import Environment
from .devmgr import KubeShareDevMgr
from .policies import PoolPolicy
from .scheduler import KubeShareSched
from .sharepod import SharePod, SharePodSpec
from .vgpu import VGPUPool

__all__ = ["SharePodClient", "KubeShare"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


class SharePodClient:
    """Client-side SharePod helpers (what §4.1 calls the *Client*).

    Shared by the classic single-instance wiring (:class:`KubeShare`) and
    the leader-elected HA wiring (:class:`repro.core.ha.HAKubeShare`);
    subclasses provide ``env`` and ``api`` attributes.
    """

    env: Environment
    api: object

    def make_sharepod(
        self,
        name: str,
        gpu_request: float,
        gpu_limit: float,
        gpu_mem: float,
        workload: Optional[Callable] = None,
        cpu: float = 1.0,
        gpu_id: Optional[str] = None,
        node_name: Optional[str] = None,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        namespace: str = "default",
        restart_policy: str = "never",
        priority_class: Optional[str] = None,
        best_effort: bool = False,
        annotations: Optional[Dict[str, str]] = None,
    ) -> SharePod:
        """Build a validated SharePod object (not yet submitted)."""
        spec = SharePodSpec(
            pod_spec=PodSpec(
                containers=[ContainerSpec(requests={"cpu": cpu})],
                workload=workload,
            ),
            gpu_request=gpu_request,
            gpu_limit=gpu_limit,
            gpu_mem=gpu_mem,
            gpu_id=gpu_id,
            node_name=node_name,
            sched_affinity=affinity,
            sched_anti_affinity=anti_affinity,
            sched_exclusion=exclusion,
            restart_policy=restart_policy,
            priority_class=priority_class,
            best_effort=best_effort,
        )
        spec.validate()
        return SharePod(
            metadata=ObjectMeta(
                name=name,
                namespace=namespace,
                labels=dict(labels or {}),
                annotations=dict(annotations or {}),
            ),
            spec=spec,
        )

    def submit(self, sharepod: SharePod) -> SharePod:
        """Create the sharePod through the kube-apiserver."""
        sharepod.spec.validate()
        return self.api.create(sharepod)

    def delete(self, name: str, namespace: str = "default") -> bool:
        return self.api.try_delete("SharePod", name, namespace)

    def get(self, name: str, namespace: str = "default") -> Optional[SharePod]:
        return self.api.get("SharePod", name, namespace)

    def list(self) -> List[SharePod]:
        return self.api.list("SharePod")

    # -- process helpers -------------------------------------------------------
    def wait_for_phase(
        self,
        name: str,
        phases: Sequence[PodPhase],
        namespace: str = "default",
        poll: float = 0.05,
    ) -> Generator:
        # Fast path: probe the phase read-only per tick and clone only
        # the SharePod actually returned to the caller.
        probe = self.api.get if fastpath.slow_kernel else self.api.peek
        while True:
            sp = probe("SharePod", name, namespace)
            if sp is None:
                return None
            if sp.status.phase in phases:
                return sp if fastpath.slow_kernel else self.api.get(
                    "SharePod", name, namespace
                )
            yield self.env.timeout(poll)

    def wait_all_terminal(
        self, names: Sequence[str], namespace: str = "default", poll: float = 0.25
    ) -> Generator:
        probe = self.api.get if fastpath.slow_kernel else self.api.peek
        pending = set(names)
        while pending:
            done = set()
            for name in sorted(pending):
                sp = probe("SharePod", name, namespace)
                if sp is None or sp.status.phase in _TERMINAL:
                    done.add(name)
            pending -= done
            if pending:
                yield self.env.timeout(poll)


class KubeShare(SharePodClient):
    """The KubeShare framework extension, attached to a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        isolation: str = "token",
        policy: Optional[PoolPolicy] = None,
        contention=None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.api = cluster.api
        self.api.register_crd("SharePod")
        self.pool = VGPUPool()
        self.sched = KubeShareSched(self.env, self.api, self.pool)
        self.devmgr = KubeShareDevMgr(
            self.env, self.api, self.pool, policy=policy, isolation=isolation
        )
        #: multi-tenant policy layer (quotas/priorities/reaper), installed
        #: when *contention* is a :class:`repro.policy.layer.PolicyConfig`
        #: (or ``True`` for the defaults). ``None`` — the default — keeps
        #: the whole policy surface out of the hot paths.
        self.policy_layer = None
        if contention is not None and contention is not False:
            from ..policy.layer import PolicyConfig, PolicyLayer  # lazy: optional

            cfg = contention if isinstance(contention, PolicyConfig) else PolicyConfig()
            self.policy_layer = PolicyLayer(cluster, cfg)
            self.sched.contention = self.policy_layer.engine
            self.devmgr.requeue_base = cfg.requeue_base
            self.devmgr.requeue_cap = cfg.requeue_cap
        self._started = False

    def start(self) -> "KubeShare":
        """Start both controllers (the cluster must be started separately)."""
        if not self._started:
            self.sched.start()
            self.devmgr.start()
            if self.policy_layer is not None:
                self.policy_layer.start()
            self._started = True
        return self

"""Shared backoff policies: one implementation, every retry loop.

Before this module the codebase had grown three separate retry-delay
computations: the controller framework's per-key decorrelated jitter
(:class:`~repro.cluster.controller.Controller`), the revocation layer's
deliberately jitter-free exponential requeue
(:func:`repro.policy.revocation.requeue_backoff`), and the informer's
watch-reconnect path (which had no backoff at all and would hammer a
broken stream). They now all delegate here, as do the federation tier's
inter-cluster retries (:mod:`repro.federation.rpc`).

Two policies, because the call sites have two different needs:

* :class:`DecorrelatedJitter` — bounded decorrelated jitter for retry
  loops where many actors might fail at once (controller requeues,
  elector re-acquire attempts during an apiserver outage, federation
  RPC retries). The delay is drawn from ``[expo, prev * 3]`` where
  ``expo`` is the plain exponential schedule — never faster than
  exponential (retry storms still decay) but spread out, so a mass
  failure doesn't re-hit the apiserver in lockstep. Seeded from a
  stable string (``random.Random(f"backoff:{name}")``), so identical
  seeds replay identical delays.
* :func:`expo_backoff` — deterministic, jitter-free exponential for
  paths whose replay must be byte-identical without any RNG stream at
  all (eviction requeue times are compared across runs in tests).
"""

from __future__ import annotations

import random
from typing import Dict, Optional

__all__ = ["DecorrelatedJitter", "expo_backoff"]


def expo_backoff(count: int, base: float = 0.5, cap: float = 8.0) -> float:
    """Deterministic exponential backoff for the *count*-th failure.

    Deliberately jitter-free: callers that need byte-identical replays of
    requeue times (the eviction state machine) use this; callers that
    need decorrelation use :class:`DecorrelatedJitter`.
    """
    if count < 1:
        return base
    return min(cap, base * (2.0 ** (count - 1)))


class DecorrelatedJitter:
    """Per-key bounded decorrelated jitter with a seeded RNG stream.

    ``name`` seeds the stream (string seeding is stable across processes,
    keeping simulations reproducible); ``base`` is the first-failure
    delay and ``cap`` the upper bound. Keys let one instance track many
    independent retry series (one per work-queue key, per member
    cluster, ...); :meth:`reset` forgets a key once its operation
    succeeds.
    """

    def __init__(
        self,
        name: str,
        base: float,
        cap: float,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random(f"backoff:{name}")
        #: last delay handed out per key (the "decorrelation" state).
        self._prev: Dict[str, float] = {}
        #: consecutive-failure count per key (used when ``n`` is omitted).
        self._counts: Dict[str, int] = {}

    def next(self, key: str = "", n: Optional[int] = None) -> float:
        """The delay before the *n*-th consecutive retry of *key*.

        With ``n=None`` the instance counts failures itself; pass ``n``
        explicitly when the caller already tracks the failure count (the
        controller framework does, in ``_failures``).
        """
        if n is None:
            n = self._counts.get(key, 0) + 1
            self._counts[key] = n
        expo = self.base * (2.0 ** (n - 1))
        prev = self._prev.get(key, self.base)
        delay = min(self.cap, self._rng.uniform(expo, max(expo, prev * 3.0)))
        self._prev[key] = delay
        return delay

    def reset(self, key: str = "") -> None:
        """Forget *key*'s retry series (call on success)."""
        self._prev.pop(key, None)
        self._counts.pop(key, None)

    def streak(self, key: str = "") -> int:
        """Consecutive failures recorded for *key* (self-counted mode)."""
        return self._counts.get(key, 0)

    def pending(self) -> list:
        """Keys with live retry state, sorted (for deterministic tests)."""
        return sorted(set(self._prev) | set(self._counts))

    def __contains__(self, key: str) -> bool:
        return key in self._prev or key in self._counts

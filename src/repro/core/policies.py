"""vGPU pool lifecycle policies (paper §4.4).

When the last sharePod detaches from a vGPU, KubeShare-DevMgr must decide
whether to release the underlying GPU back to Kubernetes immediately
(*on-demand*), keep it warm for future requests (*reservation*), or
something in between (*hybrid*). The paper chooses on-demand because the
measured acquisition overhead is low; the tradeoff is ablated in
``benchmarks/test_ablation_pool_policy.py``.
"""

from __future__ import annotations

from typing import Optional

from .vgpu import VGPU, VGPUPool

__all__ = ["PoolPolicy", "OnDemandPolicy", "ReservationPolicy", "HybridPolicy"]


class PoolPolicy:
    """Decides the fate of idle vGPUs."""

    #: Keep-alive for idle vGPUs, seconds; ``None`` = forever.
    idle_ttl: Optional[float] = None

    def release_on_idle(self, pool: VGPUPool, vgpu: VGPU) -> bool:
        """Called when *vgpu* just became idle; True = release immediately."""
        raise NotImplementedError

    def release_on_ttl(self, pool: VGPUPool, vgpu: VGPU) -> bool:
        """Called when an idle vGPU's TTL expires; True = release now."""
        return True


class OnDemandPolicy(PoolPolicy):
    """Release idle vGPUs immediately (the paper's implementation choice).

    Every new vGPU request pays the acquisition cost (launching a
    placeholder pod), but no GPU is withheld from native Kubernetes pods.
    """

    def release_on_idle(self, pool: VGPUPool, vgpu: VGPU) -> bool:
        return True


class ReservationPolicy(PoolPolicy):
    """Keep idle vGPUs warm for future requests.

    ``max_idle=None`` keeps every idle vGPU forever (full reservation —
    zero acquisition overhead at runtime, but idle vGPUs look *allocated*
    to the kube-scheduler and are unusable by native pods until released).
    """

    def __init__(self, max_idle: Optional[int] = None) -> None:
        if max_idle is not None and max_idle < 0:
            raise ValueError("max_idle must be >= 0")
        self.max_idle = max_idle

    def release_on_idle(self, pool: VGPUPool, vgpu: VGPU) -> bool:
        if self.max_idle is None:
            return False
        return len(pool.idle_vgpus()) > self.max_idle


class HybridPolicy(ReservationPolicy):
    """Reservation bounded by count *and* time: keep at most *max_idle*
    idle vGPUs, each for at most *idle_ttl* seconds."""

    def __init__(self, max_idle: int = 2, idle_ttl: float = 30.0) -> None:
        super().__init__(max_idle=max_idle)
        if idle_ttl <= 0:
            raise ValueError("idle_ttl must be > 0")
        self.idle_ttl = idle_ttl

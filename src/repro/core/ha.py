"""Leader-elected HA wiring of KubeShare onto a simulated cluster.

Runs N replicas each of KubeShare-Sched and KubeShare-DevMgr as
:class:`~repro.cluster.leaderelection.HAControllerGroup` members. Exactly
one replica per controller is active at a time; a standby is promoted
within the group's failover bound when the leader crashes or goes silent.

Differences from the single-instance :class:`~repro.core.framework.KubeShare`:

* there is no shared in-process ``VGPUPool``. Each promoted DevMgr leader
  rebuilds its own pool from the apiserver
  (:meth:`~repro.core.devmgr.KubeShareDevMgr.rebuild_state`), and the
  scheduler derives its device views from the deterministically named
  placeholder pods on every pass — etcd is the only state handoff between
  reigns, exactly as in production Kubernetes;
* every controller write goes through a
  :class:`~repro.cluster.leaderelection.FencedAPIServer`, so a deposed
  leader (GC pause, partition) cannot double-allocate a vGPU: its writes
  are rejected with lease-epoch ``Conflict`` before touching etcd.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.leaderelection import FencedAPIServer, HAControllerGroup
from .devmgr import KubeShareDevMgr
from .framework import SharePodClient
from .policies import PoolPolicy
from .scheduler import KubeShareSched
from .vgpu import VGPUPool

__all__ = ["HAKubeShare"]


class HAKubeShare(SharePodClient):
    """KubeShare with a leader-elected, fenced, N-replica control plane."""

    def __init__(
        self,
        cluster: Cluster,
        replicas: int = 2,
        isolation: str = "token",
        policy: Optional[PoolPolicy] = None,
        lease_duration: float = 3.0,
        renew_interval: float = 0.5,
        retry_interval: float = 0.5,
        contention=None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.api = cluster.api
        self.api.register_crd("SharePod")
        env = self.env

        #: multi-tenant policy layer; see :class:`repro.core.framework.KubeShare`.
        self.policy_layer = None
        contention_cfg = None
        if contention is not None and contention is not False:
            from ..policy.layer import PolicyConfig, PolicyLayer  # lazy: optional

            contention_cfg = (
                contention if isinstance(contention, PolicyConfig) else PolicyConfig()
            )
            self.policy_layer = PolicyLayer(cluster, contention_cfg)
        policy_layer = self.policy_layer

        def sched_factory(api: FencedAPIServer) -> KubeShareSched:
            # pool=None: device views derive from the apiserver each pass.
            sched = KubeShareSched(env, api, pool=None)
            if policy_layer is not None:
                # The engine is stateless; every leader consults the same
                # planner through its own fenced API handle.
                sched.contention = policy_layer.engine
            return sched

        def devmgr_factory(api: FencedAPIServer) -> KubeShareDevMgr:
            # A private pool per reign; rebuild_state() fills it by relist.
            devmgr = KubeShareDevMgr(
                env, api, VGPUPool(), policy=policy, isolation=isolation
            )
            if contention_cfg is not None:
                devmgr.requeue_base = contention_cfg.requeue_base
                devmgr.requeue_cap = contention_cfg.requeue_cap
            return devmgr

        self.sched_group = HAControllerGroup(
            env,
            self.api,
            "kubeshare-sched",
            sched_factory,
            replicas=replicas,
            lease_duration=lease_duration,
            renew_interval=renew_interval,
            retry_interval=retry_interval,
        )
        self.devmgr_group = HAControllerGroup(
            env,
            self.api,
            "kubeshare-devmgr",
            devmgr_factory,
            replicas=replicas,
            lease_duration=lease_duration,
            renew_interval=renew_interval,
            retry_interval=retry_interval,
        )
        self._started = False

    def start(self) -> "HAKubeShare":
        """Start every replica (the cluster must be started separately)."""
        if not self._started:
            self.sched_group.start()
            self.devmgr_group.start()
            if self.policy_layer is not None:
                self.policy_layer.start()
            self._started = True
        return self

    def stop(self) -> None:
        self.sched_group.stop()
        self.devmgr_group.stop()
        if self.policy_layer is not None:
            self.policy_layer.stop()

    # -- views -------------------------------------------------------------
    @property
    def sched(self) -> Optional[KubeShareSched]:
        """The currently active scheduler instance (None mid-failover)."""
        return self.sched_group.active_controller

    @property
    def devmgr(self) -> Optional[KubeShareDevMgr]:
        """The currently active DevMgr instance (None mid-failover)."""
        return self.devmgr_group.active_controller

    @property
    def pool(self) -> Optional[VGPUPool]:
        """The active DevMgr leader's vGPU pool (None mid-failover)."""
        devmgr = self.devmgr
        return devmgr.pool if devmgr is not None else None

"""Streaming latency histograms over the simulator's hot seams.

This module is the catalog half of the histogram tentpole: it names the
distribution-typed metric families, fixes their bucket boundaries, and
maps span closures onto observations. The mechanism half (cumulative
buckets, exact per-window percentiles) lives in
:class:`repro.metrics.Histogram`.

Every observation is a **virtual-time** duration: histograms are part of
the deterministic run artifact and must stay byte-identical between the
fast and reference kernels (``tests/perf/test_determinism_replay.py``
diffs full snapshots). Host wall-clock time is the profiler's job
(:mod:`repro.obs.profile`) and never enters a histogram.

Families (all observed automatically once a hub is enabled):

====================================  ==========================================
``repro_algo1_pass_seconds``          Algorithm 1 pass latency: scheduler
                                      reconcile entry -> decision commit
                                      (includes the modeled op latency and
                                      apiserver gating)
``repro_sharepod_schedule_seconds``   SharePod created -> Scheduled
``repro_sharepod_journey_seconds``    SharePod created -> Running (the
                                      journey root span, Fig 10's metric)
``repro_token_wait_seconds``          time a client blocks in
                                      ``token.wait`` before a grant
``repro_container_start_seconds``     kubelet ``container.start`` duration
``repro_reconcile_duration_seconds``  one reconcile pass, per controller
``repro_informer_lag_revisions``      etcd revisions an informer trails
                                      behind, sampled per tick
``repro_federation_place_seconds``    federation record created -> placed
                                      on a member cluster
====================================  ==========================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..metrics.collector import DEFAULT_LATENCY_BOUNDARIES, MetricsRegistry
from .promfmt import metric

__all__ = [
    "DEFAULT_LATENCY_BOUNDARIES",
    "LAG_BOUNDARIES",
    "HISTOGRAM_FAMILIES",
    "HistogramInstruments",
]

#: informer lag is measured in etcd revisions, not seconds.
LAG_BOUNDARIES: Tuple[float, ...] = (0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)

#: family -> bucket boundaries (the catalog promfmt exposes as
#: ``# TYPE ... histogram``).
HISTOGRAM_FAMILIES: Dict[str, Tuple[float, ...]] = {
    "repro_algo1_pass_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_sharepod_schedule_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_sharepod_journey_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_token_wait_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_container_start_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_reconcile_duration_seconds": DEFAULT_LATENCY_BOUNDARIES,
    "repro_informer_lag_revisions": LAG_BOUNDARIES,
    "repro_federation_place_seconds": DEFAULT_LATENCY_BOUNDARIES,
}


class HistogramInstruments:
    """Routes instrumentation signals into the registry's histograms.

    Wired by :class:`~repro.obs.runtime.ObsHub` in two ways: as the
    tracer's ``on_end`` callback (span-shaped seams: reconciles, token
    waits, container starts, journey roots) and called directly from
    hooks that know a latency without owning a span (decision commits,
    federation placements, sampler-observed informer lag).
    """

    def __init__(self, registry: MetricsRegistry, window: float = 10.0) -> None:
        self.registry = registry
        self.window = window

    def observe(self, family: str, t: float, value: float, **labels: object) -> None:
        boundaries = HISTOGRAM_FAMILIES.get(family, DEFAULT_LATENCY_BOUNDARIES)
        self.registry.observe(
            metric(family, **labels), t, value, boundaries=boundaries, window=self.window
        )

    # -- span-shaped seams --------------------------------------------------
    def on_span_end(self, span) -> None:
        """Tracer ``on_end`` callback: map a freshly closed span onto a
        histogram family (or none — most spans are trace-only)."""
        name = span.name
        end = span.end
        if name == "reconcile":
            self.observe(
                "repro_reconcile_duration_seconds",
                end,
                span.duration,
                controller=span.track,
            )
        elif name == "token.wait":
            self.observe("repro_token_wait_seconds", end, span.duration)
        elif name == "container.start":
            self.observe("repro_container_start_seconds", end, span.duration)
        elif name.startswith("sharepod ") and span.status == "ok":
            # The journey root closes "ok" exactly when the mirror Pod
            # reaches Running: created -> Running end to end.
            self.observe("repro_sharepod_journey_seconds", end, span.duration)

    # -- direct seams -------------------------------------------------------
    def algo1_pass(self, t: float, latency: float) -> None:
        self.observe("repro_algo1_pass_seconds", t, latency)

    def schedule_latency(self, t: float, latency: float) -> None:
        self.observe("repro_sharepod_schedule_seconds", t, latency)

    def federation_place(self, t: float, latency: float) -> None:
        self.observe("repro_federation_place_seconds", t, latency)

    def informer_lag(self, t: float, lag: float, controller: str) -> None:
        self.observe("repro_informer_lag_revisions", t, lag, controller=controller)

    def to_dicts(self) -> Dict[str, Dict[str, object]]:
        return {
            name: hist.to_dict()
            for name, hist in sorted(self.registry.histograms.items())
        }

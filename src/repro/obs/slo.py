"""Declarative SLOs evaluated in virtual time with multi-window,
multi-burn-rate alerting.

An :class:`SLO` is an objective (e.g. "99% of SharePods schedule within
10 s") over one of two indicator shapes:

* ``latency`` — a histogram family from :mod:`repro.obs.hist`; "good" is
  the cumulative bucket count at the threshold boundary (which therefore
  must be one of the family's bucket boundaries — exact, no
  interpolation);
* ``ratio``   — two counter families; "good"/"total" are the sums over
  every labeled counter whose family matches (e.g. token grants vs.
  grants + denies).

The :class:`SLOEvaluator` is a simulated process: every ``interval``
virtual seconds it snapshots each indicator's cumulative (good, total),
computes the **burn rate** — windowed error rate divided by the error
budget ``1 - objective`` — over a long and a short window per severity
(the Google SRE workbook's multi-window multi-burn-rate recipe, windows
scaled down to simulation timescales; see EXPERIMENTS.md), and drives a
per-(SLO, severity) state machine::

    inactive -> pending -> firing -> resolved

An alert fires only when *both* windows exceed the severity's factor
(the short window gates on "still burning now", so a fired alert
resolves promptly after recovery); it resolves after
``resolve_after`` consecutive quiet evaluations (hysteresis). Alerts are
deduplicated per (SLO, severity): re-entering the burn condition while
an alert is firing never creates a second record — the kevents recorder
additionally dedups the emitted Events on stable messages.

Everything here runs in virtual time off deterministic inputs, so the
alert log is part of the reproducible artifact: identical seeds fire
identical alerts at identical virtual timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .promfmt import _family, metric

__all__ = [
    "SLO",
    "BurnRatePolicy",
    "Alert",
    "SLOEvaluator",
    "DEFAULT_WINDOWS",
    "default_slos",
]


@dataclass(frozen=True)
class BurnRatePolicy:
    """One severity tier: fire when the burn rate exceeds ``factor`` over
    both the long and the short window."""

    severity: str
    factor: float
    long_window: float
    short_window: float


#: Sim-scaled multi-window pairs: the classic 1h/5m page and 6h/30m
#: ticket tiers compressed to seconds (see EXPERIMENTS.md §burn-rate).
DEFAULT_WINDOWS: Tuple[BurnRatePolicy, ...] = (
    BurnRatePolicy("page", factor=14.4, long_window=20.0, short_window=5.0),
    BurnRatePolicy("ticket", factor=6.0, long_window=60.0, short_window=15.0),
)


@dataclass(frozen=True)
class SLO:
    """A service-level objective over a histogram or a counter ratio."""

    name: str
    objective: float  # e.g. 0.99
    kind: str = "latency"  # "latency" | "ratio"
    #: latency kind: histogram family + threshold (must be a bucket boundary).
    family: str = ""
    threshold: float = 0.0
    #: ratio kind: counter families (label sets are summed per family).
    good_family: str = ""
    total_families: Tuple[str, ...] = ()
    description: str = ""
    windows: Tuple[BurnRatePolicy, ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {self.objective}")
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "objective": self.objective,
            "kind": self.kind,
            "family": self.family,
            "threshold": self.threshold,
            "good_family": self.good_family,
            "total_families": list(self.total_families),
            "description": self.description,
            "windows": [
                {
                    "severity": w.severity,
                    "factor": w.factor,
                    "long_window": w.long_window,
                    "short_window": w.short_window,
                }
                for w in self.windows
            ],
        }


def default_slos() -> List[SLO]:
    """The stock SLOs every armed run evaluates."""
    return [
        SLO(
            name="sharepod-schedule-latency",
            objective=0.99,
            kind="latency",
            family="repro_sharepod_schedule_seconds",
            threshold=10.0,
            description="99% of SharePods are Scheduled within 10s of creation",
        ),
        SLO(
            name="sharepod-journey-latency",
            objective=0.99,
            kind="latency",
            family="repro_sharepod_journey_seconds",
            threshold=30.0,
            description="99% of SharePods are Running within 30s of creation",
        ),
        SLO(
            name="token-grant-success",
            objective=0.95,
            kind="ratio",
            good_family="repro_token_grants_total",
            total_families=("repro_token_grants_total", "repro_token_denies_total"),
            description="95% of token requests are granted without throttling",
        ),
    ]


@dataclass
class Alert:
    """One fired burn-rate alert (deduplicated per SLO x severity)."""

    slo: str
    severity: str
    factor: float
    long_window: float
    short_window: float
    pending_at: float
    fired_at: float
    burn_rate: float
    state: str = "firing"  # firing | resolved
    resolved_at: Optional[float] = None
    refires: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "factor": self.factor,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "pending_at": self.pending_at,
            "fired_at": self.fired_at,
            "burn_rate": self.burn_rate,
            "state": self.state,
            "resolved_at": self.resolved_at,
            "refires": self.refires,
        }


class _TierState:
    """State machine for one (SLO, severity) pair."""

    __slots__ = ("state", "pending_at", "quiet_ticks", "alert")

    def __init__(self) -> None:
        self.state = "inactive"  # inactive | pending | firing
        self.pending_at = 0.0
        self.quiet_ticks = 0
        self.alert: Optional[Alert] = None


class SLOEvaluator:
    """Evaluates SLO burn rates on a virtual-time cadence.

    Pure bookkeeping between timeouts: reads cumulative histogram/counter
    state, appends to its own snapshot deques, records burn-rate gauge
    series, and emits Events through the hub's recorder. Consumes no
    randomness and never touches the wall clock.
    """

    def __init__(
        self,
        hub,
        slos: Optional[List[SLO]] = None,
        interval: float = 1.0,
        pending_for: float = 0.0,
        resolve_after: int = 3,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.hub = hub
        self.slos = list(slos) if slos is not None else default_slos()
        self.interval = interval
        self.pending_for = pending_for
        self.resolve_after = max(1, int(resolve_after))
        self.alerts: List[Alert] = []
        self._snaps: Dict[str, List[Tuple[float, float, float]]] = {
            slo.name: [] for slo in self.slos
        }
        self._tiers: Dict[Tuple[str, str], _TierState] = {}
        self._proc = None

    # -- process -----------------------------------------------------------
    def start(self) -> "SLOEvaluator":
        if self._proc is None:
            self._proc = self.hub.env.process(self._run(), name="slo-evaluator")
        return self

    def _run(self):
        while True:
            yield self.hub.env.timeout(self.interval)
            self.evaluate()

    # -- indicators --------------------------------------------------------
    def _totals(self, slo: SLO) -> Tuple[float, float]:
        """Cumulative (good, total) for one SLO's indicator."""
        m = self.hub.metrics
        if slo.kind == "latency":
            hist = m.histograms.get(slo.family)
            if hist is None:
                return 0.0, 0.0
            return float(hist.cumulative_le(slo.threshold)), float(hist.count)
        good = total = 0.0
        for name, value in m.counters.items():
            fam = _family(name)
            if fam == slo.good_family:
                good += value
            if fam in slo.total_families:
                total += value
        return good, total

    def _burn(self, slo: SLO, now: float, window: float) -> float:
        """Windowed error rate / error budget; 0.0 with no traffic."""
        snaps = self._snaps[slo.name]
        if not snaps:
            return 0.0
        cutoff = now - window
        # Latest snapshot at or before the window start; the series starts
        # mid-run, so fall back to the oldest (rate over available range).
        base = snaps[0]
        for snap in snaps:
            if snap[0] <= cutoff:
                base = snap
            else:
                break
        head = snaps[-1]
        d_total = head[2] - base[2]
        if d_total <= 0:
            return 0.0
        d_bad = (head[2] - head[1]) - (base[2] - base[1])
        return (d_bad / d_total) / slo.budget

    # -- evaluation --------------------------------------------------------
    def evaluate(self) -> None:
        now = self.hub.env.now
        m = self.hub.metrics
        for slo in self.slos:
            good, total = self._totals(slo)
            snaps = self._snaps[slo.name]
            snaps.append((now, good, total))
            # Snapshots older than the widest window can never be a base.
            horizon = now - max(w.long_window for w in slo.windows) - self.interval
            while len(snaps) > 2 and snaps[1][0] <= horizon:
                snaps.pop(0)
            for policy in slo.windows:
                burn_long = self._burn(slo, now, policy.long_window)
                burn_short = self._burn(slo, now, policy.short_window)
                m.record(
                    metric(
                        "repro_slo_burn_rate", slo=slo.name, severity=policy.severity
                    ),
                    now,
                    burn_long,
                )
                self._step_tier(
                    slo,
                    policy,
                    now,
                    active=(burn_long >= policy.factor and burn_short >= policy.factor),
                    burn=max(burn_long, burn_short),
                )

    def _step_tier(
        self, slo: SLO, policy: BurnRatePolicy, now: float, active: bool, burn: float
    ) -> None:
        tier = self._tiers.setdefault((slo.name, policy.severity), _TierState())
        if active:
            if tier.state == "inactive":
                tier.state = "pending"
                tier.pending_at = now
            if tier.state == "pending" and now - tier.pending_at >= self.pending_for:
                self._fire(slo, policy, tier, now, burn)
            tier.quiet_ticks = 0
        else:
            if tier.state == "pending":
                tier.state = "inactive"
            elif tier.state == "firing":
                tier.quiet_ticks += 1
                if tier.quiet_ticks >= self.resolve_after:
                    self._resolve(slo, policy, tier, now)

    def _fire(
        self, slo: SLO, policy: BurnRatePolicy, tier: _TierState, now: float, burn: float
    ) -> None:
        tier.state = "firing"
        prior = tier.alert
        if prior is not None and prior.state == "resolved":
            prior.refires += 1
        alert = Alert(
            slo=slo.name,
            severity=policy.severity,
            factor=policy.factor,
            long_window=policy.long_window,
            short_window=policy.short_window,
            pending_at=tier.pending_at,
            fired_at=now,
            burn_rate=burn,
        )
        tier.alert = alert
        self.alerts.append(alert)
        self.hub.metrics.incr(
            metric("repro_slo_alerts_total", slo=slo.name, severity=policy.severity)
        )
        self.hub.events.emit(
            "SLOBurnRate",
            f"{slo.name}: {policy.severity} burn-rate alert "
            f"(>{policy.factor}x budget over {policy.long_window:g}s/"
            f"{policy.short_window:g}s windows)",
            involved_kind="SLO",
            involved_name=slo.name,
            type="Warning",
            source="slo-evaluator",
        )

    def _resolve(
        self, slo: SLO, policy: BurnRatePolicy, tier: _TierState, now: float
    ) -> None:
        tier.state = "inactive"
        tier.quiet_ticks = 0
        alert = tier.alert
        if alert is not None and alert.state == "firing":
            alert.state = "resolved"
            alert.resolved_at = now
        self.hub.events.emit(
            "SLOResolved",
            f"{slo.name}: {policy.severity} burn-rate alert resolved",
            involved_kind="SLO",
            involved_name=slo.name,
            type="Normal",
            source="slo-evaluator",
        )

    # -- artifact ----------------------------------------------------------
    def attainment(self, slo: SLO) -> Optional[float]:
        good, total = self._totals(slo)
        if total <= 0:
            return None
        return good / total

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "resolve_after": self.resolve_after,
            "slos": [
                dict(slo.to_dict(), attainment=self.attainment(slo))
                for slo in self.slos
            ],
            "alerts": [a.to_dict() for a in self.alerts],
        }

"""In-process scenario runners for the obs CLI.

``python -m repro.obs explain steady0`` needs an instrumented run to
explain. These runners reproduce the two capstone benchmarks —
``benchmarks/test_failover.py`` (HA DevMgr leader killed mid-burst,
seed 13) and ``benchmarks/test_chaos_recovery.py`` (busiest node crashed,
seed 11) — with identical constants, under an enabled hub, and hand back
the artifact. Because both the benchmarks and the simulator are seeded
and deterministic, the CLI's story is the benchmark's story.
"""

from __future__ import annotations

from typing import Dict

from ..analysis.resets import reset_all
from ..chaos import ChaosEngine
from ..cluster import Cluster, ClusterConfig
from ..core import HAKubeShare, KubeShare
from ..sim import Environment
from .runtime import ObsHub, disable, enable

__all__ = ["run_failover", "run_chaos", "SCENARIOS"]

# Constants mirrored from benchmarks/test_failover.py.
FAILOVER_SEED = 13
N_STEADY = 4
N_BURST = 8
BURST_START = 40.0
BURST_GAP = 1.25
FAILOVER_FAULT_AT = 45.0
FAILOVER_HORIZON = 70.0

# Constants mirrored from benchmarks/test_chaos_recovery.py.
CHAOS_SEED = 11
CHAOS_N_JOBS = 6
CHAOS_DEMAND = 0.35
CHAOS_FAULT_AT = 45.0
CHAOS_HORIZON = 85.0


def run_failover(
    replicas: int = 2, label: str = "failover", profile: bool = False
) -> Dict[str, object]:
    """The HA failover benchmark under observation; returns the artifact."""
    from ..workloads.jobs import InferenceJob

    reset_all()
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=4, gpus_per_node=2)).start()
    hub = ObsHub(env, label=label)
    hub.attach_cluster(cluster)
    enable(hub)
    try:
        ks = HAKubeShare(cluster, replicas=replicas, isolation="token").start()
        hub.attach_kubeshare(ks)
        hub.start_sampler()
        hub.start_slo()
        if profile:
            hub.start_profiler()

        for i in range(N_STEADY):
            name = f"steady{i}"
            job = InferenceJob.from_demand(name, demand=0.35, duration=400.0)
            ks.submit(
                ks.make_sharepod(
                    name,
                    gpu_request=0.35,
                    gpu_limit=0.6,
                    gpu_mem=0.3,
                    workload=job.workload(),
                )
            )

        def submitter():
            for i in range(N_BURST):
                name = f"burst{i}"
                job = InferenceJob.from_demand(name, demand=0.2, duration=200.0)
                ks.submit(
                    ks.make_sharepod(
                        name,
                        gpu_request=0.2,
                        gpu_limit=0.4,
                        gpu_mem=0.3,
                        workload=job.workload(),
                    )
                )
                yield env.timeout(BURST_GAP)

        def start_burst():
            yield env.timeout(BURST_START)
            env.process(submitter(), name="burst-submitter")

        env.process(start_burst(), name="burst-starter")

        engine = ChaosEngine(cluster, kubeshare=ks, seed=FAILOVER_SEED)
        engine.register_controllers(ks.sched_group, ks.devmgr_group)
        engine.controller_crash(at=FAILOVER_FAULT_AT, target="kubeshare-devmgr")
        engine.start()

        env.run(until=FAILOVER_HORIZON)
        return _finish(hub)
    finally:
        disable()


def run_chaos(
    recovery: bool = True, label: str = "chaos", profile: bool = False
) -> Dict[str, object]:
    """The chaos node-crash benchmark under observation; returns the artifact."""
    from ..workloads.jobs import InferenceJob

    reset_all()
    env = Environment()
    cluster = Cluster(
        env, ClusterConfig(nodes=4, gpus_per_node=2, node_lifecycle=recovery)
    ).start()
    hub = ObsHub(env, label=label)
    hub.attach_cluster(cluster)
    enable(hub)
    try:
        ks = KubeShare(cluster, isolation="token").start()
        hub.attach_kubeshare(ks)
        hub.start_sampler()
        hub.start_slo()
        if profile:
            hub.start_profiler()

        for i in range(CHAOS_N_JOBS):
            job = InferenceJob.from_demand(
                f"job{i}", demand=CHAOS_DEMAND, duration=400.0
            )
            ks.submit(
                ks.make_sharepod(
                    f"sp{i}",
                    gpu_request=CHAOS_DEMAND,
                    gpu_limit=0.6,
                    gpu_mem=0.3,
                    workload=job.workload(),
                    restart_policy="reschedule",
                )
            )

        engine = ChaosEngine(cluster, kubeshare=ks, seed=CHAOS_SEED)
        engine.node_crash(at=CHAOS_FAULT_AT)
        engine.start()

        env.run(until=CHAOS_HORIZON)
        return _finish(hub)
    finally:
        disable()


def _finish(hub: ObsHub) -> Dict[str, object]:
    """Snapshot, attaching the (host-time) profile section when armed —
    it rides along for CLI export but never enters the snapshot itself."""
    art = hub.snapshot()
    if hub.profiler is not None:
        art["profile"] = hub.profiler.to_dict()
    return art


SCENARIOS = {
    "failover": run_failover,
    "chaos": run_chaos,
}

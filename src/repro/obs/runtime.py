"""The observability hub and its zero-cost-when-disabled hook surface.

Instrumented modules never talk to the tracer / event recorder / decision
log directly: they call the module-level helpers below (``span``,
``event``, ``token_grant``, ``reconcile_ctx``, …), each of which returns
immediately when no hub is enabled. That keeps the disabled cost of every
hook to one global read and one ``is None`` test, and keeps the
instrumentation free of import cycles — this module imports only the
standard library at import time; the hub's parts are imported lazily at
construction.

Determinism contract: every helper is pure bookkeeping in virtual time.
No helper sleeps, yields, reads the wall clock, consumes randomness, or
draws from the shared ObjectMeta uid counter, so an identical-seed run
replays byte-identically with the hub enabled or disabled (the
acceptance check of the observability PR). Event write-through does
advance etcd's revision counter, but nothing decision-relevant depends
on absolute revisions — only on CAS equality, which is unaffected.

Enable explicitly::

    hub = ObsHub(cluster.env).attach_cluster(cluster)
    enable(hub)

or from the environment (the pattern the chaos/failover benchmarks use)::

    hub = install_from_env(cluster, kubeshare=ks, label="failover")
    # None unless REPRO_OBS is set truthy
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

__all__ = [
    "ObsHub",
    "ENV_FLAG",
    "ENV_DIR",
    "current",
    "enabled",
    "enable",
    "disable",
    "install_from_env",
    "install_federation_from_env",
]

#: set truthy (e.g. ``REPRO_OBS=1``) to arm observability in benchmarks.
ENV_FLAG = "REPRO_OBS"
#: where armed benchmarks drop their artifacts.
ENV_DIR = "REPRO_OBS_DIR"

_FALSY = ("", "0", "false", "no", "off")

_hub: Optional["ObsHub"] = None


class _NullCtx:
    """Reusable no-op context manager for disabled span helpers."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullCtx()


class ObsHub:
    """One run's worth of spans, events, decisions, and metric families."""

    def __init__(self, env, label: str = "run", sample_interval: float = 1.0) -> None:
        from ..metrics.collector import MetricsRegistry
        from .decisions import DecisionLog
        from .hist import HistogramInstruments
        from .kevents import EventRecorder
        from .tracing import Tracer

        self.env = env
        self.label = label
        self.sample_interval = sample_interval
        self.tracer = Tracer(env)
        self.events = EventRecorder(env)
        self.decisions = DecisionLog()
        self.metrics = MetricsRegistry()
        #: latency histograms fed by span closures + direct seams.
        self.hist = HistogramInstruments(self.metrics)
        self.tracer.on_end = self.hist.on_span_end
        #: armed on demand via start_slo() / start_profiler().
        self.slo = None
        self.profiler = None
        #: SharePod key -> root journey span.
        self.roots: Dict[str, Any] = {}
        #: leadership group name -> open reign span.
        self._reigns: Dict[str, Any] = {}
        self._clusters: List[Any] = []
        self._groups: List[Any] = []
        self._controllers: List[Any] = []
        self._sampler_proc = None
        #: per-cluster last-seen etcd revision (keyed by attach order —
        #: a single scalar would corrupt the rate series the moment a
        #: second cluster is attached, e.g. under federation).
        self._last_revision: Dict[int, int] = {}

    # -- wiring ------------------------------------------------------------
    def attach_cluster(self, cluster) -> "ObsHub":
        """Bind the event write-through and sampler to a cluster."""
        cluster.api.register_crd("Event")
        if self.events.api is None:
            self.events.api = cluster.api
        self._clusters.append(cluster)
        return self

    def attach_federation(self, fed) -> "ObsHub":
        """Bind every member cluster plus the federation's own apiserver."""
        fed.api.register_crd("Event")
        if self.events.api is None:
            self.events.api = fed.api
        for name in sorted(fed.members):
            member = fed.members[name]
            self.attach_cluster(member.cluster)
            self.attach_kubeshare(member.kubeshare)
        return self

    def attach_kubeshare(self, ks) -> "ObsHub":
        """Register KubeShare's controllers (single-instance or HA) for
        work-queue / informer-lag sampling."""
        if hasattr(ks, "sched_group"):
            self._groups.extend([ks.sched_group, ks.devmgr_group])
        else:
            self._controllers.extend([ks.sched, ks.devmgr])
        return self

    def start_sampler(self, interval: Optional[float] = None) -> "ObsHub":
        """Start the periodic read-only metric sampler process."""
        if interval is not None:
            self.sample_interval = interval
        if self._sampler_proc is None:
            self._sampler_proc = self.env.process(self._sample(), name="obs-sampler")
        return self

    def start_slo(self, slos=None, interval: float = 1.0) -> "ObsHub":
        """Start the virtual-time SLO evaluator (default SLO set unless
        an explicit list is given)."""
        from .slo import SLOEvaluator

        if self.slo is None:
            self.slo = SLOEvaluator(self, slos=slos, interval=interval).start()
        return self

    def start_profiler(self) -> "ObsHub":
        """Install the wall-clock profiler around the kernel's dispatch.

        Host-time data stays out of :meth:`snapshot`; see
        :mod:`repro.obs.profile` and :meth:`export_dir`.
        """
        from .profile import WallProfiler

        if self.profiler is None:
            self.profiler = WallProfiler(self.env, tracer=self.tracer).install()
        return self

    def _live_controllers(self) -> List[Any]:
        out = list(self._controllers)
        for group in self._groups:
            active = group.active_controller
            if active is not None:
                out.append(active)
        return out

    def _sample(self):
        from .promfmt import metric

        while True:
            yield self.env.timeout(self.sample_interval)
            now = self.env.now
            m = self.metrics
            multi = len(self._clusters) > 1
            # Kernel-wide, not per-cluster: recording this inside the loop
            # below used to stack one duplicate same-timestamp sample per
            # attached cluster in federation runs.
            m.record("repro_sim_events_total", now, self.env.events_processed)
            for i, cluster in enumerate(self._clusters):
                # Single-cluster series keep their historical names; with
                # several clusters attached each gets its own label.
                tag = {}
                if multi:
                    prefix = getattr(cluster.config, "node_prefix", "")
                    tag = {"cluster": prefix.rstrip("-") or str(i)}
                rev = cluster.etcd.revision
                m.record(metric("repro_etcd_revision", **tag), now, rev)
                last = self._last_revision.get(i)
                if last is not None:
                    m.record(
                        metric("repro_etcd_revision_rate", **tag),
                        now,
                        (rev - last) / self.sample_interval,
                    )
                self._last_revision[i] = rev
                m.record(
                    metric("repro_workqueue_depth", queue="kube-scheduler", **tag),
                    now,
                    len(cluster.scheduler.queue),
                )
                for node in cluster.nodes:
                    backend = node.backend
                    for uuid in backend.device_uuids():
                        m.record(
                            metric("repro_gpu_quota_occupancy", device=uuid),
                            now,
                            backend.window_occupancy(uuid),
                        )
            for ctl in self._live_controllers():
                m.record(
                    metric("repro_workqueue_depth", controller=ctl.name),
                    now,
                    len(ctl.queue),
                )
                lag = ctl.api.etcd.revision - ctl.informer.last_seen_revision
                m.record(metric("repro_informer_lag", controller=ctl.name), now, lag)
                self.hist.informer_lag(now, lag, controller=ctl.name)

    # -- artifact ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Freeze the run into a JSON-serializable artifact dict.

        Intended for end-of-run export: still-open spans are closed with
        status ``open`` at the current virtual time.
        """
        self.events.flush()
        self.tracer.close_open()
        return {
            "label": self.label,
            "now": self.env.now,
            "spans": self.tracer.to_dicts(),
            "dropped_spans": self.tracer.dropped,
            "events": self.events.to_dicts(),
            "decisions": self.decisions.to_dicts(),
            "counters": dict(self.metrics.counters),
            "series": {
                name: {"times": list(ts.times), "values": list(ts.values)}
                for name, ts in sorted(self.metrics.series.items())
            },
            "histograms": self.hist.to_dicts(),
            # Everything above is virtual-time deterministic — the
            # profiler's host timings are exported separately (export_dir)
            # so identical-seed snapshots stay byte-identical.
            "slo": self.slo.to_dict() if self.slo is not None else None,
        }

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh)
        return path

    def export_dir(self, directory: str, label: Optional[str] = None) -> List[str]:
        """Write artifact + Chrome trace + events dump + Prometheus text
        (+ SLO report when the evaluator ran, + flamegraph when the
        profiler ran)."""
        from .artifact import export_all

        os.makedirs(directory, exist_ok=True)
        paths = export_all(self.snapshot(), directory, label or self.label)
        if self.profiler is not None:
            paths.extend(self.profiler.export(directory, label or self.label))
        return paths


# -- global hub ------------------------------------------------------------
def current() -> Optional[ObsHub]:
    return _hub


def enabled() -> bool:
    return _hub is not None


def enable(hub: ObsHub) -> ObsHub:
    global _hub
    _hub = hub
    return hub


def disable() -> None:
    global _hub
    if _hub is not None and _hub.profiler is not None:
        # Leave no dangling kernel hook behind — a profiler must never
        # outlive its hub (tests reset via this path too).
        _hub.profiler.uninstall()
    _hub = None


def install_from_env(
    cluster, kubeshare=None, label: str = "run", sampler: bool = True
) -> Optional[ObsHub]:
    """Arm observability when ``REPRO_OBS`` is set truthy.

    Mirrors ``repro.analysis.race.install_from_env``: benchmarks call this
    unconditionally and get ``None`` (no hub, no overhead) unless the
    environment opts in.
    """
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    if value in _FALSY:
        return None
    hub = ObsHub(cluster.env, label=label)
    hub.attach_cluster(cluster)
    if kubeshare is not None:
        hub.attach_kubeshare(kubeshare)
    if sampler:
        hub.start_sampler()
    hub.start_slo()
    _maybe_start_profiler(hub)
    return enable(hub)


def _maybe_start_profiler(hub: ObsHub) -> None:
    from .profile import ENV_PROFILE_FLAG

    if os.environ.get(ENV_PROFILE_FLAG, "").strip().lower() not in _FALSY:
        hub.start_profiler()


def install_federation_from_env(
    fed, label: str = "federation", sampler: bool = True
) -> Optional[ObsHub]:
    """:func:`install_from_env` for a whole federation: every member
    cluster's series is labeled ``cluster="<name>"``, and federation
    decisions/health transitions land in the shared decision log."""
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    if value in _FALSY:
        return None
    hub = ObsHub(fed.env, label=label)
    hub.attach_federation(fed)
    if sampler:
        hub.start_sampler()
    hub.start_slo()
    _maybe_start_profiler(hub)
    return enable(hub)


# -- generic hooks ---------------------------------------------------------
def span(name: str, track: str, trace_id: Optional[str] = None, **attrs):
    hub = _hub
    if hub is None:
        return _NULL
    return hub.tracer.span(name, track, trace_id=trace_id, **attrs)


def instant(name: str, track: str, trace_id: Optional[str] = None, **attrs) -> None:
    hub = _hub
    if hub is not None:
        hub.tracer.instant(name, track, trace_id=trace_id, **attrs)


def event(
    reason: str,
    message: str,
    involved_kind: str = "",
    involved_name: str = "",
    involved_namespace: str = "default",
    type: str = "Normal",
    source: str = "",
) -> None:
    hub = _hub
    if hub is not None:
        hub.events.emit(
            reason,
            message,
            involved_kind=involved_kind,
            involved_name=involved_name,
            involved_namespace=involved_namespace,
            type=type,
            source=source,
        )


def incr(name: str, amount: float = 1.0) -> None:
    hub = _hub
    if hub is not None:
        hub.metrics.incr(name, amount)


# -- apiserver -------------------------------------------------------------
def api_write(verb: str, kind: str, namespace: str, name: str) -> None:
    """Instant marker for a successful apiserver write (Event writes are
    skipped — the recorder's own traffic would only be noise)."""
    hub = _hub
    if hub is None or kind == "Event":
        return
    hub.metrics.incr(f'repro_api_writes_total{{verb="{verb}"}}')
    trace_id = f"{namespace}/{name}" if kind == "SharePod" else None
    hub.tracer.instant(
        f"{verb} {kind}", "apiserver", trace_id=trace_id, object=f"{namespace}/{name}"
    )


def sharepod_created(obj) -> None:
    """Open the SharePod's journey root span (apiserver create)."""
    hub = _hub
    if hub is None:
        return
    key = obj.metadata.key
    if key not in hub.roots:
        hub.roots[key] = hub.tracer.start(
            f"sharepod {key}",
            track=f"sharepod:{obj.metadata.name}",
            trace_id=key,
            detached=True,
        )


def sharepod_running(key: str) -> None:
    hub = _hub
    if hub is None:
        return
    root = hub.roots.get(key)
    if root is not None:
        hub.tracer.end(root, status="ok")


def sharepod_failed(key: str, message: str = "") -> None:
    hub = _hub
    if hub is None:
        return
    root = hub.roots.get(key)
    if root is not None:
        if message:
            root.attrs["message"] = message
        hub.tracer.end(root, status="error")


# -- controllers -----------------------------------------------------------
def reconcile_ctx(controller, key: str):
    """Span around one reconcile pass; parents into the SharePod journey
    when the controller reconciles SharePods."""
    hub = _hub
    if hub is None:
        return _NULL
    parent = hub.roots.get(key) if getattr(controller, "kind", None) == "SharePod" else None
    trace_id = key if parent is not None else None
    return hub.tracer.span(
        "reconcile", controller.name, parent=parent, trace_id=trace_id, key=key
    )


def decision_audit():
    """A fresh Algorithm 1 audit, or ``None`` when disabled."""
    hub = _hub
    if hub is None:
        return None
    return hub.decisions.new_audit()


def commit_decision(
    audit,
    sharepod_key: str,
    decision,
    outcome: Optional[str] = None,
    started_at: Optional[float] = None,
) -> None:
    hub = _hub
    if hub is None or audit is None:
        return
    now = hub.env.now
    hub.decisions.commit(audit, sharepod_key, now)
    if outcome is None:
        outcome = "rejected" if decision.rejected else "scheduled"
    hub.metrics.incr(f'repro_sched_decisions_total{{outcome="{outcome}"}}')
    if started_at is not None:
        # One Algorithm 1 pass in virtual time: reconcile entry -> commit
        # (modeled op latency + apiserver gating; the host-time cost of
        # the pass is Fig 11's algo_wall_times, not this histogram).
        hub.hist.algo1_pass(now, now - started_at)
    if outcome == "scheduled":
        root = hub.roots.get(sharepod_key)
        if root is not None:
            hub.hist.schedule_latency(now, now - root.start)


def policy_decision(
    action: str, subject: str, reason: str, details: Optional[Dict[str, Any]] = None
) -> None:
    """Record a multi-tenant policy decision (admission, preemption,
    eviction, reaping) in the decision log, alongside Algorithm 1's
    placement records, so ``explain <sharepod>`` shows the full story."""
    hub = _hub
    if hub is None:
        return
    from .decisions import DecisionRecord

    hub.decisions.records.append(
        DecisionRecord(
            t=hub.env.now,
            sharepod=subject,
            request=dict(details or {}),
            placement="policy",
            reason=reason,
            rule=f"policy:{action}",
        )
    )
    hub.metrics.incr(f'repro_policy_decisions_total{{action="{action}"}}')


# -- leader election -------------------------------------------------------
def leader_changed(group_name: str, identity: str, epoch: int) -> None:
    hub = _hub
    if hub is None:
        return
    prev = hub._reigns.get(group_name)
    if prev is not None and prev.end is None:
        hub.tracer.end(prev, status="ok")
    hub._reigns[group_name] = hub.tracer.start(
        f"reign {identity}",
        track=f"leader:{group_name}",
        detached=True,
        attrs={"identity": identity, "epoch": epoch},
    )
    hub.metrics.incr(f'repro_leader_changes_total{{group="{group_name}"}}')
    hub.events.emit(
        "LeaderChanged",
        f"{identity} acquired leadership (epoch {epoch})",
        involved_kind="Lease",
        involved_name=group_name,
        source="leader-elector",
    )


def leader_lost(group_name: str, identity: str, reason: str) -> None:
    hub = _hub
    if hub is None:
        return
    reign = hub._reigns.get(group_name)
    if reign is not None and reign.end is None and reign.attrs.get("identity") == identity:
        reign.attrs["lost"] = reason
        hub.tracer.end(reign, status="error")
    hub.events.emit(
        "LeaderLost",
        f"{identity} lost leadership: {reason}",
        involved_kind="Lease",
        involved_name=group_name,
        type="Warning",
        source="leader-elector",
    )


# -- token backend ---------------------------------------------------------
def token_grant(device_uuid: str, client_id: str, quota: float) -> None:
    hub = _hub
    if hub is None:
        return
    hub.metrics.incr(f'repro_token_grants_total{{device="{device_uuid}"}}')
    hub.tracer.instant(
        "token.grant", "token-backend", device=device_uuid, client=client_id, quota=quota
    )


def token_deny(device_uuid: str, queued: int) -> None:
    hub = _hub
    if hub is None:
        return
    hub.metrics.incr(f'repro_token_denies_total{{device="{device_uuid}"}}')
    hub.events.emit(
        "TokenThrottled",
        "every queued client is at its gpu_limit; waiting for the usage window to slide",
        involved_kind="GPU",
        involved_name=device_uuid,
        type="Warning",
        source="token-backend",
    )


# -- device library (frontend) --------------------------------------------
def token_wait_ctx(pod_name: str, device_uuid: str):
    hub = _hub
    if hub is None:
        return _NULL
    return hub.tracer.span(
        "token.wait", f"app:{pod_name}", trace_id=f"default/{pod_name}", device=device_uuid
    )


def launch_ctx(pod_name: str, device_uuid: str, work: float):
    hub = _hub
    if hub is None:
        return _NULL
    return hub.tracer.span(
        "cuLaunchKernel",
        f"app:{pod_name}",
        trace_id=f"default/{pod_name}",
        device=device_uuid,
        work=round(work, 6),
    )


# -- federation ------------------------------------------------------------
def cluster_health(name: str, old: str, new: str) -> None:
    """Record a member-cluster health transition (prober state machine)."""
    hub = _hub
    if hub is None:
        return
    hub.metrics.incr(f'repro_cluster_health_transitions_total{{to="{new}"}}')
    hub.tracer.instant(
        f"health {old}->{new}", "federation", cluster=name
    )
    hub.events.emit(
        "ClusterHealthChanged",
        f"member {name}: {old} -> {new}",
        involved_kind="Cluster",
        involved_name=name,
        type="Warning" if new != "Healthy" else "Normal",
        source="cluster-health-prober",
    )


def federation_decision(
    action: str, subject: str, reason: str, details: Optional[Dict[str, Any]] = None
) -> None:
    """Record a global-placer decision (place, defer, reschedule, fence,
    complete) in the decision log, alongside Algorithm 1's placement
    records, so the full cross-cluster story of a record is explainable."""
    hub = _hub
    if hub is None:
        return
    from .decisions import DecisionRecord

    hub.decisions.records.append(
        DecisionRecord(
            t=hub.env.now,
            sharepod=subject,
            request=dict(details or {}),
            placement="federation",
            reason=reason,
            rule=f"federation:{action}",
        )
    )
    hub.metrics.incr(f'repro_federation_decisions_total{{action="{action}"}}')
    if action == "place" and details and "latency" in details:
        hub.hist.federation_place(hub.env.now, float(details["latency"]))


# -- chaos -----------------------------------------------------------------
def fault_injected(kind: str, target: str, outcome: str = "") -> None:
    hub = _hub
    if hub is None:
        return
    hub.metrics.incr(f'repro_chaos_faults_total{{kind="{kind}"}}')
    hub.tracer.instant("fault", "chaos", kind=kind, target=target)
    hub.events.emit(
        "ChaosFaultInjected",
        f"{kind} -> {target}" + (f" ({outcome})" if outcome else ""),
        involved_kind="Fault",
        involved_name=kind,
        type="Warning",
        source="chaos-engine",
    )


# The global hub is module state; tests reset it like every other global.
from ..analysis.resets import register_reset  # noqa: E402

register_reset("repro.obs.hub", disable)

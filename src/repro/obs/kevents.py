"""Kubernetes-style Event objects and the deduplicating recorder.

Controllers narrate themselves the way real kube controllers do: each
noteworthy transition emits an :class:`KubeEvent` (``Scheduled``,
``FailedScheduling``, ``Evicted``, ``LeaderChanged``, ``TokenThrottled``,
…) through an :class:`EventRecorder`, which — like the Kubernetes event
correlator — dedups on (involved object, reason, message, source): a
repeat bumps ``count`` and ``last_time`` instead of minting a new object.

Events are *stored through the apiserver* (kind ``Event``), so they are
listable/watchable like any resource, but the recorder's local ledger is
the source of truth: a write that hits an apiserver outage or a fencing
rejection is buffered and flushed on the next emit instead of raised —
observability must never take a controller down with it.

Event objects draw uids from a recorder-local counter (``evt-…``), not
the shared ObjectMeta uid counter, so enabling observability does not
shift the uid sequence of Pods/Nodes — a prerequisite for the
identical-seed, tracing-on-vs-off replay guarantee.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster.objects import DEFAULT_NAMESPACE, ObjectMeta
from ..perf import fastpath

__all__ = ["KubeEvent", "EventRecorder", "EVENT_NORMAL", "EVENT_WARNING"]

EVENT_NORMAL = "Normal"
EVENT_WARNING = "Warning"


@dataclass
class KubeEvent:
    """A Kubernetes ``v1.Event`` analogue."""

    metadata: ObjectMeta
    reason: str = ""
    message: str = ""
    #: Normal | Warning
    type: str = EVENT_NORMAL
    involved_kind: str = ""
    involved_namespace: str = DEFAULT_NAMESPACE
    involved_name: str = ""
    #: reporting component, e.g. ``kubeshare-sched``.
    source: str = ""
    count: int = 1
    first_time: float = 0.0
    last_time: float = 0.0

    kind = "Event"

    @property
    def name(self) -> str:
        return self.metadata.name

    @property
    def involved_key(self) -> str:
        return f"{self.involved_kind}/{self.involved_namespace}/{self.involved_name}"

    def clone(self) -> "KubeEvent":
        if fastpath.slow_kernel:
            return copy.deepcopy(self)
        return KubeEvent(
            metadata=self.metadata.clone(),
            reason=self.reason,
            message=self.message,
            type=self.type,
            involved_kind=self.involved_kind,
            involved_namespace=self.involved_namespace,
            involved_name=self.involved_name,
            source=self.source,
            count=self.count,
            first_time=self.first_time,
            last_time=self.last_time,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.metadata.name,
            "namespace": self.metadata.namespace,
            "reason": self.reason,
            "message": self.message,
            "type": self.type,
            "involved_kind": self.involved_kind,
            "involved_namespace": self.involved_namespace,
            "involved_name": self.involved_name,
            "source": self.source,
            "count": self.count,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


class EventRecorder:
    """Dedup + best-effort apiserver write-through for events."""

    def __init__(self, env, api=None) -> None:
        self.env = env
        #: optional APIServer; ``None`` keeps events local-only.
        self.api = api
        #: every distinct event of the run (the source of truth).
        self.ledger: List[KubeEvent] = []
        self.emitted_total = 0
        self.failed_writes = 0
        self._index: Dict[Tuple[str, str, str, str], KubeEvent] = {}
        #: events whose latest state has not reached the apiserver yet.
        self._dirty: List[KubeEvent] = []
        self._seq = itertools.count(1)

    # -- emitting ----------------------------------------------------------
    def emit(
        self,
        reason: str,
        message: str,
        involved_kind: str = "",
        involved_name: str = "",
        involved_namespace: str = DEFAULT_NAMESPACE,
        type: str = EVENT_NORMAL,
        source: str = "",
    ) -> KubeEvent:
        """Record an event; dedups against prior identical emissions."""
        now = self.env.now
        self.emitted_total += 1
        dedup_key = (
            f"{involved_kind}/{involved_namespace}/{involved_name}",
            reason,
            message,
            source,
        )
        ev = self._index.get(dedup_key)
        if ev is not None:
            ev.count += 1
            ev.last_time = now
        else:
            seq = next(self._seq)
            stem = involved_name or reason.lower() or "event"
            ev = KubeEvent(
                metadata=ObjectMeta(
                    name=f"{stem}.{seq:07d}",
                    namespace=involved_namespace or DEFAULT_NAMESPACE,
                    uid=f"evt-{seq:08d}",
                ),
                reason=reason,
                message=message,
                type=type,
                involved_kind=involved_kind,
                involved_namespace=involved_namespace,
                involved_name=involved_name,
                source=source,
                first_time=now,
                last_time=now,
            )
            self._index[dedup_key] = ev
            self.ledger.append(ev)
        if ev not in self._dirty:
            self._dirty.append(ev)
        self.flush()
        return ev

    # -- apiserver write-through -------------------------------------------
    def flush(self) -> int:
        """Push pending event state through the apiserver (best effort).

        Failures (outage, fencing, races) leave the event queued for the
        next flush; they are counted but never raised into the emitter.
        """
        if self.api is None or not self._dirty:
            return 0
        from ..cluster.apiserver import (
            AlreadyExists,
            Conflict,
            NotFound,
            ServiceUnavailable,
            UnknownKind,
        )

        written = 0
        still_dirty: List[KubeEvent] = []
        for ev in self._dirty:
            try:
                try:
                    self.api.create(ev.clone())
                except AlreadyExists:
                    count, last = ev.count, ev.last_time

                    def bump(stored: KubeEvent) -> None:
                        stored.count = count
                        stored.last_time = last

                    self.api.patch("Event", ev.name, bump, ev.metadata.namespace)
                written += 1
            except (ServiceUnavailable, Conflict, NotFound, UnknownKind):
                self.failed_writes += 1
                still_dirty.append(ev)
        self._dirty = still_dirty
        return written

    @property
    def pending_writes(self) -> int:
        return len(self._dirty)

    # -- views -------------------------------------------------------------
    def for_object(
        self, name: str, kind: Optional[str] = None, namespace: Optional[str] = None
    ) -> List[KubeEvent]:
        return [
            e
            for e in self.ledger
            if e.involved_name == name
            and (kind is None or e.involved_kind == kind)
            and (namespace is None or e.involved_namespace == namespace)
        ]

    def by_reason(self, reason: str) -> List[KubeEvent]:
        return [e for e in self.ledger if e.reason == reason]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [e.to_dict() for e in self.ledger]


def events_table(events: List[Dict[str, object]]) -> str:
    """Render event dicts as a ``kubectl get events``-style table."""
    header = f"{'LAST':>9}  {'TYPE':7} {'REASON':<20} {'OBJECT':<38} {'COUNT':>5}  MESSAGE"
    lines = [header]
    for e in events:
        obj = f"{e['involved_kind'].lower()}/{e['involved_name']}"
        lines.append(
            f"{e['last_time']:>9.3f}  {e['type']:7} {str(e['reason']):<20} "
            f"{obj:<38} {e['count']:>5}  {e['message']}"
        )
    return "\n".join(lines)

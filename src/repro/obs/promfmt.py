"""Prometheus text exposition over :class:`repro.metrics.MetricsRegistry`.

Metric names follow the Prometheus convention directly in the registry
key: ``family`` or ``family{label="value",...}``. Counters are exposed as
``counter``; time series as ``gauge`` carrying the last recorded sample
(the full series lives in the run artifact).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

__all__ = ["prometheus_text"]

_FAMILY_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?$")


def _family(name: str) -> str:
    m = _FAMILY_RE.match(name)
    return m.group(1) if m else name


def _grouped(names: List[str]) -> List[Tuple[str, List[str]]]:
    """Group metric names by family, preserving first-seen family order."""
    order: List[str] = []
    groups: Dict[str, List[str]] = {}
    for name in names:
        fam = _family(name)
        if fam not in groups:
            groups[fam] = []
            order.append(fam)
        groups[fam].append(name)
    return [(fam, groups[fam]) for fam in order]


def _fmt_value(v: float) -> str:
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry) -> str:
    """Dump a MetricsRegistry in Prometheus text exposition format."""
    lines: List[str] = []
    for fam, names in _grouped(sorted(registry.counters)):
        lines.append(f"# TYPE {fam} counter")
        for name in names:
            lines.append(f"{name} {_fmt_value(registry.counters[name])}")
    for fam, names in _grouped(sorted(registry.series)):
        lines.append(f"# TYPE {fam} gauge")
        for name in names:
            ts = registry.series[name]
            if ts.values:
                lines.append(f"{name} {_fmt_value(ts.values[-1])}")
            else:
                lines.append(f"{name} 0")
    return "\n".join(lines) + "\n"

"""Prometheus text exposition over :class:`repro.metrics.MetricsRegistry`.

Metric names follow the Prometheus convention directly in the registry
key: ``family`` or ``family{label="value",...}``. Counters are exposed as
``counter``; time series as ``gauge`` carrying the last recorded sample
(the full series lives in the run artifact); histograms as ``histogram``
families with cumulative ``_bucket`` lines (including ``+Inf``) plus
``_sum``/``_count``, exactly per the exposition spec.

Label *values* are escaped per the spec (backslash, double-quote,
newline); use :func:`metric` to build registry keys so escaping happens
in exactly one place.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

__all__ = ["prometheus_text", "metric", "escape_label_value", "format_labels"]

_FAMILY_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?$")


def _family(name: str) -> str:
    m = _FAMILY_RE.match(name)
    return m.group(1) if m else name


def _split(name: str) -> Tuple[str, str]:
    """``family{labels}`` -> ``(family, "{labels}" or "")``."""
    m = _FAMILY_RE.match(name)
    if m is None:
        return name, ""
    return m.group(1), m.group(2) or ""


def escape_label_value(value: object) -> str:
    """Escape a label value per the Prometheus text exposition spec:
    backslash, double-quote, and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Dict[str, object]) -> str:
    """Render ``{k="v",...}`` with escaped values; ``""`` when empty."""
    if not labels:
        return ""
    body = ",".join(f'{k}="{escape_label_value(v)}"' for k, v in labels.items())
    return "{" + body + "}"


def metric(family: str, **labels: object) -> str:
    """Build a registry key ``family{label="escaped value",...}``."""
    return family + format_labels(labels)


def _with_le(label_body: str, le: str) -> str:
    """Merge an ``le`` label into an existing ``{...}`` body (or none)."""
    if label_body:
        return label_body[:-1] + f',le="{le}"}}'
    return f'{{le="{le}"}}'


def _fmt_le(bound: float) -> str:
    return repr(float(bound))


def _grouped(names: List[str]) -> List[Tuple[str, List[str]]]:
    """Group metric names by family, preserving first-seen family order."""
    order: List[str] = []
    groups: Dict[str, List[str]] = {}
    for name in names:
        fam = _family(name)
        if fam not in groups:
            groups[fam] = []
            order.append(fam)
        groups[fam].append(name)
    return [(fam, groups[fam]) for fam in order]


def _fmt_value(v: float) -> str:
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def prometheus_text(registry) -> str:
    """Dump a MetricsRegistry in Prometheus text exposition format."""
    lines: List[str] = []
    for fam, names in _grouped(sorted(registry.counters)):
        lines.append(f"# TYPE {fam} counter")
        for name in names:
            lines.append(f"{name} {_fmt_value(registry.counters[name])}")
    histograms = getattr(registry, "histograms", None) or {}
    for fam, names in _grouped(sorted(histograms)):
        lines.append(f"# TYPE {fam} histogram")
        for name in names:
            hist = histograms[name]
            family, label_body = _split(name)
            cumulative = 0
            for bound, bucket in zip(hist.boundaries, hist.bucket_counts):
                cumulative += bucket
                lines.append(
                    f"{family}_bucket{_with_le(label_body, _fmt_le(bound))} {cumulative}"
                )
            lines.append(f'{family}_bucket{_with_le(label_body, "+Inf")} {hist.count}')
            lines.append(f"{family}_sum{label_body} {_fmt_value(hist.sum)}")
            lines.append(f"{family}_count{label_body} {hist.count}")
    for fam, names in _grouped(sorted(registry.series)):
        lines.append(f"# TYPE {fam} gauge")
        for name in names:
            ts = registry.series[name]
            if ts.values:
                lines.append(f"{name} {_fmt_value(ts.values[-1])}")
            else:
                lines.append(f"{name} 0")
    return "\n".join(lines) + "\n"

"""Cross-layer observability in virtual time.

Four instruments over one simulated run, all recording against
``sim.Environment.now`` (never the wall clock) so enabling them cannot
perturb a seeded schedule:

* :mod:`repro.obs.tracing` — context-propagated spans over the full
  SharePod journey, exportable as Chrome trace-event JSON (Perfetto);
* :mod:`repro.obs.kevents` — Kubernetes-style ``Event`` objects with
  reason/involvedObject/count dedup, stored through the apiserver;
* :mod:`repro.obs.decisions` — the Algorithm 1 decision log: every
  candidate GPU per scheduling pass with verdicts, scores, rejections;
* :mod:`repro.obs.runtime` — the hub tying them to a
  :class:`~repro.metrics.MetricsRegistry` (work-queue depth, informer
  lag, etcd revision rate, token grant/deny counters, quota-window
  occupancy), dumped via :mod:`repro.obs.promfmt` in Prometheus text
  exposition format.

CLI: ``python -m repro.obs {trace,events,explain,export}`` — see
``README.md`` for the quickstart. Arm benchmarks with ``REPRO_OBS=1``.
"""

from .runtime import (
    ENV_DIR,
    ENV_FLAG,
    ObsHub,
    current,
    disable,
    enable,
    enabled,
    install_federation_from_env,
    install_from_env,
)

__all__ = [
    "ObsHub",
    "ENV_FLAG",
    "ENV_DIR",
    "current",
    "enabled",
    "enable",
    "disable",
    "install_federation_from_env",
    "install_from_env",
]

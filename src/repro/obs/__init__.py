"""Cross-layer observability in virtual time.

Four instruments over one simulated run, all recording against
``sim.Environment.now`` (never the wall clock) so enabling them cannot
perturb a seeded schedule:

* :mod:`repro.obs.tracing` — context-propagated spans over the full
  SharePod journey, exportable as Chrome trace-event JSON (Perfetto);
* :mod:`repro.obs.kevents` — Kubernetes-style ``Event`` objects with
  reason/involvedObject/count dedup, stored through the apiserver;
* :mod:`repro.obs.decisions` — the Algorithm 1 decision log: every
  candidate GPU per scheduling pass with verdicts, scores, rejections;
* :mod:`repro.obs.runtime` — the hub tying them to a
  :class:`~repro.metrics.MetricsRegistry` (work-queue depth, informer
  lag, etcd revision rate, token grant/deny counters, quota-window
  occupancy), dumped via :mod:`repro.obs.promfmt` in Prometheus text
  exposition format;
* :mod:`repro.obs.hist` — streaming fixed-boundary latency histograms
  (Prometheus ``_bucket``/``_sum``/``_count``, exact per-window
  p50/p95/p99) over the hot seams: Algorithm 1 passes, SharePod
  journeys, token waits, reconciles, informer lag, federation placement;
* :mod:`repro.obs.slo` — declarative SLOs evaluated in virtual time by
  a multi-window multi-burn-rate alerter (page/ticket tiers) whose
  alerts land as Events in the artifact;
* :mod:`repro.obs.profile` — the one deliberately wall-clock instrument:
  a continuous profiler around ``Environment.step`` writing
  speedscope-compatible collapsed-stack flamegraphs (kept out of the
  deterministic snapshot; arm with ``REPRO_OBS_PROFILE=1``).

CLI: ``python -m repro.obs {trace,events,explain,export,report,slo,profile}``
— see ``README.md`` for the quickstart. Arm benchmarks with ``REPRO_OBS=1``.
"""

from .runtime import (
    ENV_DIR,
    ENV_FLAG,
    ObsHub,
    current,
    disable,
    enable,
    enabled,
    install_federation_from_env,
    install_from_env,
)
from .slo import SLO, Alert, BurnRatePolicy, SLOEvaluator, default_slos

__all__ = [
    "ObsHub",
    "ENV_FLAG",
    "ENV_DIR",
    "current",
    "enabled",
    "enable",
    "disable",
    "install_federation_from_env",
    "install_from_env",
    "SLO",
    "Alert",
    "BurnRatePolicy",
    "SLOEvaluator",
    "default_slos",
]

"""Run artifacts: load, export, and render observability snapshots.

An artifact is the JSON dict produced by :meth:`ObsHub.snapshot` — spans,
events, decision log, counters, and sampled series of one run. Everything
here operates on that plain dict, so the CLI works identically on a live
hub and on a file saved by an armed benchmark.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .kevents import events_table
from .promfmt import prometheus_text
from .tracing import chrome_trace_json

__all__ = [
    "load",
    "export_all",
    "explain",
    "trace_summary",
    "artifact_prometheus_text",
    "hist_report",
    "slo_report",
]


def load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        art = json.load(fh)
    for field in ("spans", "events", "decisions"):
        art.setdefault(field, [])
    for field in ("counters", "series", "histograms"):
        art.setdefault(field, {})
    art.setdefault("slo", None)
    return art


class _RegistryView:
    """Adapt artifact counters/series/histograms dicts to promfmt."""

    class _TS:
        def __init__(self, data):
            self.values = data["values"]

    class _Hist:
        def __init__(self, data):
            self.boundaries = data["boundaries"]
            self.bucket_counts = data["bucket_counts"]
            self.sum = data["sum"]
            self.count = data["count"]

    def __init__(self, art: Dict[str, object]) -> None:
        self.counters = art.get("counters", {})
        self.series = {
            name: self._TS(data) for name, data in art.get("series", {}).items()
        }
        self.histograms = {
            name: self._Hist(data)
            for name, data in (art.get("histograms") or {}).items()
        }


def artifact_prometheus_text(art: Dict[str, object]) -> str:
    return prometheus_text(_RegistryView(art))


def export_all(art: Dict[str, object], directory: str, label: str) -> List[str]:
    """Write the standard artifact files; returns their paths.

    Always: ``.json`` (full artifact), ``.trace.json`` (Perfetto),
    ``.events.txt``, ``.prom``. When the run evaluated SLOs: ``.slo.json``
    (definitions, attainment, alert log). When a profile section is
    present (CLI ``profile`` runs): ``.folded`` (speedscope/flamegraph.pl
    collapsed stacks).
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    path = os.path.join(directory, f"{label}.json")
    with open(path, "w") as fh:
        json.dump(art, fh)
    paths.append(path)
    path = os.path.join(directory, f"{label}.trace.json")
    with open(path, "w") as fh:
        fh.write(chrome_trace_json(art["spans"]))  # type: ignore[arg-type]
    paths.append(path)
    path = os.path.join(directory, f"{label}.events.txt")
    with open(path, "w") as fh:
        fh.write(events_table(art["events"]) + "\n")  # type: ignore[arg-type]
    paths.append(path)
    path = os.path.join(directory, f"{label}.prom")
    with open(path, "w") as fh:
        fh.write(artifact_prometheus_text(art))
    paths.append(path)
    if art.get("slo"):
        path = os.path.join(directory, f"{label}.slo.json")
        with open(path, "w") as fh:
            json.dump(art["slo"], fh, indent=2)
        paths.append(path)
    profile = art.get("profile")
    if profile and profile.get("folded"):  # type: ignore[union-attr]
        path = os.path.join(directory, f"{label}.folded")
        with open(path, "w") as fh:
            fh.write("\n".join(profile["folded"]) + "\n")  # type: ignore[index]
        paths.append(path)
    return paths


def hist_report(art: Dict[str, object]) -> str:
    """Latency-distribution table: one row per histogram metric."""
    hists: Dict[str, dict] = art.get("histograms") or {}  # type: ignore[assignment]
    if not hists:
        return "(no histograms in this artifact)"
    header = (
        f"{'metric':<56} {'count':>7} {'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}"
    )
    lines = [header]
    for name in sorted(hists):
        h = hists[name]
        lines.append(
            f"{name:<56} {h['count']:>7} {h['p50']:>10.4f} {h['p95']:>10.4f} "
            f"{h['p99']:>10.4f} {h['max']:>10.4f}"
        )
    return "\n".join(lines)


def slo_report(art: Dict[str, object]) -> str:
    """Human-readable SLO attainment + burn-rate alert log."""
    slo: Optional[dict] = art.get("slo")  # type: ignore[assignment]
    if not slo:
        return "(no SLO section in this artifact — run with the evaluator armed)"
    lines = []
    for s in slo.get("slos", []):
        att = s.get("attainment")
        att_s = f"{att:.4%}" if att is not None else "(no traffic)"
        status = ""
        if att is not None:
            status = "  MET" if att >= s["objective"] else "  MISSED"
        lines.append(f"{s['name']}: objective {s['objective']:.2%}, attained {att_s}{status}")
        if s.get("description"):
            lines.append(f"  {s['description']}")
    alerts = slo.get("alerts", [])
    lines.append("")
    lines.append(f"burn-rate alerts: {len(alerts)}")
    for a in alerts:
        resolved = (
            f"resolved @ t={a['resolved_at']:.3f}s"
            if a.get("resolved_at") is not None
            else "still firing"
        )
        lines.append(
            f"  [{a['severity']:<6}] {a['slo']}  fired @ t={a['fired_at']:.3f}s "
            f"(burn {a['burn_rate']:.1f}x over {a['long_window']:g}s/"
            f"{a['short_window']:g}s), {resolved}"
        )
    return "\n".join(lines)


def trace_summary(art: Dict[str, object]) -> str:
    spans: List[dict] = art["spans"]  # type: ignore[assignment]
    tracks: Dict[str, int] = {}
    errors = 0
    for s in spans:
        tracks[str(s["track"])] = tracks.get(str(s["track"]), 0) + 1
        if s["status"] == "error":
            errors += 1
    lines = [
        f"{len(spans)} spans on {len(tracks)} tracks "
        f"({errors} error, {art.get('dropped_spans', 0)} dropped), "
        f"virtual end time t={art.get('now', 0.0):.3f}s"
    ]
    for track in sorted(tracks):
        lines.append(f"  {track:<32} {tracks[track]:>6} spans")
    return "\n".join(lines)


def _match_sharepod(art: Dict[str, object], sharepod: str) -> Optional[str]:
    """Resolve a bare name or full key against the artifact's decisions,
    spans, and events; returns the canonical ``namespace/name`` key."""
    keys = []
    for rec in art["decisions"]:  # type: ignore[union-attr]
        keys.append(str(rec["sharepod"]))
    for span in art["spans"]:  # type: ignore[union-attr]
        if span.get("trace_id"):
            keys.append(str(span["trace_id"]))
    for ev in art["events"]:  # type: ignore[union-attr]
        if ev.get("involved_kind") == "SharePod":
            keys.append(f"{ev['involved_namespace']}/{ev['involved_name']}")
    for key in keys:
        if key == sharepod or key.split("/", 1)[-1] == sharepod:
            return key
    return None


def explain(art: Dict[str, object], sharepod: str) -> str:
    """The full placement story of one SharePod, human-readable."""
    key = _match_sharepod(art, sharepod)
    if key is None:
        known = sorted(
            {
                str(r["sharepod"])
                for r in art["decisions"]  # type: ignore[union-attr]
            }
        )
        return (
            f"no record of SharePod {sharepod!r} in this artifact\n"
            f"known: {', '.join(known) if known else '(none)'}"
        )
    lines = [f"SharePod {key}", ""]

    decisions = [
        r for r in art["decisions"] if r["sharepod"] == key  # type: ignore[union-attr]
    ]
    lines.append(f"— Algorithm 1: {len(decisions)} scheduling pass(es)")
    for n, rec in enumerate(decisions, 1):
        req = rec["request"]
        lines.append(
            f"  pass {n} @ t={rec['t']:.3f}s  placement={rec['placement']}  "
            f"request(util={req.get('gpu_request')}, mem={req.get('gpu_mem')}, "
            f"aff={req.get('affinity')}, anti={req.get('anti_affinity')}, "
            f"excl={req.get('exclusion')})"
        )
        for cand in rec["candidates"]:
            verdict = "pass" if cand["passed"] else "reject"
            extra = []
            if cand["score"] is not None:
                extra.append(f"score={cand['score']:.3f}")
            if cand["pool"]:
                extra.append(f"pool={cand['pool']}")
            if cand["reason"]:
                extra.append(cand["reason"])
            suffix = f" ({', '.join(extra)})" if extra else ""
            lines.append(
                f"    [{cand['stage']:<9}] {cand['gpuid']}: {verdict}{suffix}"
            )
        if rec["rejected"]:
            lines.append(f"    => REJECTED: {rec['reason']}")
        else:
            new = " (new vGPU)" if rec["is_new"] else ""
            lines.append(f"    => chose {rec['chosen']} by {rec['rule']}{new}")
    if not decisions:
        lines.append("  (none recorded)")

    ns, name = key.split("/", 1)
    events = [
        e
        for e in art["events"]  # type: ignore[union-attr]
        if e["involved_name"] == name
        and e["involved_kind"] in ("SharePod", "Pod")
        and e["involved_namespace"] == ns
    ]
    lines += ["", f"— Events ({len(events)})"]
    if events:
        lines.append(events_table(events))

    spans = [
        s
        for s in art["spans"]  # type: ignore[union-attr]
        if s.get("trace_id") == key
    ]
    spans.sort(key=lambda s: (s["start"], s["span_id"]))
    lines += ["", f"— Timeline ({len(spans)} spans)"]
    for s in spans:
        end = s["end"] if s["end"] is not None else s["start"]
        dur = float(end) - float(s["start"])
        mark = "·" if s.get("instant") else ("!" if s["status"] == "error" else "▸")
        lines.append(
            f"  {float(s['start']):9.3f}s {mark} {s['track']:<24} "
            f"{s['name']}" + (f"  [{dur * 1000:.1f} ms]" if not s.get("instant") else "")
        )
    return "\n".join(lines)

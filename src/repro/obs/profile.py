"""Continuous wall-clock profiler for the simulation kernel.

The profiler hooks the single dispatch point every simulated action
funnels through — ``Environment.step`` — via
:func:`repro.sim.environment.set_profile_hook`, and times each callback
with the host's monotonic clock. Attribution is two-level:

* **actor**: callbacks are almost always the bound ``_resume`` of a
  :class:`~repro.sim.process.Process`; its ``name`` (``"kubeshare-sched:
  reconcile"``, ``"informer:kubeshare-devmgr"``, ``"app:sp3"``) names the
  actor, and its first ``:``-segment names the subsystem;
* **operation**: the actor's open span stack in the hub's tracer
  (``reconcile``, ``token.wait``, …) extends the frame stack, so the
  flamegraph shows *what* the actor was doing, not just who it was.

Output is the collapsed-stack ("folded") format —
``frame;frame;frame <count>`` with integer microsecond counts — which
speedscope and flamegraph.pl both import directly, plus a top-N
attribution table for the terminal.

Unlike every other obs instrument, the measurements here are **host
time** and therefore non-deterministic run to run. The profiler is kept
strictly out of :meth:`ObsHub.snapshot`; its output is exported as
separate ``.folded`` / ``.profile.json`` files so the byte-identical
artifact contract is untouched. The *schedule* is also untouched:
callbacks run in exactly the original order with exceptions propagating
unchanged, and nothing here feeds back into the simulation.
"""

from __future__ import annotations

import json
import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

__all__ = ["WallProfiler", "profiler_from_env", "ENV_PROFILE_FLAG"]

#: set truthy alongside ``REPRO_OBS`` to arm the profiler in benchmarks.
ENV_PROFILE_FLAG = "REPRO_OBS_PROFILE"

#: keep folded stacks readable: at most this many span frames per stack.
_MAX_SPAN_FRAMES = 6


def _clean(frame: str) -> str:
    """Folded format delimiters are ``;`` (frames) and the last space
    (count) — strip both from frame names."""
    return frame.replace(";", ":").replace(" ", "_") or "<unnamed>"


class WallProfiler:
    """Aggregating wall-clock profiler around ``Environment.step``."""

    def __init__(self, env, tracer=None) -> None:
        self.env = env
        self.tracer = tracer
        #: frame tuple -> accumulated host seconds.
        self.samples: Dict[Tuple[str, ...], float] = {}
        self.total_seconds = 0.0
        self.dispatches = 0
        self.installed = False

    # -- install -----------------------------------------------------------
    def install(self) -> "WallProfiler":
        from ..sim import environment as _env_mod

        _env_mod.set_profile_hook(self)
        self.installed = True
        return self

    def uninstall(self) -> None:
        from ..sim import environment as _env_mod

        if self.installed:
            _env_mod.set_profile_hook(None)
            self.installed = False

    # -- hot path ----------------------------------------------------------
    def dispatch(self, event, callbacks) -> None:
        """Run ``Environment.step``'s callback loop under timing.

        Semantics are identical to the uninstrumented loop: callbacks run
        in order and exceptions propagate; the sample for a raising
        callback is still recorded on the way out.
        """
        self.dispatches += 1
        for callback in callbacks:
            t0 = perf_counter()  # noqa: RPR001 - wall-clock profiler measures host time by design
            try:
                callback(event)
            finally:
                dt = perf_counter() - t0  # noqa: RPR001 - wall-clock profiler measures host time by design
                frames = self._frames(callback)
                self.samples[frames] = self.samples.get(frames, 0.0) + dt
                self.total_seconds += dt

    def _frames(self, callback) -> Tuple[str, ...]:
        from ..sim.process import Process

        receiver = getattr(callback, "__self__", None)
        if isinstance(receiver, Process):
            name = receiver.name or "<anonymous>"
            frames: List[str] = [_clean(name.split(":", 1)[0]), _clean(name)]
            if self.tracer is not None:
                stack = self.tracer._stacks.get(receiver)
                if stack:
                    frames.extend(
                        _clean(span.name) for span in stack[-_MAX_SPAN_FRAMES:]
                    )
            return tuple(frames)
        if receiver is not None:
            return ("kernel", _clean(type(receiver).__name__))
        return ("kernel", _clean(getattr(callback, "__qualname__", "<callback>")))

    # -- views -------------------------------------------------------------
    def attributed_fraction(self) -> float:
        """Fraction of measured time attributed to a named subsystem
        (i.e. not the generic ``kernel`` bucket)."""
        if self.total_seconds <= 0:
            return 1.0
        named = sum(
            secs for frames, secs in self.samples.items() if frames[0] != "kernel"
        )
        return named / self.total_seconds

    def by_subsystem(self) -> List[Tuple[str, float]]:
        agg: Dict[str, float] = {}
        for frames, secs in self.samples.items():
            agg[frames[0]] = agg.get(frames[0], 0.0) + secs
        return sorted(agg.items(), key=lambda kv: (-kv[1], kv[0]))

    def folded_lines(self) -> List[str]:
        """Collapsed-stack lines (integer microsecond counts); zero-count
        stacks are dropped per the format."""
        lines = []
        for frames in sorted(self.samples):
            micros = int(round(self.samples[frames] * 1e6))
            if micros > 0:
                lines.append(";".join(frames) + f" {micros}")
        return lines

    def top_table(self, n: int = 15) -> str:
        total = self.total_seconds or 1.0
        rows = [f"{'subsystem':<24} {'host ms':>10} {'share':>7}"]
        for name, secs in self.by_subsystem()[:n]:
            rows.append(f"{name:<24} {secs * 1e3:>10.2f} {secs / total:>6.1%}")
        rows.append(
            f"{'(total)':<24} {self.total_seconds * 1e3:>10.2f} "
            f"{self.attributed_fraction():>6.1%} attributed"
        )
        return "\n".join(rows)

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_seconds": self.total_seconds,
            "dispatches": self.dispatches,
            "attributed_fraction": self.attributed_fraction(),
            "by_subsystem": [
                {"subsystem": name, "seconds": secs}
                for name, secs in self.by_subsystem()
            ],
            "folded": self.folded_lines(),
        }

    # -- export ------------------------------------------------------------
    def export(self, directory: str, label: str) -> List[str]:
        """Write ``{label}.folded`` + ``{label}.profile.json``."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        path = os.path.join(directory, f"{label}.folded")
        with open(path, "w") as fh:
            fh.write("\n".join(self.folded_lines()) + "\n")
        paths.append(path)
        path = os.path.join(directory, f"{label}.profile.json")
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2)
        paths.append(path)
        return paths


def profiler_from_env(env, tracer=None) -> Optional[WallProfiler]:
    """A :class:`WallProfiler` when ``REPRO_OBS_PROFILE`` is truthy."""
    value = os.environ.get(ENV_PROFILE_FLAG, "").strip().lower()
    if value in ("", "0", "false", "no", "off"):
        return None
    return WallProfiler(env, tracer=tracer)

"""Scheduler decision log: why Algorithm 1 placed each SharePod where it did.

Every invocation of :func:`repro.core.scheduler.schedule_request` can be
audited through a :class:`DecisionAudit`: the algorithm reports every
candidate GPU it considered, the stage at which it was accepted or
rejected (affinity match, filter, placement), the affinity /
anti-affinity / exclusion verdicts, the fit score (residual capacity
after hypothetical placement — lower = tighter fit), and the final
choice with the rule that made it. The completed records live in a
:class:`DecisionLog` keyed by SharePod, which is what
``python -m repro.obs explain <sharepod>`` prints.

The audit is pure bookkeeping — no clock reads, no randomness, no
yields — so auditing a run cannot perturb its schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CandidateRecord", "DecisionRecord", "DecisionAudit", "DecisionLog"]


@dataclass
class CandidateRecord:
    """One (device, stage) consideration inside a scheduling pass."""

    gpuid: str
    #: "affinity" | "filter" | "placement"
    stage: str
    passed: bool
    reason: str = ""
    #: fit score at the placement stage: ``_leftover(r, d)``; lower means
    #: a tighter (better) best-fit.
    score: Optional[float] = None
    #: placement sub-pool: "label-free" (best fit) or "labelled" (worst fit).
    pool: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "gpuid": self.gpuid,
            "stage": self.stage,
            "passed": self.passed,
            "reason": self.reason,
            "score": self.score,
            "pool": self.pool,
        }


@dataclass
class DecisionRecord:
    """One full Algorithm 1 invocation."""

    t: float
    sharepod: str
    request: Dict[str, object] = field(default_factory=dict)
    placement: str = "paper"
    candidates: List[CandidateRecord] = field(default_factory=list)
    chosen: Optional[str] = None
    is_new: bool = False
    rejected: bool = False
    reason: str = ""
    #: which rule produced the choice: "affinity", "affinity-new",
    #: "best-fit(label-free)", "worst-fit(labelled)", "best_fit",
    #: "worst_fit", "first_fit", or "new-device".
    rule: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t,
            "sharepod": self.sharepod,
            "request": dict(self.request),
            "placement": self.placement,
            "candidates": [c.to_dict() for c in self.candidates],
            "chosen": self.chosen,
            "is_new": self.is_new,
            "rejected": self.rejected,
            "reason": self.reason,
            "rule": self.rule,
        }


class DecisionAudit:
    """Collects one scheduling pass; handed to ``schedule_request``.

    ``schedule_request`` accepts ``audit=None`` (the default — zero cost)
    or any object with this interface; it never imports this module.
    """

    def __init__(self) -> None:
        self.record = DecisionRecord(t=0.0, sharepod="")

    # -- called by schedule_request ---------------------------------------
    def begin(self, r, devices, placement: str) -> None:
        self.record.placement = placement
        self.record.request = {
            "gpu_request": r.util,
            "gpu_mem": r.mem,
            "affinity": r.aff,
            "anti_affinity": r.anti_aff,
            "exclusion": r.excl,
            "devices_visible": len(devices),
        }

    def consider(
        self,
        gpuid: str,
        stage: str,
        passed: bool,
        reason: str = "",
        score: Optional[float] = None,
        pool: Optional[str] = None,
    ) -> None:
        self.record.candidates.append(
            CandidateRecord(
                gpuid=gpuid,
                stage=stage,
                passed=passed,
                reason=reason,
                score=score,
                pool=pool,
            )
        )

    def choose(self, gpuid: str, is_new: bool, rule: str) -> None:
        self.record.chosen = gpuid
        self.record.is_new = is_new
        self.record.rule = rule

    def reject(self, reason: str) -> None:
        self.record.rejected = True
        self.record.reason = reason


class DecisionLog:
    """All committed decision records of a run, in commit order."""

    def __init__(self) -> None:
        self.records: List[DecisionRecord] = []

    def new_audit(self) -> DecisionAudit:
        return DecisionAudit()

    def commit(self, audit: DecisionAudit, sharepod: str, t: float) -> DecisionRecord:
        audit.record.sharepod = sharepod
        audit.record.t = t
        self.records.append(audit.record)
        return audit.record

    def for_sharepod(self, key: str) -> List[DecisionRecord]:
        """Records for a SharePod, matched by full key or bare name."""
        return [
            r
            for r in self.records
            if r.sharepod == key or r.sharepod.split("/", 1)[-1] == key
        ]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [r.to_dict() for r in self.records]

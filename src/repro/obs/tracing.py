"""Virtual-time spans and Chrome trace-event export.

A :class:`Tracer` records :class:`Span` objects whose timestamps come
exclusively from ``sim.Environment.now`` — never the wall clock — so a
trace is a deterministic artifact of the simulation, byte-identical
across identical-seed runs.

Parenting is context-propagated: each simulated process (keyed by
``env.active_process``) carries a stack of open spans, and a new span
started inside that process becomes a child of the stack top unless an
explicit ``parent`` is given. Cross-process causality (the SharePod
journey: apiserver write → scheduler decision → DevMgr bind → kubelet
Allocate → container start → token grants → kernel bursts) is stitched
with a shared ``trace_id`` (the SharePod's ``namespace/name`` key).

Export is Chrome trace-event JSON (``ph: "X"`` duration events plus
``ph: "i"`` instants, microsecond timestamps), directly loadable in
Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]

#: statuses a span can close with.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_OPEN = "open"


@dataclass
class Span:
    """One timed operation in virtual time."""

    span_id: int
    name: str
    #: display track ("thread" in the Chrome trace): component identity,
    #: e.g. ``apiserver``, ``kubeshare-sched``, ``kubelet:node01``.
    track: str
    start: float
    parent_id: Optional[int] = None
    #: stitches spans of one logical story (SharePod key) across tracks.
    trace_id: Optional[str] = None
    end: Optional[float] = None
    status: str = STATUS_OPEN
    attrs: Dict[str, object] = field(default_factory=dict)
    #: zero-duration marker (rendered as a Chrome instant event).
    instant: bool = False

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
            "instant": self.instant,
        }


class Tracer:
    """Records spans against a simulated clock.

    The tracer never yields, never sleeps, and never consumes randomness:
    recording a span is pure bookkeeping, so instrumented runs replay
    identically to uninstrumented ones.
    """

    def __init__(self, env, max_spans: int = 250_000) -> None:
        self.env = env
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_id = 1
        #: per-process stack of open spans (implicit parenting).
        self._stacks: Dict[object, List[Span]] = {}
        #: called once per span on its fresh ok/error close (never on the
        #: bulk ``close_open`` sweep) — the hub hangs latency histograms
        #: off this without touching any instrumentation site.
        self.on_end = None

    # -- recording ---------------------------------------------------------
    def _stack(self) -> List[Span]:
        proc = getattr(self.env, "active_process", None)
        key = proc if proc is not None else "<root>"
        return self._stacks.setdefault(key, [])

    def start(
        self,
        name: str,
        track: str,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        attrs: Optional[Dict[str, object]] = None,
        detached: bool = False,
    ) -> Span:
        """Open a span; it becomes the current span of this process.

        With ``detached=True`` the span neither inherits the current
        process's span as implicit parent nor joins its stack — used for
        long-lived story spans (SharePod journeys, leadership reigns)
        whose lifetime is not lexical.
        """
        stack = self._stack()
        if parent is None and not detached and stack:
            parent = stack[-1]
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        span = Span(
            span_id=self._next_id,
            name=name,
            track=track,
            start=self.env.now,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=trace_id,
            attrs=dict(attrs or {}),
        )
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        if not detached:
            stack.append(span)
        return span

    def end(self, span: Span, status: str = STATUS_OK) -> Span:
        """Close a span (idempotent) and pop it off its process stack."""
        fresh = span.end is None
        if fresh:
            span.end = self.env.now
            span.status = status
        for stack in self._stacks.values():
            if span in stack:
                stack.remove(span)
                break
        if fresh and self.on_end is not None:
            self.on_end(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        track: str,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        **attrs: object,
    ) -> Iterator[Span]:
        """Context manager: closes ``ok`` on exit, ``error`` on exception.

        Any exception — including ``GeneratorExit`` when the enclosing
        simulated process is killed mid-span — closes the span with error
        status instead of leaking it open.
        """
        span = self.start(name, track, parent=parent, trace_id=trace_id, attrs=attrs)
        try:
            yield span
        except BaseException:
            self.end(span, status=STATUS_ERROR)
            raise
        else:
            self.end(span, status=STATUS_OK)

    def instant(
        self,
        name: str,
        track: str,
        trace_id: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Record a zero-duration marker (does not affect the span stack)."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        span = Span(
            span_id=self._next_id,
            name=name,
            track=track,
            start=self.env.now,
            end=self.env.now,
            parent_id=parent.span_id if parent is not None else None,
            trace_id=trace_id,
            status=STATUS_OK,
            attrs=dict(attrs),
            instant=True,
        )
        self._next_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    # -- views -------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is None]

    def close_open(self, status: str = STATUS_OPEN) -> int:
        """Close every still-open span at the current time (for export)."""
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = self.env.now
                span.status = status
                closed += 1
        self._stacks.clear()
        return closed

    def for_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [s.to_dict() for s in self.spans]


# -- Chrome trace-event export --------------------------------------------
def chrome_trace_events(spans: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Convert span dicts to Chrome trace-event JSON objects.

    Timestamps are virtual seconds scaled to microseconds; each track
    becomes a named "thread" of a single process so Perfetto renders one
    swimlane per component.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "repro (virtual time)"},
        }
    ]
    for span in spans:
        track = str(span["track"])
        if track not in tids:
            tids[track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )
    for span in spans:
        tid = tids[str(span["track"])]
        ts = round(float(span["start"]) * 1e6, 3)
        args = dict(span["attrs"])  # type: ignore[arg-type]
        args["status"] = span["status"]
        if span.get("trace_id"):
            args["trace_id"] = span["trace_id"]
        if span.get("instant"):
            events.append(
                {
                    "name": str(span["name"]),
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "args": args,
                }
            )
        else:
            end = span["end"] if span["end"] is not None else span["start"]
            dur = round((float(end) - float(span["start"])) * 1e6, 3)
            events.append(
                {
                    "name": str(span["name"]),
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": ts,
                    "dur": dur,
                    "args": args,
                }
            )
    return events


def chrome_trace_json(spans: List[Dict[str, object]]) -> str:
    return json.dumps(
        {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"},
        indent=None,
        separators=(",", ":"),
    )

"""``python -m repro.obs`` — inspect observability artifacts.

Subcommands:

* ``trace``   — summarize spans and write Chrome trace-event JSON
                (open in Perfetto / chrome://tracing);
* ``events``  — the run's Kubernetes-style events, kubectl-table style;
* ``explain`` — the full placement story of one SharePod: every
                Algorithm 1 candidate with verdicts and scores, the
                events, and the span timeline;
* ``export``  — write artifact + trace + events + Prometheus text
                (+ SLO report / flamegraph when present);
* ``report``  — latency-distribution table (p50/p95/p99/max) for every
                histogram metric in the run;
* ``slo``     — SLO attainment and the burn-rate alert log;
* ``profile`` — re-run a scenario under the wall-clock profiler, print
                the top-N subsystem attribution, and write a
                speedscope/flamegraph.pl-compatible ``.folded`` file.

Input is either ``--artifact FILE`` (saved by an armed benchmark, see
``REPRO_OBS=1``) or ``--scenario failover|chaos`` to re-run a capstone
benchmark in-process with identical seeds and constants (``profile``
always re-runs — host timings cannot come from a saved artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from . import artifact as artifact_mod
from .kevents import events_table
from .tracing import chrome_trace_json

__all__ = ["main"]


def _load(args) -> Dict[str, object]:
    if args.artifact:
        return artifact_mod.load(args.artifact)
    from .scenarios import SCENARIOS

    name = args.scenario or "failover"
    runner = SCENARIOS.get(name)
    if runner is None:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    print(f"running scenario {name!r} (seeded, deterministic)...", file=sys.stderr)
    return runner()


def _add_source_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--artifact",
        help="artifact JSON saved by an armed benchmark (REPRO_OBS=1)",
    )
    p.add_argument(
        "--scenario",
        choices=("failover", "chaos"),
        help="re-run a capstone benchmark in-process (default: failover)",
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="summarize spans / export Chrome trace")
    _add_source_args(p_trace)
    p_trace.add_argument("-o", "--output", help="write Chrome trace-event JSON here")

    p_events = sub.add_parser("events", help="print the run's events")
    _add_source_args(p_events)

    p_explain = sub.add_parser("explain", help="placement story of one SharePod")
    p_explain.add_argument("sharepod", help="SharePod name or namespace/name")
    _add_source_args(p_explain)

    p_export = sub.add_parser("export", help="write all artifact files")
    _add_source_args(p_export)
    p_export.add_argument("--dir", default="obs-artifacts", help="output directory")
    p_export.add_argument("--label", default=None, help="artifact file stem")

    p_report = sub.add_parser("report", help="histogram percentile table")
    _add_source_args(p_report)

    p_slo = sub.add_parser("slo", help="SLO attainment + burn-rate alerts")
    _add_source_args(p_slo)

    p_profile = sub.add_parser(
        "profile", help="wall-clock profile of a scenario (flamegraph)"
    )
    p_profile.add_argument(
        "--scenario",
        choices=("failover", "chaos"),
        default="failover",
        help="scenario to run under the profiler (default: failover)",
    )
    p_profile.add_argument(
        "-o", "--output", default=None, help="write collapsed stacks here (.folded)"
    )
    p_profile.add_argument(
        "--top", type=int, default=15, help="rows in the attribution table"
    )

    args = parser.parse_args(argv)

    if args.command == "profile":
        return _profile(args)
    art = _load(args)

    if args.command == "trace":
        print(artifact_mod.trace_summary(art))
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(chrome_trace_json(art["spans"]))  # type: ignore[arg-type]
            print(f"wrote {args.output}")
    elif args.command == "events":
        print(events_table(art["events"]))  # type: ignore[arg-type]
    elif args.command == "explain":
        print(artifact_mod.explain(art, args.sharepod))
    elif args.command == "export":
        label = args.label or str(art.get("label") or "run")
        paths = artifact_mod.export_all(art, args.dir, label)
        for path in paths:
            print(f"wrote {path}")
        counters = art.get("counters") or {}
        if counters:
            print(json.dumps(dict(sorted(counters.items())), indent=2))
    elif args.command == "report":
        print(artifact_mod.hist_report(art))
    elif args.command == "slo":
        print(artifact_mod.slo_report(art))
    return 0


def _profile(args) -> int:
    from .scenarios import SCENARIOS

    runner = SCENARIOS[args.scenario]
    print(
        f"profiling scenario {args.scenario!r} (schedule stays seeded and "
        "deterministic; host timings do not)...",
        file=sys.stderr,
    )
    art = runner(profile=True)
    profile: Dict[str, object] = art["profile"]  # type: ignore[assignment]
    total = float(profile["total_seconds"])  # type: ignore[arg-type]
    print(
        f"{profile['dispatches']} dispatches, {total * 1e3:.1f} ms measured, "
        f"{float(profile['attributed_fraction']):.1%} attributed"  # type: ignore[arg-type]
    )
    rows = [f"{'subsystem':<24} {'host ms':>10} {'share':>7}"]
    for row in profile["by_subsystem"][: args.top]:  # type: ignore[index]
        secs = float(row["seconds"])
        rows.append(
            f"{row['subsystem']:<24} {secs * 1e3:>10.2f} {secs / (total or 1.0):>6.1%}"
        )
    print("\n".join(rows))
    output = args.output or f"{args.scenario}.folded"
    with open(output, "w") as fh:
        fh.write("\n".join(profile["folded"]) + "\n")  # type: ignore[arg-type]
    print(f"wrote {output} (speedscope / flamegraph.pl compatible)")
    return 0

"""``python -m repro.obs`` — inspect observability artifacts.

Subcommands:

* ``trace``   — summarize spans and write Chrome trace-event JSON
                (open in Perfetto / chrome://tracing);
* ``events``  — the run's Kubernetes-style events, kubectl-table style;
* ``explain`` — the full placement story of one SharePod: every
                Algorithm 1 candidate with verdicts and scores, the
                events, and the span timeline;
* ``export``  — write artifact + trace + events + Prometheus text.

Input is either ``--artifact FILE`` (saved by an armed benchmark, see
``REPRO_OBS=1``) or ``--scenario failover|chaos`` to re-run a capstone
benchmark in-process with identical seeds and constants.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from . import artifact as artifact_mod
from .kevents import events_table
from .tracing import chrome_trace_json

__all__ = ["main"]


def _load(args) -> Dict[str, object]:
    if args.artifact:
        return artifact_mod.load(args.artifact)
    from .scenarios import SCENARIOS

    name = args.scenario or "failover"
    runner = SCENARIOS.get(name)
    if runner is None:
        raise SystemExit(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    print(f"running scenario {name!r} (seeded, deterministic)...", file=sys.stderr)
    return runner()


def _add_source_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--artifact",
        help="artifact JSON saved by an armed benchmark (REPRO_OBS=1)",
    )
    p.add_argument(
        "--scenario",
        choices=("failover", "chaos"),
        help="re-run a capstone benchmark in-process (default: failover)",
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_trace = sub.add_parser("trace", help="summarize spans / export Chrome trace")
    _add_source_args(p_trace)
    p_trace.add_argument("-o", "--output", help="write Chrome trace-event JSON here")

    p_events = sub.add_parser("events", help="print the run's events")
    _add_source_args(p_events)

    p_explain = sub.add_parser("explain", help="placement story of one SharePod")
    p_explain.add_argument("sharepod", help="SharePod name or namespace/name")
    _add_source_args(p_explain)

    p_export = sub.add_parser("export", help="write all artifact files")
    _add_source_args(p_export)
    p_export.add_argument("--dir", default="obs-artifacts", help="output directory")
    p_export.add_argument("--label", default=None, help="artifact file stem")

    args = parser.parse_args(argv)
    art = _load(args)

    if args.command == "trace":
        print(artifact_mod.trace_summary(art))
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(chrome_trace_json(art["spans"]))  # type: ignore[arg-type]
            print(f"wrote {args.output}")
    elif args.command == "events":
        print(events_table(art["events"]))  # type: ignore[arg-type]
    elif args.command == "explain":
        print(artifact_mod.explain(art, args.sharepod))
    elif args.command == "export":
        label = args.label or str(art.get("label") or "run")
        paths = artifact_mod.export_all(art, args.dir, label)
        for path in paths:
            print(f"wrote {path}")
        counters = art.get("counters") or {}
        if counters:
            print(json.dumps(dict(sorted(counters.items())), indent=2))
    return 0

"""Common interface for GPU-sharing systems (Table 1's rows).

Every system under comparison — native Kubernetes, Deepomatic, Aliyun
gpushare, GaiaGPU, and KubeShare itself — is wrapped behind
:class:`SharingSystem` so the benchmark harness can run identical
workloads through each and compare throughput, utilization, and feature
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence

from ..cluster.cluster import Cluster, ClusterConfig
from ..cluster.objects import PodPhase
from ..perf import fastpath
from ..sim import Environment
from ..workloads.jobs import JobStats

__all__ = ["GPURequirements", "JobHandle", "SharingSystem", "FEATURE_NAMES"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)

#: Table 1 feature keys, in the paper's row order.
FEATURE_NAMES = (
    "multi_gpu_per_node",
    "fine_grained_allocation",
    "memory_isolation",
    "compute_isolation",
    "first_class_identity",
    "locality_constraints",
    "coexists_with_kube_scheduler",
)


@dataclass(frozen=True)
class GPURequirements:
    """A job's fractional GPU ask (KubeShare's vocabulary; baselines map it
    onto whatever subset they support)."""

    request: float
    limit: float
    mem: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.request <= self.limit <= 1.0:
            raise ValueError(
                f"need 0 <= request <= limit <= 1, got ({self.request}, {self.limit})"
            )
        if not 0.0 < self.mem <= 1.0:
            raise ValueError(f"mem must be in (0,1], got {self.mem}")


@dataclass
class JobHandle:
    """A submitted job: its API object identity plus collected stats."""

    name: str
    kind: str  # "Pod" or "SharePod"
    stats: JobStats
    namespace: str = "default"


class SharingSystem:
    """Base class for a GPU management system attached to a cluster."""

    name: str = "abstract"
    #: Table 1 flags; values are True/False/"limited".
    features: Dict[str, object] = {}

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.api = cluster.api
        self.handles: List[JobHandle] = []

    # -- cluster shape this system needs -----------------------------------
    @classmethod
    def make_cluster(cls, env: Optional[Environment] = None, **overrides) -> Cluster:
        """Build a cluster configured the way this system requires."""
        return Cluster(env, ClusterConfig(**overrides))

    def start(self) -> "SharingSystem":
        """Start any controllers this system adds. Default: none."""
        return self

    # -- job submission -------------------------------------------------------
    def submit(
        self,
        name: str,
        workload: Callable,
        requirements: GPURequirements,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
    ) -> JobHandle:
        raise NotImplementedError

    def _track(self, handle: JobHandle) -> JobHandle:
        handle.stats.submitted_at = self.env.now
        self.handles.append(handle)
        return handle

    # -- completion tracking -----------------------------------------------------
    def job_phase(self, handle: JobHandle) -> Optional[PodPhase]:
        # The poll loop only reads status.phase, so the fast path probes
        # the stored object read-only instead of deep-cloning a Pod per
        # handle per poll tick; outage (503) semantics are identical.
        if fastpath.slow_kernel:
            obj = self.api.get(handle.kind, handle.name, handle.namespace)
        else:
            obj = self.api.peek(handle.kind, handle.name, handle.namespace)
        return obj.status.phase if obj is not None else None

    def wait_all(
        self, handles: Optional[Sequence[JobHandle]] = None, poll: float = 0.5
    ) -> Generator:
        """Process helper: wait until every handle reached a terminal phase."""
        pending = list(handles if handles is not None else self.handles)
        while pending:
            still = []
            for h in pending:
                phase = self.job_phase(h)
                if phase is None or phase in _TERMINAL:
                    if phase is PodPhase.FAILED:
                        h.stats.failed = True
                else:
                    still.append(h)
            pending = still
            if pending:
                yield self.env.timeout(poll)

    def stats(self) -> List[JobStats]:
        return [h.stats for h in self.handles]

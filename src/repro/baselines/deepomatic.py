"""Deepomatic shared-GPU device plugin (baseline, paper §6 / Table 1).

The simplest prior approach: only the scaling-factor device-plugin trick,
with **no extender and no isolation**. Jobs request N slice units; kubelet
picks whichever units are free with no notion of device identity — on a
multi-GPU node the units may interleave across physical GPUs (the
round-robin fragmentation of Figure 3a), which is why Deepomatic is only
sound on single-GPU nodes. Containers are not throttled at all, so
co-located jobs interfere freely.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.cluster import Cluster, ClusterConfig
from ..cluster.objects import GPU_RESOURCE, ContainerSpec, ObjectMeta, Pod, PodSpec
from ..sim import Environment
from ..workloads.jobs import JobStats
from .base import GPURequirements, JobHandle, SharingSystem

__all__ = ["DeepomaticSharedPlugin"]


class DeepomaticSharedPlugin(SharingSystem):
    """Scaling-factor fractional units; no binding control; no isolation."""

    name = "Deepomatic"
    factor = 100
    features = {
        "multi_gpu_per_node": False,  # undefined behaviour beyond one GPU
        "fine_grained_allocation": "limited",  # granularity = 1/factor
        "memory_isolation": False,
        "compute_isolation": False,
        "first_class_identity": False,
        "locality_constraints": False,
        "coexists_with_kube_scheduler": False,  # it redefines nvidia.com/gpu
    }

    @classmethod
    def make_cluster(cls, env: Optional[Environment] = None, **overrides) -> Cluster:
        overrides.setdefault("device_plugin", "scaling")
        overrides.setdefault("scaling_factor", cls.factor)
        # kubelet picks free units with no device awareness: the Figure 3a
        # round-robin spread.
        overrides.setdefault("device_policy", "roundrobin")
        return Cluster(env, ClusterConfig(**overrides))

    def submit(
        self,
        name: str,
        workload: Callable,
        requirements: GPURequirements,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
    ) -> JobHandle:
        units = max(1, int(round(requirements.request * self.factor)))
        pod = Pod(
            metadata=ObjectMeta(name=name),
            spec=PodSpec(
                containers=[
                    ContainerSpec(requests={"cpu": 1.0, GPU_RESOURCE: units})
                ],
                workload=workload,
            ),
        )
        self.api.create(pod)
        stats = getattr(workload, "stats", None) or JobStats(name)
        return self._track(JobHandle(name=name, kind="Pod", stats=stats))

"""GaiaGPU (the paper's "GigaGPU [10]") — baseline, §6 / Table 1.

Tencent's GaiaGPU extends the Aliyun-style extender with *compute*
isolation: an LD_PRELOAD library throttles kernel execution against a
vcuda-core share, in addition to the memory limit. It still lacks
first-class device identity and locality constraints — placement is the
extender's own bin-packing with no user control — and, being an extender,
it monopolizes all GPU scheduling in the cluster.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..gpu.frontend import (
    DEVICE_LIB_SONAME,
    ENV_ISOLATION,
    ENV_LIMIT,
    ENV_MEM,
    ENV_REQUEST,
)
from .base import GPURequirements
from .extender import ExtenderSystem, _DeviceAccount

__all__ = ["GaiaGPU"]


class GaiaGPU(ExtenderSystem):
    """Memory + compute isolated sharing, still no device identity."""

    name = "GaiaGPU"
    features = {
        "multi_gpu_per_node": True,
        "fine_grained_allocation": "limited",  # granularity = 1/factor
        "memory_isolation": True,
        "compute_isolation": True,
        "first_class_identity": False,
        "locality_constraints": False,
        "coexists_with_kube_scheduler": False,
    }
    isolation = "fluid"  # kernel-time throttling à la vcuda
    track_util = True

    def slice_units(self, requirements: GPURequirements) -> int:
        """vcuda-core units: percent of compute, at least one unit."""
        return max(1, int(round(requirements.request * self.factor)))

    def pick_device(self, requirements: GPURequirements) -> Optional[_DeviceAccount]:
        """Bin-pack on compute and memory jointly (fullest fitting)."""
        fitting = [
            a
            for a in self.ledger.candidates()
            if a.mem_used + requirements.mem <= 1.0 + 1e-9
            and a.util_used + requirements.request <= 1.0 + 1e-9
        ]
        if not fitting:
            return None
        return max(fitting, key=lambda a: (a.util_used, a.mem_used, a.uuid))

    def container_env(self, requirements: GPURequirements) -> Dict[str, str]:
        return {
            "LD_PRELOAD": DEVICE_LIB_SONAME,
            ENV_REQUEST: str(requirements.request),
            ENV_LIMIT: str(requirements.limit),
            ENV_MEM: str(requirements.mem),
            ENV_ISOLATION: self.isolation,
        }

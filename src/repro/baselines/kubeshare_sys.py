"""KubeShare wrapped behind the common :class:`SharingSystem` interface,
so the benchmark harness can run identical workloads against it and the
baselines."""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.cluster import Cluster, ClusterConfig
from ..core.framework import KubeShare
from ..core.policies import PoolPolicy
from ..sim import Environment
from ..workloads.jobs import JobStats
from .base import GPURequirements, JobHandle, SharingSystem

__all__ = ["KubeShareSystem"]


class KubeShareSystem(SharingSystem):
    """The paper's system, as a drop-in :class:`SharingSystem`."""

    name = "KubeShare"
    features = {
        "multi_gpu_per_node": True,
        "fine_grained_allocation": True,  # arbitrary fractions in (0, 1]
        "memory_isolation": True,
        "compute_isolation": True,
        "first_class_identity": True,
        "locality_constraints": True,
        "coexists_with_kube_scheduler": True,  # operator pattern (§4.6)
    }

    def __init__(
        self,
        cluster: Cluster,
        isolation: str = "fluid",
        policy: Optional[PoolPolicy] = None,
    ) -> None:
        super().__init__(cluster)
        self.kubeshare = KubeShare(cluster, isolation=isolation, policy=policy)

    @classmethod
    def make_cluster(cls, env: Optional[Environment] = None, **overrides) -> Cluster:
        overrides.setdefault("device_plugin", "nvidia")
        return Cluster(env, ClusterConfig(**overrides))

    def start(self) -> "KubeShareSystem":
        self.kubeshare.start()
        return self

    def submit(
        self,
        name: str,
        workload: Callable,
        requirements: GPURequirements,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
    ) -> JobHandle:
        sharepod = self.kubeshare.make_sharepod(
            name,
            gpu_request=requirements.request,
            gpu_limit=requirements.limit,
            gpu_mem=requirements.mem,
            workload=workload,
            affinity=affinity,
            anti_affinity=anti_affinity,
            exclusion=exclusion,
        )
        self.kubeshare.submit(sharepod)
        stats = getattr(workload, "stats", None) or JobStats(name)
        return self._track(JobHandle(name=name, kind="SharePod", stats=stats))

"""Native Kubernetes: whole-GPU exclusive allocation (the paper's main
comparison baseline).

Every job requests ``nvidia.com/gpu: 1`` through the stock device plugin,
so a GPU serves exactly one container at a time regardless of how little
of it the job uses. Fractional requirements are accepted on the interface
(so workloads are interchangeable across systems) but only their memory
footprint matters — compute-wise the job owns the device.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cluster.cluster import Cluster, ClusterConfig
from ..cluster.objects import GPU_RESOURCE, ContainerSpec, ObjectMeta, Pod, PodSpec
from ..sim import Environment
from ..workloads.jobs import JobStats
from .base import GPURequirements, JobHandle, SharingSystem

__all__ = ["NativeKubernetes"]


class NativeKubernetes(SharingSystem):
    """Unmodified Kubernetes with the stock NVIDIA device plugin."""

    name = "Kubernetes"
    features = {
        "multi_gpu_per_node": True,
        "fine_grained_allocation": False,
        "memory_isolation": True,  # trivially: exclusive device
        "compute_isolation": True,  # trivially: exclusive device
        "first_class_identity": False,
        "locality_constraints": False,
        "coexists_with_kube_scheduler": True,
    }

    @classmethod
    def make_cluster(cls, env: Optional[Environment] = None, **overrides) -> Cluster:
        overrides.setdefault("device_plugin", "nvidia")
        return Cluster(env, ClusterConfig(**overrides))

    def submit(
        self,
        name: str,
        workload: Callable,
        requirements: GPURequirements,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
    ) -> JobHandle:
        # Locality constraints are not expressible at the device level in
        # native Kubernetes (§4.2); they are accepted and ignored so that
        # the same workload driver runs against every system.
        pod = Pod(
            metadata=ObjectMeta(name=name),
            spec=PodSpec(
                containers=[
                    ContainerSpec(requests={"cpu": 1.0, GPU_RESOURCE: 1})
                ],
                workload=workload,
            ),
        )
        self.api.create(pod)
        return self._track(JobHandle(name=name, kind="Pod", stats=self._stats_of(workload, name)))

    @staticmethod
    def _stats_of(workload: Callable, name: str) -> JobStats:
        # Workload factories produced by JobStats-aware jobs close over
        # their stats; systems that need them pass them via attribute.
        stats = getattr(workload, "stats", None)
        return stats if isinstance(stats, JobStats) else JobStats(name)

"""GPU-sharing systems under comparison (paper Table 1 / §6).

* :class:`NativeKubernetes` — exclusive whole-GPU allocation;
* :class:`DeepomaticSharedPlugin` — scaling-factor units only;
* :class:`AliyunGPUShare` — extender + memory-only isolation;
* :class:`GaiaGPU` — extender + memory & compute isolation;
* :class:`KubeShareSystem` — the paper's system behind the same interface.
"""

from .aliyun import AliyunGPUShare
from .base import FEATURE_NAMES, GPURequirements, JobHandle, SharingSystem
from .deepomatic import DeepomaticSharedPlugin
from .extender import DeviceLedger, ExtenderSystem
from .gaiagpu import GaiaGPU
from .kubeshare_sys import KubeShareSystem
from .native import NativeKubernetes

__all__ = [
    "SharingSystem",
    "GPURequirements",
    "JobHandle",
    "FEATURE_NAMES",
    "NativeKubernetes",
    "DeepomaticSharedPlugin",
    "AliyunGPUShare",
    "GaiaGPU",
    "KubeShareSystem",
    "ExtenderSystem",
    "DeviceLedger",
]

"""Aliyun gpushare scheduler-extender (baseline, paper §6 / Table 1).

Alibaba's container-service project shares GPUs by **memory**: jobs
request ``aliyun.com/gpu-mem`` units (here: scaling-factor slices
denominated in percent of device memory), a scheduler extender bin-packs
them onto devices by memory fit, and the companion component enforces only
the *memory* limit inside containers — kernel execution time is not
throttled, so co-located jobs contend freely for compute.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..gpu.frontend import DEVICE_LIB_SONAME, ENV_ISOLATION, ENV_MEM
from .base import GPURequirements
from .extender import ExtenderSystem, _DeviceAccount

__all__ = ["AliyunGPUShare"]


class AliyunGPUShare(ExtenderSystem):
    """Memory-denominated sharing, no compute isolation."""

    name = "Aliyun"
    features = {
        "multi_gpu_per_node": True,
        "fine_grained_allocation": "limited",  # granularity = 1/factor
        "memory_isolation": True,
        "compute_isolation": False,
        "first_class_identity": False,
        "locality_constraints": False,
        "coexists_with_kube_scheduler": False,  # extender monopolizes GPUs
    }
    isolation = "memory"
    track_util = False

    def slice_units(self, requirements: GPURequirements) -> int:
        """gpu-mem units: percent of device memory, at least one unit."""
        return max(1, int(round(requirements.mem * self.factor)))

    def pick_device(self, requirements: GPURequirements) -> Optional[_DeviceAccount]:
        """Bin-pack by memory: the fullest device that still fits."""
        fitting = [
            a
            for a in self.ledger.candidates()
            if a.mem_used + requirements.mem <= 1.0 + 1e-9
        ]
        if not fitting:
            return None
        return max(fitting, key=lambda a: (a.mem_used, a.uuid))

    def container_env(self, requirements: GPURequirements) -> Dict[str, str]:
        return {
            "LD_PRELOAD": DEVICE_LIB_SONAME,
            ENV_MEM: str(requirements.mem),
            ENV_ISOLATION: self.isolation,
        }

"""Scheduler-extender machinery for the prior GPU-sharing systems.

Aliyun gpushare and GaiaGPU both implement their sharing logic as a
*kube-scheduler extender* (paper §6): a bind-time hook that picks the node
**and** the physical device for a pod, communicates the decision through a
pod annotation, and keeps its own per-device accounting. Contrast with
KubeShare's operator-pattern controllers, which the paper argues are more
compatible and flexible (§4.6).

:class:`ExtenderSystem` implements the shared workflow:

1. on submit, run the extender's placement over its device ledger;
2. if a device fits, create the pod pre-bound (``node_name`` set, chosen
   slice units pinned via :data:`~repro.cluster.kubelet
   .DEVICE_IDS_ANNOTATION`), monopolizing GPU scheduling exactly the way
   scheduler-extender solutions do;
3. if nothing fits, park the job in the extender's queue and retry when
   any pod terminates (resources freed);
4. release ledger entries when pods reach a terminal phase or are deleted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..cluster.apiserver import translate_event
from ..cluster.cluster import Cluster, ClusterConfig
from ..cluster.etcd import WatchEventType
from ..cluster.kubelet import DEVICE_IDS_ANNOTATION
from ..cluster.objects import (
    GPU_RESOURCE,
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
)
from ..sim import Environment
from ..workloads.jobs import JobStats
from .base import GPURequirements, JobHandle, SharingSystem

__all__ = ["DeviceLedger", "ExtenderSystem"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass
class _DeviceAccount:
    node: str
    uuid: str
    mem_used: float = 0.0  # fraction of device memory committed
    util_used: float = 0.0  # fraction of compute committed (if tracked)
    pods: int = 0


class DeviceLedger:
    """The extender's private view of every GPU in the cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.accounts: Dict[str, _DeviceAccount] = {
            gpu.uuid: _DeviceAccount(node=gpu.node_name, uuid=gpu.uuid)
            for gpu in cluster.gpus
        }
        #: pod name -> (uuid, mem, util) commitments for release.
        self.commitments: Dict[str, Tuple[str, float, float]] = {}
        #: pod name -> slice unit ids handed out at bind time. Kept until
        #: the pod terminates so that two pods bound in the same instant
        #: (before kubelet's Allocate runs) never receive the same units.
        self.reserved_slices: Dict[str, List[str]] = {}

    def commit(
        self,
        pod_name: str,
        uuid: str,
        mem: float,
        util: float,
        slice_ids: Optional[List[str]] = None,
    ) -> None:
        acct = self.accounts[uuid]
        acct.mem_used += mem
        acct.util_used += util
        acct.pods += 1
        self.commitments[pod_name] = (uuid, mem, util)
        if slice_ids:
            self.reserved_slices[pod_name] = list(slice_ids)

    def release(self, pod_name: str) -> None:
        entry = self.commitments.pop(pod_name, None)
        self.reserved_slices.pop(pod_name, None)
        if entry is None:
            return
        uuid, mem, util = entry
        acct = self.accounts[uuid]
        acct.mem_used = max(0.0, acct.mem_used - mem)
        acct.util_used = max(0.0, acct.util_used - util)
        acct.pods = max(0, acct.pods - 1)

    def all_reserved(self) -> set:
        out: set = set()
        for ids in self.reserved_slices.values():
            out.update(ids)
        return out

    def candidates(self) -> List[_DeviceAccount]:
        return sorted(self.accounts.values(), key=lambda a: a.uuid)


class ExtenderSystem(SharingSystem):
    """Base for scheduler-extender-style systems (Aliyun, GaiaGPU)."""

    #: how many scaling-factor slice units a job consumes; subclasses map
    #: their denominated resource ("gpu-mem" vs "vcuda-core") onto it.
    factor: int = 100
    #: isolation mode injected into containers ("memory", "fluid", ...)
    #: or None for no device library at all.
    isolation: Optional[str] = None
    #: whether the ledger enforces compute commitments too.
    track_util: bool = False
    retry_interval: float = 0.5

    def __init__(self, cluster: Cluster) -> None:
        super().__init__(cluster)
        self.ledger = DeviceLedger(cluster)
        self._pending: List[Tuple[str, Callable, GPURequirements, JobHandle]] = []
        self._started = False

    @classmethod
    def make_cluster(cls, env: Optional[Environment] = None, **overrides) -> Cluster:
        overrides.setdefault("device_plugin", "scaling")
        overrides.setdefault("scaling_factor", cls.factor)
        return Cluster(env, ClusterConfig(**overrides))

    def start(self) -> "ExtenderSystem":
        if not self._started:
            self.env.process(self._watch_pods(), name=f"{self.name}:extender-watch")
            self._started = True
        return self

    # -- extension point -----------------------------------------------------
    def slice_units(self, requirements: GPURequirements) -> int:
        """How many slice units this system's resource unit charges."""
        raise NotImplementedError

    def pick_device(
        self, requirements: GPURequirements
    ) -> Optional[_DeviceAccount]:
        """Choose a device from the ledger, or None if nothing fits."""
        raise NotImplementedError

    def container_env(self, requirements: GPURequirements) -> Dict[str, str]:
        """Extra env the extender's companion injects (isolation config)."""
        return {}

    # -- submit workflow ----------------------------------------------------------
    def submit(
        self,
        name: str,
        workload: Callable,
        requirements: GPURequirements,
        affinity: Optional[str] = None,
        anti_affinity: Optional[str] = None,
        exclusion: Optional[str] = None,
    ) -> JobHandle:
        # Locality constraints are not supported by extender systems
        # (Table 1); accepted and ignored for driver compatibility.
        stats = getattr(workload, "stats", None) or JobStats(name)
        handle = self._track(JobHandle(name=name, kind="Pod", stats=stats))
        if not self._try_place(name, workload, requirements):
            self._pending.append((name, workload, requirements, handle))
        return handle

    def _try_place(
        self, name: str, workload: Callable, requirements: GPURequirements
    ) -> bool:
        acct = self.pick_device(requirements)
        if acct is None:
            return False
        units = self.slice_units(requirements)
        node = self.cluster.node(acct.node)
        reserved = self.ledger.all_reserved()
        free = [
            d
            for d in node.device_manager.free_ids(GPU_RESOURCE)
            if d.rsplit("::", 1)[0] == acct.uuid and d not in reserved
        ]
        if len(free) < units:
            return False
        chosen = sorted(free)[:units]
        env_vars = self.container_env(requirements)
        pod = Pod(
            metadata=ObjectMeta(
                name=name,
                annotations={DEVICE_IDS_ANNOTATION: ",".join(chosen)},
            ),
            spec=PodSpec(
                containers=[
                    ContainerSpec(
                        requests={"cpu": 1.0, GPU_RESOURCE: units},
                        env=env_vars,
                    )
                ],
                node_name=acct.node,  # extender binds; kube-scheduler bypassed
                workload=workload,
            ),
        )
        self.api.create(pod)
        self.ledger.commit(
            name,
            acct.uuid,
            requirements.mem,
            requirements.request if self.track_util else 0.0,
            slice_ids=chosen,
        )
        return True

    def _retry_pending(self) -> None:
        still: List[Tuple[str, Callable, GPURequirements, JobHandle]] = []
        for entry in self._pending:
            name, workload, requirements, handle = entry
            if not self._try_place(name, workload, requirements):
                still.append(entry)
        self._pending = still

    # -- ledger maintenance -----------------------------------------------------------
    def _watch_pods(self) -> Generator:
        stream = self.api.watch("Pod", replay=True)
        while True:
            raw = yield stream.get()
            etype, pod = translate_event(raw)
            if pod is None:
                continue
            if etype is WatchEventType.DELETE or pod.status.phase in _TERMINAL:
                if pod.name in self.ledger.commitments:
                    self.ledger.release(pod.name)
                    # Wait one tick so kubelet returns the slice units.
                    yield self.env.timeout(self.retry_interval)
                    self._retry_pending()

"""Deep-learning job models (paper Table 3).

Two job types drive the whole evaluation:

* :class:`TrainingJob` — TensorFlow ResNet-50 style training: a fixed
  volume of kernel work that saturates whatever GPU share it is granted;
  the adjusted parameter is the number of training steps (→ work volume).
* :class:`InferenceJob` — TF-Serving DeepLab-V3 style inference: the model
  sits in device memory and forward passes arrive with client requests, so
  GPU usage is proportional to the request rate (Figure 5); the adjusted
  parameter is the number of requests (→ work volume at a given demand).

Both produce a *workload factory* compatible with
:class:`~repro.cluster.objects.PodSpec` — a function of the container
context that runs the job through the (possibly intercepted) CUDA API and
records its lifecycle into a :class:`JobStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional

from ..gpu.device import V100_MEMORY

__all__ = ["JobStats", "TrainingJob", "InferenceJob"]


@dataclass
class JobStats:
    """Observed lifecycle of one job (filled in by the workload)."""

    name: str
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    failed: bool = False
    failure: str = ""
    work_done: float = 0.0
    steps_done: int = 0
    #: (time, cumulative work) checkpoints for throughput curves.
    progress: List[tuple] = field(default_factory=list)

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def makespan(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclass
class TrainingJob:
    """Model training: fixed work volume, saturating GPU demand.

    ``steps`` × ``step_work`` defines the total kernel work in seconds of
    full-device compute (ResNet-50 on a V100 runs a global step in tens of
    milliseconds; the default mirrors that scale).
    """

    name: str
    steps: int = 1000
    step_work: float = 0.050
    #: device memory the model + activations occupy (bytes).
    model_memory: int = int(0.25 * V100_MEMORY)
    #: progress checkpoint granularity (steps).
    checkpoint_every: int = 100

    @property
    def total_work(self) -> float:
        return self.steps * self.step_work

    def workload(self, stats: Optional[JobStats] = None) -> Callable:
        stats = stats or JobStats(self.name)
        job = self

        def run(ctx) -> Generator:
            stats.started_at = ctx.env.now
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            try:
                api.cu_mem_alloc(cu, job.model_memory)
                for step in range(job.steps):
                    yield from api.cu_launch_kernel(cu, job.step_work)
                    stats.steps_done = step + 1
                    stats.work_done += job.step_work
                    if (step + 1) % job.checkpoint_every == 0:
                        stats.progress.append((ctx.env.now, stats.work_done))
            except Exception as err:
                stats.failed = True
                stats.failure = repr(err)
                raise
            finally:
                if not cu.destroyed:
                    api.cu_ctx_destroy(cu)
                stats.finished_at = ctx.env.now
            return stats

        run.__name__ = f"training:{self.name}"
        run.stats = stats
        return run


@dataclass
class InferenceJob:
    """Model serving: usage proportional to the client request rate.

    ``requests`` forward passes of ``request_work`` GPU-seconds each arrive
    at ``request_rate`` per second, so the job's steady GPU demand is
    ``request_rate * request_work`` and its unthrottled duration is
    ``requests / request_rate``.
    """

    name: str
    requests: int = 2400
    request_rate: float = 20.0
    request_work: float = 0.015
    #: loaded model memory (DeepLab-V3 scale, ~4 GB on a 16 GB card).
    model_memory: int = int(0.25 * V100_MEMORY)
    #: how many requests to coalesce per launch call (keeps event counts
    #: tractable at cluster scale without changing the demand math).
    batch_requests: int = 5

    @property
    def demand(self) -> float:
        """Steady-state GPU usage fraction (Figure 5's y-axis)."""
        return min(1.0, self.request_rate * self.request_work)

    @property
    def total_work(self) -> float:
        return self.requests * self.request_work

    @classmethod
    def from_demand(
        cls,
        name: str,
        demand: float,
        duration: float = 120.0,
        request_work: float = 0.015,
        model_memory: Optional[int] = None,
        batch_requests: int = 5,
    ) -> "InferenceJob":
        """Build a job with a target *demand* and unthrottled *duration*
        (how Figure 8's workloads are generated)."""
        if not 0.0 < demand <= 1.0:
            raise ValueError(f"demand must be in (0,1], got {demand}")
        rate = demand / request_work
        n_requests = max(1, int(round(rate * duration)))
        kwargs = {}
        if model_memory is not None:
            kwargs["model_memory"] = model_memory
        return cls(
            name=name,
            requests=n_requests,
            request_rate=rate,
            request_work=request_work,
            batch_requests=batch_requests,
            **kwargs,
        )

    def workload(self, stats: Optional[JobStats] = None) -> Callable:
        stats = stats or JobStats(self.name)
        job = self

        def run(ctx) -> Generator:
            stats.started_at = ctx.env.now
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            try:
                api.cu_mem_alloc(cu, job.model_memory)
                served = 0
                start = ctx.env.now
                while served < job.requests:
                    batch = min(job.batch_requests, job.requests - served)
                    # Requests arrive from clients at request_rate; a batch
                    # cannot be served before its requests exist. A server
                    # that fell behind (GPU contention) has a backlog and
                    # launches immediately, at full appetite — it does not
                    # idle between bursts the way an unloaded server does.
                    due = start + served / job.request_rate
                    wait = due - ctx.env.now
                    if wait > 0:
                        yield ctx.env.timeout(wait)
                    work = batch * job.request_work
                    yield from api.cu_launch_kernel(cu, work)
                    served += batch
                    stats.steps_done = served
                    stats.work_done += work
                    if served % (job.batch_requests * 10) == 0:
                        stats.progress.append((ctx.env.now, stats.work_done))
            except Exception as err:
                stats.failed = True
                stats.failure = repr(err)
                raise
            finally:
                if not cu.destroyed:
                    api.cu_ctx_destroy(cu)
                stats.finished_at = ctx.env.now
            return stats

        run.__name__ = f"inference:{self.name}"
        run.stats = stats
        return run

"""Workload trace export / replay.

Generated workloads can be serialized to JSON-lines so an experiment is
reproducible byte-for-byte independent of the generator's RNG, and so
external traces can be replayed through the same harness.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from .generator import InferenceWorkload, JobArrival

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace"]

_FIELDS = ("name", "arrival_time", "demand", "mem_fraction", "duration")


def dumps_trace(jobs: Iterable[JobArrival]) -> str:
    """Serialize jobs to JSON-lines text."""
    lines = []
    for job in jobs:
        lines.append(json.dumps({f: getattr(job, f) for f in _FIELDS}))
    return "\n".join(lines) + ("\n" if lines else "")


def loads_trace(text: str) -> List[JobArrival]:
    """Parse JSON-lines text back into job arrivals."""
    jobs = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"trace line {lineno}: invalid JSON ({err})") from None
        missing = [f for f in _FIELDS if f not in raw]
        if missing:
            raise ValueError(f"trace line {lineno}: missing fields {missing}")
        jobs.append(JobArrival(**{f: raw[f] for f in _FIELDS}))
    return jobs


def dump_trace(
    workload: Union[InferenceWorkload, Iterable[JobArrival]],
    path: Union[str, Path],
) -> Path:
    """Write a workload (or plain job list) to *path* as JSON-lines."""
    jobs = workload.jobs if isinstance(workload, InferenceWorkload) else list(workload)
    path = Path(path)
    path.write_text(dumps_trace(jobs))
    return path


def load_trace(path: Union[str, Path]) -> List[JobArrival]:
    """Read a JSON-lines trace back into job arrivals."""
    return loads_trace(Path(path).read_text())

"""Workload trace export / replay.

Generated workloads can be serialized to JSON-lines so an experiment is
reproducible byte-for-byte independent of the generator's RNG, and so
external traces can be replayed through the same harness.

:func:`synthetic_borg_trace` generates a production-shaped trace in that
format: diurnal arrival rate, heavy-tailed (lognormal body + Pareto
tail) durations, and a small/medium/large demand mix — the shape of the
public Google Borg and Alibaba GPU cluster traces, scaled down to
simulation horizons. Every float is stored at full precision (no
rounding), so a trace's JSON-lines dump is byte-stable for a given seed
and the golden-file tests can pin it exactly.
"""

from __future__ import annotations

import json
from math import log
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from .flows import diurnal_times
from .generator import InferenceWorkload, JobArrival

__all__ = [
    "dump_trace",
    "load_trace",
    "dumps_trace",
    "loads_trace",
    "synthetic_borg_trace",
]

_FIELDS = ("name", "arrival_time", "demand", "mem_fraction", "duration")


def dumps_trace(jobs: Iterable[JobArrival]) -> str:
    """Serialize jobs to JSON-lines text."""
    lines = []
    for job in jobs:
        lines.append(json.dumps({f: getattr(job, f) for f in _FIELDS}))
    return "\n".join(lines) + ("\n" if lines else "")


def loads_trace(text: str) -> List[JobArrival]:
    """Parse JSON-lines text back into job arrivals."""
    jobs = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"trace line {lineno}: invalid JSON ({err})") from None
        missing = [f for f in _FIELDS if f not in raw]
        if missing:
            raise ValueError(f"trace line {lineno}: missing fields {missing}")
        jobs.append(JobArrival(**{f: raw[f] for f in _FIELDS}))
    return jobs


def dump_trace(
    workload: Union[InferenceWorkload, Iterable[JobArrival]],
    path: Union[str, Path],
) -> Path:
    """Write a workload (or plain job list) to *path* as JSON-lines."""
    jobs = workload.jobs if isinstance(workload, InferenceWorkload) else list(workload)
    path = Path(path)
    path.write_text(dumps_trace(jobs))
    return path


def load_trace(path: Union[str, Path]) -> List[JobArrival]:
    """Read a JSON-lines trace back into job arrivals."""
    return loads_trace(Path(path).read_text())


def synthetic_borg_trace(
    seed: int = 0,
    horizon: float = 600.0,
    mean_rate: float = 0.25,
    diurnal_amplitude: float = 0.6,
    period: float = 300.0,
    duration_median: float = 25.0,
    duration_sigma: float = 0.8,
    tail_frac: float = 0.08,
    tail_scale: float = 90.0,
    tail_alpha: float = 1.5,
    max_duration: float = 240.0,
    max_jobs: int = 0,
    name_prefix: str = "borg",
) -> List[JobArrival]:
    """Generate a Borg/Alibaba-shaped synthetic job trace.

    Three production regularities drive the shape (the same ones the
    public Google Borg and Alibaba GPU traces exhibit, compressed from
    days to a simulation horizon):

    * **diurnal arrivals** — a nonhomogeneous Poisson flow whose rate
      swings ``±diurnal_amplitude`` around *mean_rate* with the given
      *period* (:func:`~repro.workloads.flows.diurnal_times`);
    * **heavy-tailed durations** — a lognormal body (median
      *duration_median*, shape *duration_sigma*) mixed with a Pareto
      tail (probability *tail_frac*, scale *tail_scale*, index
      *tail_alpha* < 2 so the tail is genuinely heavy), truncated at
      *max_duration* to keep makespans simulable;
    * **demand mix** — mostly small fractional-GPU jobs, some medium,
      few near-whole-GPU (70/25/5), the distribution that makes GPU
      sharing pay off in the first place.

    The number of jobs is itself part of the draw (the arrival process
    decides); ``max_jobs > 0`` truncates the trace after that many
    arrivals. Floats are passed through unrounded, so
    :func:`dumps_trace` output is byte-stable for a given seed.
    """
    rng = np.random.default_rng(seed)
    arrivals = diurnal_times(
        mean_rate,
        horizon,
        rng,
        amplitude=diurnal_amplitude,
        period=period,
        # Start the compressed "day" on the rising edge so short traces
        # still see both the busy and the quiet regime.
        phase=0.0,
    )
    if max_jobs > 0:
        arrivals = arrivals[:max_jobs]
    n = arrivals.size

    body = rng.lognormal(mean=log(duration_median), sigma=duration_sigma, size=n)
    tail = tail_scale * (1.0 + rng.pareto(tail_alpha, size=n))
    is_tail = rng.uniform(size=n) < tail_frac
    durations = np.minimum(np.where(is_tail, tail, body), max_duration)

    # Demand mix: small / medium / large classes with intra-class jitter.
    klass = rng.choice(3, size=n, p=[0.70, 0.25, 0.05])
    centers = np.array([0.10, 0.30, 0.75])[klass]
    spreads = np.array([0.03, 0.08, 0.10])[klass]
    demands = np.clip(rng.normal(centers, spreads), 0.05, 0.95)

    # Loaded-model memory tracks demand loosely (bigger models serve
    # bigger shares), bounded so ~3-4 jobs co-locate per device.
    mem = np.clip(demands * rng.uniform(0.6, 1.2, size=n), 0.05, 0.35)

    return [
        JobArrival(
            name=f"{name_prefix}-{i:05d}",
            arrival_time=float(arrivals[i]),
            demand=float(demands[i]),
            mem_fraction=float(mem[i]),
            duration=float(durations[i]),
        )
        for i in range(n)
    ]

"""Workloads: the deep-learning jobs the paper evaluates with (Table 3)."""

from .flows import FlowScheduler, diurnal_times, mmpp_times, poisson_times
from .generator import InferenceWorkload, JobArrival, WorkloadGenerator
from .interference import ANTI_AFFINITY_LABEL, JOB_A, JOB_B, InterferenceProfile
from .jobs import InferenceJob, JobStats, TrainingJob
from .trace import (
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
    synthetic_borg_trace,
)
from .variable import RateSchedule, VariableRateInferenceJob, diurnal_schedule

__all__ = [
    "TrainingJob",
    "InferenceJob",
    "JobStats",
    "WorkloadGenerator",
    "InferenceWorkload",
    "JobArrival",
    "InterferenceProfile",
    "JOB_A",
    "JOB_B",
    "ANTI_AFFINITY_LABEL",
    "dump_trace",
    "load_trace",
    "dumps_trace",
    "loads_trace",
    "synthetic_borg_trace",
    "FlowScheduler",
    "poisson_times",
    "mmpp_times",
    "diurnal_times",
    "RateSchedule",
    "VariableRateInferenceJob",
    "diurnal_schedule",
]

"""Variable-rate inference serving.

Figure 5's premise is that serving GPU usage tracks the client request
rate; real serving traffic is not constant, so this module provides an
inference job whose request rate follows a schedule (step changes or a
sinusoidal diurnal pattern). Useful for exercising KubeShare's *elastic*
allocation: a bursty job borrows residual capacity up to its ``gpu_limit``
during peaks and releases it in troughs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple

from ..gpu.device import V100_MEMORY
from .jobs import JobStats

__all__ = ["RateSchedule", "VariableRateInferenceJob", "diurnal_schedule"]


@dataclass(frozen=True)
class RateSchedule:
    """Piecewise-constant request rate: (start_time, requests/s) steps."""

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("schedule needs at least one step")
        times = [t for t, _ in self.steps]
        if times != sorted(times) or times[0] != 0.0:
            raise ValueError("steps must start at t=0 and be time-ordered")
        if any(rate < 0 for _, rate in self.steps):
            raise ValueError("rates must be >= 0")

    def rate_at(self, t: float) -> float:
        rate = self.steps[0][1]
        for start, r in self.steps:
            if t >= start:
                rate = r
            else:
                break
        return rate

    def mean_rate(self, horizon: float) -> float:
        """Time-averaged rate over [0, horizon)."""
        total = 0.0
        for i, (start, rate) in enumerate(self.steps):
            end = self.steps[i + 1][0] if i + 1 < len(self.steps) else horizon
            end = min(end, horizon)
            if end > start:
                total += rate * (end - start)
        return total / horizon if horizon > 0 else 0.0


def diurnal_schedule(
    period: float,
    base_rate: float,
    amplitude: float,
    resolution: int = 24,
) -> RateSchedule:
    """A sinusoidal day/night pattern sampled into *resolution* steps."""
    if not 0 <= amplitude <= base_rate:
        raise ValueError("need 0 <= amplitude <= base_rate")
    steps = []
    for i in range(resolution):
        t = i * period / resolution
        rate = base_rate + amplitude * math.sin(2 * math.pi * i / resolution)
        steps.append((t, max(0.0, rate)))
    return RateSchedule(tuple(steps))


@dataclass
class VariableRateInferenceJob:
    """Inference serving with a time-varying client request rate.

    Requests arrive per the schedule; each costs ``request_work`` seconds
    of full-device compute. The job serves for ``duration`` seconds of
    arrivals (a backlogged server keeps draining afterwards).
    """

    name: str
    schedule: RateSchedule
    duration: float = 120.0
    request_work: float = 0.015
    model_memory: int = int(0.25 * V100_MEMORY)
    batch_requests: int = 5

    def arrival_times(self) -> List[float]:
        """Deterministic request arrival instants over [0, duration)."""
        out: List[float] = []
        t = 0.0
        while t < self.duration:
            rate = self.schedule.rate_at(t)
            if rate <= 0:
                # jump to the next schedule step with a positive rate
                nxt = next(
                    (s for s, r in self.schedule.steps if s > t and r > 0), None
                )
                if nxt is None:
                    break
                t = nxt
                continue
            out.append(t)
            t += 1.0 / rate
        return out

    @property
    def peak_demand(self) -> float:
        return min(1.0, max(r for _, r in self.schedule.steps) * self.request_work)

    def workload(self, stats: Optional[JobStats] = None) -> Callable:
        stats = stats or JobStats(self.name)
        job = self

        def run(ctx) -> Generator:
            stats.started_at = ctx.env.now
            api = ctx.cuda()
            cu = api.cu_ctx_create()
            arrivals = job.arrival_times()
            try:
                api.cu_mem_alloc(cu, job.model_memory)
                start = ctx.env.now
                i = 0
                while i < len(arrivals):
                    batch_end = min(i + job.batch_requests, len(arrivals))
                    due = start + arrivals[batch_end - 1]
                    wait = due - ctx.env.now
                    if wait > 0:
                        yield ctx.env.timeout(wait)
                    work = (batch_end - i) * job.request_work
                    yield from api.cu_launch_kernel(cu, work)
                    stats.work_done += work
                    stats.steps_done = batch_end
                    i = batch_end
                stats.progress.append((ctx.env.now, stats.work_done))
            except Exception as err:
                stats.failed = True
                stats.failure = repr(err)
                raise
            finally:
                if not cu.destroyed:
                    api.cu_ctx_destroy(cu)
                stats.finished_at = ctx.env.now
            return stats

        run.__name__ = f"variable-inference:{self.name}"
        run.stats = stats
        return run

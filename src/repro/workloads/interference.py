"""Job profiles for the §5.5 interference study (Figures 12 & 13).

Two job kinds share one GPU:

* **Job A over-requests**: it asks for more GPU than it actually uses
  (request 0.45, actual demand 0.30), making it resilient to contention —
  its true appetite always fits in its guarantee.
* **Job B under-requests**: it asks for less than it actually uses when
  alone (request 0.45, actual demand 0.75). Two Bs on one GPU can each be
  granted only ~0.50, so both slow down by ~1.5x — the Figure 12 signature
  — whereas pairings involving A leave enough residual for B to run at its
  full appetite (<10% degradation).

The anti-affinity label on Job B is how §5.5's "KubeShare with
anti-affinity" setting prevents two Bs from sharing a device.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import V100_MEMORY
from .jobs import InferenceJob

__all__ = ["InterferenceProfile", "JOB_A", "JOB_B", "ANTI_AFFINITY_LABEL"]

ANTI_AFFINITY_LABEL = "job-b-no-share"


@dataclass(frozen=True)
class InterferenceProfile:
    """Resource request vs. actual appetite of one job kind."""

    kind: str
    gpu_request: float
    gpu_limit: float
    gpu_mem: float
    actual_demand: float
    #: GPU work volume per job (seconds of full-device compute). Sized so
    #: both kinds run for the same ~80 s standalone — the paper varies the
    #: jobs' resource appetite, not their length.
    work: float = 60.0

    @property
    def standalone_duration(self) -> float:
        """Execution time alone on a GPU (the Figure 12 baseline)."""
        return self.work / self.actual_demand

    def job(self, name: str, batch_requests: int = 5) -> InferenceJob:
        return InferenceJob.from_demand(
            name,
            demand=self.actual_demand,
            duration=self.standalone_duration,
            model_memory=int(self.gpu_mem * V100_MEMORY),
            batch_requests=batch_requests,
        )


#: Job A: requests more than it needs (resilient to interference).
JOB_A = InterferenceProfile(
    kind="A", gpu_request=0.45, gpu_limit=0.5, gpu_mem=0.2, actual_demand=0.30,
    work=24.0,
)

#: Job B: requests less than it actually uses alone (interference-prone).
JOB_B = InterferenceProfile(
    kind="B", gpu_request=0.45, gpu_limit=1.0, gpu_mem=0.2, actual_demand=0.75,
    work=60.0,
)

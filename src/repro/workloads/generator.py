"""Workload generation (paper §5.3).

Figure 8's workloads are "a set of model inference jobs [whose]
inter-arrival time follows a Poisson process, and the job GPU usage demand
is randomly generated from a normal distribution". This module generates
exactly that, seeded and reproducible, with the three knobs the paper
sweeps: job frequency, demand mean, and demand variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..gpu.device import V100_MEMORY
from .jobs import InferenceJob

__all__ = ["JobArrival", "InferenceWorkload", "WorkloadGenerator"]


@dataclass(frozen=True)
class JobArrival:
    """One job in a generated workload."""

    name: str
    arrival_time: float
    demand: float
    mem_fraction: float
    duration: float

    def to_job(self, request_work: float = 0.015, batch_requests: int = 50) -> InferenceJob:
        return InferenceJob.from_demand(
            self.name,
            demand=self.demand,
            duration=self.duration,
            request_work=request_work,
            model_memory=int(self.mem_fraction * V100_MEMORY),
            batch_requests=batch_requests,
        )


@dataclass
class InferenceWorkload:
    """A generated workload plus its generating parameters."""

    jobs: List[JobArrival]
    jobs_per_minute: float
    demand_mean: float
    demand_std: float
    seed: int

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_demand(self) -> float:
        return sum(j.demand for j in self.jobs)


class WorkloadGenerator:
    """Seeded generator for Figure 8 style inference workloads."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    def poisson_arrivals(self, jobs_per_minute: float, n_jobs: int) -> np.ndarray:
        """Cumulative arrival times for a Poisson process (seconds)."""
        if jobs_per_minute <= 0:
            raise ValueError("jobs_per_minute must be > 0")
        if n_jobs <= 0:
            raise ValueError("n_jobs must be > 0")
        gaps = self.rng.exponential(60.0 / jobs_per_minute, size=n_jobs)
        return np.cumsum(gaps)

    def normal_demands(
        self,
        mean: float,
        std: float,
        n_jobs: int,
        lo: float = 0.05,
        hi: float = 0.95,
    ) -> np.ndarray:
        """Per-job GPU demands ~ N(mean, std²), clipped to [lo, hi]."""
        if not 0.0 < mean < 1.0:
            raise ValueError("mean must be in (0,1)")
        if std < 0:
            raise ValueError("std must be >= 0")
        demands = self.rng.normal(mean, std, size=n_jobs)
        return np.clip(demands, lo, hi)

    def inference_workload(
        self,
        n_jobs: int = 100,
        jobs_per_minute: float = 12.0,
        demand_mean: float = 0.3,
        demand_std: float = 0.1,
        duration: float = 120.0,
        mem_fraction: float = 0.25,
        name_prefix: str = "inf",
    ) -> InferenceWorkload:
        """Generate a Figure 8 workload.

        ``mem_fraction`` is each job's loaded-model memory as a fraction of
        device memory; the default 0.25 matches a ~4 GB DeepLab-V3 serving
        footprint on a 16 GB V100, which is what bounds co-location to ~4
        jobs per GPU in the paper's plateau (see EXPERIMENTS.md).
        """
        arrivals = self.poisson_arrivals(jobs_per_minute, n_jobs)
        demands = self.normal_demands(demand_mean, demand_std, n_jobs)
        jobs = [
            JobArrival(
                name=f"{name_prefix}-{i:04d}",
                arrival_time=float(arrivals[i]),
                demand=float(demands[i]),
                mem_fraction=mem_fraction,
                duration=duration,
            )
            for i in range(n_jobs)
        ]
        return InferenceWorkload(
            jobs=jobs,
            jobs_per_minute=jobs_per_minute,
            demand_mean=demand_mean,
            demand_std=demand_std,
            seed=self.seed,
        )

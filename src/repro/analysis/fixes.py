"""Autofix application for the mechanical RPR fix-its.

Only rules that attach an explicit ``fix`` span to their findings are
autofixable — today RPR006 (wrap the unordered iterable in
``sorted(...)``) and RPR009's ``api.delete`` → ``api.try_delete`` helper
substitution. Judgment calls (noqa insertion, CAS rewrites, reset-hook
registration) are never autofixed.

Edits are applied right-to-left per file so earlier spans stay valid;
overlapping spans keep the first (outermost finding wins). The pass is
idempotent: after one application the finding disappears, so a second
run produces byte-identical output — CI can assert convergence.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .rules import Finding

__all__ = ["fixable", "apply_fixes", "apply_fixes_to_source"]


def fixable(findings: Sequence[Finding]) -> List[Finding]:
    return [f for f in findings if f.fix is not None]


def _offsets(source: str) -> List[int]:
    """Byte offset of the start of each (1-based) line."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def apply_fixes_to_source(source: str, findings: Sequence[Finding]) -> Tuple[str, int]:
    """Apply every attached fix span to *source*.

    Returns ``(new_source, applied_count)``. Spans use AST coordinates:
    1-based lines, 0-based columns.
    """
    spans: List[Tuple[int, int, str]] = []
    offsets = _offsets(source)
    n_lines = len(offsets) - 1
    for f in fixable(findings):
        sl, sc, el, ec, replacement = f.fix
        if sl < 1 or el < 1 or sl > n_lines or el > n_lines:
            continue
        start = offsets[sl - 1] + sc
        end = offsets[el - 1] + ec
        if start > end or end > len(source):
            continue
        spans.append((start, end, replacement))
    spans.sort()
    # drop overlaps (keep the first span of each overlapping cluster)
    pruned: List[Tuple[int, int, str]] = []
    last_end = -1
    for start, end, repl in spans:
        if start < last_end:
            continue
        pruned.append((start, end, repl))
        last_end = end
    applied = 0
    for start, end, repl in reversed(pruned):
        if source[start:end] == repl:
            continue  # already fixed — idempotency
        source = source[:start] + repl + source[end:]
        applied += 1
    return source, applied


def apply_fixes(findings: Sequence[Finding]) -> Dict[str, int]:
    """Group *findings* by file and rewrite each file in place.

    Returns ``{path: applied_count}`` for files that changed.
    """
    by_file: Dict[str, List[Finding]] = {}
    for f in fixable(findings):
        by_file.setdefault(f.path, []).append(f)
    changed: Dict[str, int] = {}
    for path, file_findings in sorted(by_file.items()):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        new_source, applied = apply_fixes_to_source(source, file_findings)
        if applied and new_source != source:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(new_source)
            changed[path] = applied
    return changed

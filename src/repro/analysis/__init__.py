"""Correctness tooling for the simulated control plane.

Three layers, all mechanical enforcements of invariants the rest of the
repo only *documents* (replayability, no lost updates, no double-bound
vGPUs, token quotas respected):

* :mod:`repro.analysis.resets` — a registry of reset hooks for
  process-global mutable state (the GPUID-counter bug class). Test
  fixtures call :func:`~repro.analysis.resets.reset_all` instead of
  hand-listing every counter.
* :mod:`repro.analysis.lint` — a custom static analysis engine with
  sim-specific rules (``python -m repro.analysis.lint src tests
  benchmarks``). File-local rule catalogue in :mod:`repro.analysis.rules`
  (DESIGN.md §8); whole-program dataflow passes — interprocedural taint,
  fence escape, yield-point atomicity — in :mod:`repro.analysis.flow`
  over the project call graph (:mod:`repro.analysis.callgraph`,
  DESIGN.md §13). Production surface: SARIF 2.1.0 output
  (:mod:`repro.analysis.sarif`), a committed finding baseline with
  diff-aware CI mode (:mod:`repro.analysis.baseline`), mechanical
  autofixes (:mod:`repro.analysis.fixes`), and a content-hash result
  cache (:mod:`repro.analysis.cache`).
* :mod:`repro.analysis.race` — a dynamic lost-update / double-bind /
  token-over-grant detector that instruments :class:`~repro.cluster.etcd.Etcd`
  and the per-node token backends at runtime (opt-in via the
  ``REPRO_RACE_DETECT`` environment variable in the chaos and failover
  benchmarks).
"""

from .race import RaceDetector, RaceViolation, Violation, install_from_env
from .resets import register_reset, registered, reset_all
from .rules import ALL_RULES, Finding

__all__ = [
    "ALL_RULES",
    "Finding",
    "RaceDetector",
    "RaceViolation",
    "Violation",
    "install_from_env",
    "register_reset",
    "registered",
    "reset_all",
]

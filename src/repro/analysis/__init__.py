"""Correctness tooling for the simulated control plane.

Three layers, all mechanical enforcements of invariants the rest of the
repo only *documents* (replayability, no lost updates, no double-bound
vGPUs, token quotas respected):

* :mod:`repro.analysis.resets` — a registry of reset hooks for
  process-global mutable state (the GPUID-counter bug class). Test
  fixtures call :func:`~repro.analysis.resets.reset_all` instead of
  hand-listing every counter.
* :mod:`repro.analysis.lint` — a custom AST linter with sim-specific
  rules (``python -m repro.analysis.lint src tests benchmarks``). Rule
  catalogue in :mod:`repro.analysis.rules` and DESIGN.md §8.
* :mod:`repro.analysis.race` — a dynamic lost-update / double-bind /
  token-over-grant detector that instruments :class:`~repro.cluster.etcd.Etcd`
  and the per-node token backends at runtime (opt-in via the
  ``REPRO_RACE_DETECT`` environment variable in the chaos and failover
  benchmarks).
"""

from .race import RaceDetector, RaceViolation, Violation, install_from_env
from .resets import register_reset, registered, reset_all
from .rules import ALL_RULES, Finding

__all__ = [
    "ALL_RULES",
    "Finding",
    "RaceDetector",
    "RaceViolation",
    "Violation",
    "install_from_env",
    "register_reset",
    "registered",
    "reset_all",
]

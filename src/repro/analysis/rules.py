"""Sim-aware AST lint rules (the RPR catalogue, DESIGN.md §8).

Every rule mechanically enforces an invariant the simulator's
correctness claims rest on: replayability (same seed ⇒ identical
schedule, across processes), no lost updates against the apiserver, and
fenced leader writes. Each rule has an ID, a one-line message, and a
fix-it suggestion; a finding is suppressed by an inline
``# noqa: RPRxxx - justification`` comment on its line (handled by
:mod:`repro.analysis.lint`).

Rules
-----
RPR001  wall-clock read in simulated code
RPR002  process-global or unseeded RNG
RPR003  module-level mutable state without a registered reset hook
RPR004  lost-update hazard: blind etcd put / unguarded get→update
RPR005  leader controller built against an unfenced apiserver handle
RPR006  unsorted set iteration (hash order feeds control flow)
RPR007  bare print() in library code (bypasses the event/log layer)
RPR008  sorted()/list() copy or full relist in a # hot-path function
RPR009  unguarded api.delete / eviction call (no NotFound/Conflict handling)
RPR010  federation write bypasses the generation fence / retry layer
RPR011  wall-clock/RNG taint escapes into simulated code (whole-program)
RPR012  unfenced apiserver handle reaches a leader write site (whole-program)
RPR013  read-modify-write on shared state spans a yield point

RPR011–013 are implemented in :mod:`repro.analysis.flow` over the
project call graph (:mod:`repro.analysis.callgraph`); their catalogue
entries live here so ``--list-rules``/``--explain-rules`` and SARIF see
one rule table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["Finding", "RuleInfo", "ALL_RULES", "FileContext", "ProjectContext", "run_rules"]


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    fixit: str
    #: mechanical autofix, when one exists: ``(start_line, start_col,
    #: end_line, end_col, replacement)`` in 1-based line / 0-based column
    #: AST coordinates. Applied by ``repro.analysis.fixes``.
    fix: Optional[Tuple[int, int, int, int, str]] = None

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"{self.message} (fix: {self.fixit})"
        )


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one rule (``--list-rules`` and DESIGN.md §8)."""

    id: str
    title: str
    rationale: str
    fixit: str


_FIX_WALLCLOCK = (
    "use Environment.now (virtual time); suppress only where host "
    "performance itself is being measured"
)
_FIX_RNG = (
    "thread a seeded random.Random(seed) through the call path; the "
    "process-global RNG makes schedules irreproducible"
)
_FIX_RESET = (
    "register a reset hook via repro.analysis.resets.register_reset so "
    "scenario fixtures restore fresh-process state"
)
_FIX_LOST_UPDATE = (
    "use etcd.put_if / api.patch (conflict-retried read-modify-write) "
    "or catch Conflict and re-read"
)
_FIX_FENCING = (
    "construct the controller against the FencedAPIServer the factory "
    "receives, never a captured bare apiserver handle"
)
_FIX_SORTED = (
    "iterate sorted(...): set order depends on PYTHONHASHSEED, so the "
    "same seed can yield different schedules across processes"
)
_FIX_PRINT = (
    "emit a Kubernetes-style Event (repro.obs.event) or record a metric; "
    "stdout from library code is invisible to the observability pipeline"
)
_FIX_HOT_COPY = (
    "serve the data from a cached, invalidation-driven index (e.g. "
    "repro.core.viewindex.DeviceViewIndex) or hoist the copy out of the "
    "hot function; suppress with a justification when the copy IS the "
    "reference path"
)
_FIX_SIM_BUCKET = (
    "serve ordered pops from the calendar queue's bucket index "
    "(repro.sim.calqueue.CalendarQueue buckets events by timestamp and "
    "sorts one bucket lazily at pop time) instead of copying or "
    "re-sorting the whole queue per event; suppress with a justification "
    "when the copy IS the reference path"
)
_FIX_REVOKE = (
    "route deletions through repro.policy.revocation.safe_delete / "
    "tolerant_patch (NotFound- and Conflict-tolerant) or api.try_delete, "
    "or catch NotFound in the enclosing function"
)
_FIX_FEDERATION = (
    "route member-cluster writes through FederationRPC.fenced_submit "
    "(generation-fenced placement) or FederationRPC.call (retried, "
    "partition-aware), and record mutations through GlobalRegistry"
)

ALL_RULES: Tuple[RuleInfo, ...] = (
    RuleInfo(
        "RPR001",
        "wall-clock read in simulated code",
        "time.time()/perf_counter()/datetime.now() read the host clock; "
        "simulated logic must advance on Environment.now or replays diverge.",
        _FIX_WALLCLOCK,
    ),
    RuleInfo(
        "RPR002",
        "process-global or unseeded RNG",
        "random.random()/choice()/... and random.Random() draw from hidden "
        "or unseeded state, so runs depend on import order and history.",
        _FIX_RNG,
    ),
    RuleInfo(
        "RPR003",
        "module-level mutable state without a registered reset hook",
        "the GPUID-counter bug class: process-global counters/caches leak "
        "state across scenarios unless a reset hook is registered.",
        _FIX_RESET,
    ),
    RuleInfo(
        "RPR004",
        "lost-update hazard on the apiserver/etcd",
        "a blind put (or a get→update cycle with no Conflict handling) can "
        "silently overwrite a concurrent writer's changes.",
        _FIX_LOST_UPDATE,
    ),
    RuleInfo(
        "RPR005",
        "leader controller built against an unfenced apiserver handle",
        "an HAControllerGroup factory that ignores its FencedAPIServer "
        "client lets a deposed leader keep writing — split-brain.",
        _FIX_FENCING,
    ),
    RuleInfo(
        "RPR006",
        "unsorted set iteration feeding control flow",
        "set iteration order varies with PYTHONHASHSEED; when it feeds a "
        "scheduling or recovery decision, replays diverge across processes.",
        _FIX_SORTED,
    ),
    RuleInfo(
        "RPR007",
        "bare print() in library code",
        "library output on stdout bypasses the Event store, the trace, and "
        "the metric families, so it never reaches `repro.obs` consumers; "
        "only experiments/ and CLI entry points may print.",
        _FIX_PRINT,
    ),
    RuleInfo(
        "RPR008",
        "O(n) copy or full relist inside a hot-path / sim-kernel function",
        "functions marked `# hot-path` run once per simulation event or "
        "scheduling pass; a sorted()/list() copy or an api.list() relist "
        "there makes the whole run superlinear — the relist-and-resort-"
        "per-pass bug class the device-view index exists to kill. Inside "
        "`src/repro/sim/**` every function is a kernel function and is "
        "hot by definition (no marker needed): the kernel dispatches once "
        "per event, so the fix is the calendar queue's bucket index, not "
        "a per-event copy. Dunder methods and @property accessors are "
        "exempt (construction and introspection, not dispatch).",
        _FIX_HOT_COPY,
    ),
    RuleInfo(
        "RPR009",
        "unguarded api.delete / eviction call",
        "revocation paths race by design — a drain timer, the reaper, and "
        "a preemptor can all target the same object, so a raw api.delete "
        "with no NotFound/Conflict handling crashes the losing controller "
        "instead of treating the repeat as already-done (idempotence).",
        _FIX_REVOKE,
    ),
    RuleInfo(
        "RPR010",
        "federation write bypasses the generation fence / retry layer",
        "a direct apiserver or kubeshare write from federation code skips "
        "the generation fence (double-placement after a healed partition) "
        "and the decorrelated-jitter retry policy (stampedes on flapping "
        "links); only the sanctioned wrappers may touch member clusters.",
        _FIX_FEDERATION,
    ),
    RuleInfo(
        "RPR011",
        "wall-clock/RNG taint escapes into simulated code",
        "a helper can launder a host-clock or unseeded-RNG value past the "
        "file-local rules: `def stamp(): return time.time()` is RPR001 in "
        "its own file, but every *caller* in simulated code silently "
        "diverges replays; this whole-program pass tracks taint through "
        "returns, assignments, and call arguments across modules.",
        "derive the value from Environment.now or a seeded Random threaded "
        "through the call path; if the helper intentionally measures host "
        "time, keep its callers out of simulated code",
    ),
    RuleInfo(
        "RPR012",
        "unfenced apiserver handle reaches a leader write site",
        "RPR005 catches a factory that *syntactically* grabs `self.api`; "
        "this pass follows the handle through aliasing, attribute storage, "
        "and constructor forwarding — an unfenced APIServer passed through "
        "two constructors into a controller that writes through it lets a "
        "deposed leader keep writing (split-brain).",
        "pass the factory's FencedAPIServer parameter down the constructor "
        "chain instead of a captured bare apiserver handle",
    ),
    RuleInfo(
        "RPR013",
        "read-modify-write on shared state spans a yield point",
        "between a read of shared etcd/pool/registry/apiserver state and "
        "the dependent write, a `yield` hands the processor to other "
        "processes — the read is stale when the write lands, the static "
        "twin of the lost updates the dynamic race detector flags.",
        "re-read after resuming, or make the write a CAS (etcd.put_if / "
        "api.patch with Conflict retry) so a concurrent writer is detected",
    ),
)

_RULE_BY_ID = {r.id: r for r in ALL_RULES}


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """One parsed file plus its import table."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: local name -> fully qualified name it was imported as.
        self.imports: Dict[str, str] = {}
        #: attribute names this file assigns a clearly non-set container —
        #: they override a same-named set attribute from another file
        #: (``controller._pending`` is a set; ``extender._pending`` a list).
        self.non_set_attrs: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Attribute
            ):
                if _is_non_set_annotation(node.annotation):
                    self.non_set_attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign) and _is_non_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.non_set_attrs.add(target.attr)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Rewrite the first segment through the import table."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self.imports.get(head)
        if mapped is None:
            return dotted
        return f"{mapped}.{rest}" if rest else mapped


class ProjectContext:
    """Cross-file facts collected in a first pass over every linted file."""

    def __init__(self) -> None:
        #: attribute names statically known to hold a ``set`` somewhere in
        #: the project (``attached: Set[str]``, ``self._pending = set()``).
        self.set_attrs: Set[str] = set()

    def collect(self, ctx: FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
                target = node.target
                if isinstance(target, ast.Attribute):
                    self.set_attrs.add(target.attr)
                elif isinstance(target, ast.Name) and _in_class_body(ctx.tree, node):
                    self.set_attrs.add(target.id)
            elif isinstance(node, ast.Assign) and _is_set_expr(node.value, locals_=set()):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self.set_attrs.add(target.attr)


def _in_class_body(tree: ast.Module, node: ast.AST) -> bool:
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and node in cls.body:
            return True
    return False


def _is_set_annotation(annotation: ast.AST) -> bool:
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    name = _dotted(base)
    return name is not None and name.split(".")[-1] in ("Set", "set", "MutableSet", "frozenset")


def _is_non_set_annotation(annotation: ast.AST) -> bool:
    base = annotation
    if isinstance(base, ast.Subscript):
        base = base.value
    name = _dotted(base)
    return name is not None and name.split(".")[-1] in (
        "List", "list", "Dict", "dict", "Tuple", "tuple", "Sequence", "Mapping",
        "OrderedDict", "defaultdict", "deque", "str",
    )


def _is_non_set_expr(node: ast.AST) -> bool:
    """Is *node* statically an *ordered* container (not a set)?"""
    if isinstance(node, (ast.List, ast.ListComp, ast.Dict, ast.DictComp, ast.Tuple)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name is not None and name.split(".")[-1] in (
            "list", "dict", "tuple", "OrderedDict", "defaultdict", "deque", "sorted",
        )
    return False


def _is_set_expr(node: ast.AST, locals_: Set[str]) -> bool:
    """Is *node* statically a set? (literal, set() call, comprehension,
    a local known to hold one, or a set operation on one)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in locals_:
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_expr(node.left, locals_) or _is_set_expr(node.right, locals_)
    return False


# ---------------------------------------------------------------------------
# RPR001 — wall clock
# ---------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")


def _check_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(_dotted(node.func))
        if resolved is None:
            continue
        hit = resolved in _WALL_CLOCK or any(
            resolved == s or resolved.endswith("." + s) for s in _WALL_CLOCK_SUFFIXES
        )
        if hit:
            yield _finding(ctx, node, "RPR001", f"wall-clock read `{resolved}()`")


# ---------------------------------------------------------------------------
# RPR002 — global / unseeded RNG
# ---------------------------------------------------------------------------

_NP_SEEDED_OK = ("numpy.random.default_rng", "numpy.random.Generator", "numpy.random.SeedSequence")


def _check_rng(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve(_dotted(node.func))
        if resolved is None:
            continue
        if resolved == "random.Random" or resolved.endswith("numpy.random.RandomState"):
            if not node.args and not node.keywords:
                yield _finding(ctx, node, "RPR002", f"unseeded `{resolved}()`")
            continue
        if resolved.startswith("random."):
            yield _finding(
                ctx, node, "RPR002", f"process-global RNG call `{resolved}()`"
            )
        elif resolved.startswith("numpy.random.") and resolved not in _NP_SEEDED_OK:
            yield _finding(
                ctx, node, "RPR002", f"process-global NumPy RNG call `{resolved}()`"
            )
        elif resolved in _NP_SEEDED_OK and resolved.endswith("default_rng"):
            if not node.args and not node.keywords:
                yield _finding(ctx, node, "RPR002", f"unseeded `{resolved}()`")


# ---------------------------------------------------------------------------
# RPR003 — module-level mutable state without a reset hook
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = {
    "set",
    "dict",
    "list",
    "bytearray",
    "deque",
    "collections.deque",
    "defaultdict",
    "collections.defaultdict",
    "Counter",
    "collections.Counter",
    "OrderedDict",
    "collections.OrderedDict",
    "count",
    "itertools.count",
}


def _is_mutable_ctor(ctx: FileContext, value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        resolved = ctx.resolve(_dotted(value.func))
        return resolved in _MUTABLE_CTORS
    return False


def _reset_covered_names(ctx: FileContext) -> Set[str]:
    """Identifiers referenced by any registered reset hook in this module."""
    covered: Set[str] = set()
    functions = {
        n.name: n for n in ast.walk(ctx.tree) if isinstance(n, ast.FunctionDef)
    }
    hooked: List[ast.AST] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is not None and name.split(".")[-1] == "register_reset":
                hooked.extend(node.args)
                hooked.extend(kw.value for kw in node.keywords)
        elif isinstance(node, ast.FunctionDef):
            for dec in node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                name = _dotted(target)
                if name is not None and name.split(".")[-1] == "register_reset":
                    hooked.append(ast.Name(id=node.name, ctx=ast.Load()))
    for arg in hooked:
        if isinstance(arg, ast.Name) and arg.id in functions:
            body = functions[arg.id]
        elif isinstance(arg, ast.Lambda):
            body = arg
        else:
            # e.g. register_reset("x", _cache.clear): the receiver counts.
            name = _dotted(arg)
            if name is not None:
                covered.add(name.split(".")[0])
            continue
        for sub in ast.walk(body):
            if isinstance(sub, ast.Global):
                covered.update(sub.names)
            elif isinstance(sub, ast.Name):
                covered.add(sub.id)
    return covered


def _check_module_state(ctx: FileContext) -> Iterator[Finding]:
    covered: Optional[Set[str]] = None  # computed lazily
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target] if isinstance(node.target, ast.Name) else []
            value = node.value
        else:
            continue
        if not _is_mutable_ctor(ctx, value):
            continue
        for target in targets:
            name = target.id
            if name in ("__all__", "__path__") or name.isupper():
                continue  # constants-by-convention are a different sin
            if covered is None:
                covered = _reset_covered_names(ctx)
            if name in covered:
                continue
            yield _finding(
                ctx,
                node,
                "RPR003",
                f"module-level mutable state `{name}` has no registered reset hook",
            )


# ---------------------------------------------------------------------------
# RPR004 — lost-update hazards
# ---------------------------------------------------------------------------

def _segments(dotted: str) -> List[str]:
    return [s.lstrip("_") for s in dotted.split(".")]


def _check_lost_update(ctx: FileContext) -> Iterator[Finding]:
    # (a) blind etcd put anywhere.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "put":
                receiver = _dotted(node.func.value)
                if receiver is not None and "etcd" in _segments(receiver):
                    yield _finding(
                        ctx, node, "RPR004", f"blind `{receiver}.put(...)` (no CAS)"
                    )
    # (b) get→update on an api handle with no Conflict handling in scope.
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        handles_conflict = False
        for sub in ast.walk(fn):
            if isinstance(sub, ast.ExceptHandler) and sub.type is not None:
                types = (
                    sub.type.elts if isinstance(sub.type, ast.Tuple) else [sub.type]
                )
                for t in types:
                    name = _dotted(t) or ""
                    if "Conflict" in name or "CasFailure" in name:
                        handles_conflict = True
        if handles_conflict:
            continue
        reads: Dict[str, int] = {}
        for sub in ast.walk(fn):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            receiver = _dotted(sub.func.value)
            if receiver is None or "api" not in _segments(receiver):
                continue
            if sub.func.attr == "get":
                reads.setdefault(receiver, sub.lineno)
            elif sub.func.attr == "update" and receiver in reads:
                if sub.lineno > reads[receiver]:
                    yield _finding(
                        ctx,
                        sub,
                        "RPR004",
                        f"`{receiver}.get(...)` → `{receiver}.update(...)` "
                        "with no Conflict handling",
                    )


# ---------------------------------------------------------------------------
# RPR005 — unfenced leader controllers
# ---------------------------------------------------------------------------

def _check_fenced_factories(ctx: FileContext) -> Iterator[Finding]:
    functions = {
        n.name: n for n in ast.walk(ctx.tree) if isinstance(n, ast.FunctionDef)
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name is None or name.split(".")[-1] != "HAControllerGroup":
            continue
        factory: Optional[ast.AST] = None
        if len(node.args) >= 4:
            factory = node.args[3]
        for kw in node.keywords:
            if kw.arg == "factory":
                factory = kw.value
        if isinstance(factory, ast.Name):
            factory = functions.get(factory.id)
        if not isinstance(factory, (ast.FunctionDef, ast.Lambda)):
            continue  # not statically resolvable
        params = factory.args.args
        if not params:
            yield _finding(
                ctx, node, "RPR005", "HA factory takes no fenced-client parameter"
            )
            continue
        client = params[0].arg
        body = factory.body if isinstance(factory.body, list) else [factory.body]
        uses_client = any(
            isinstance(sub, ast.Name) and sub.id == client
            for stmt in body
            for sub in ast.walk(stmt)
        )
        if not uses_client:
            yield _finding(
                ctx,
                factory if isinstance(factory, ast.Lambda) else node,
                "RPR005",
                f"HA factory never uses its fenced client `{client}`",
            )
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Attribute) and sub.attr in ("api", "_api"):
                    yield _finding(
                        ctx,
                        sub,
                        "RPR005",
                        f"HA factory reaches for unfenced `{_dotted(sub)}`",
                    )


# ---------------------------------------------------------------------------
# RPR006 — unsorted set iteration
# ---------------------------------------------------------------------------

_ORDERED_CONSUMERS = ("list", "tuple", "min", "max", "enumerate", "reversed")
#: Reducers whose result cannot depend on iteration order (min/max are NOT
#: here: with a key= function, ties break by iteration order).
_UNORDERED_REDUCERS = ("all", "any", "sum", "len", "set", "frozenset", "sorted")


def _check_set_iteration(ctx: FileContext, project: ProjectContext) -> Iterator[Finding]:
    for scope in ast.walk(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            continue
        locals_: Set[str] = set()
        # Local inference: names assigned a set expression anywhere in the
        # scope. Two passes reach the fixpoint for one level of aliasing
        # (``a = set(); b = a``) without needing program order.
        for _ in range(2):
            for sub in _walk_scope(scope):
                if isinstance(sub, ast.Assign) and _is_set_expr(sub.value, locals_):
                    for t in sub.targets:
                        if isinstance(t, ast.Name):
                            locals_.add(t.id)
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    if _is_set_annotation(sub.annotation) or _is_set_expr(
                        sub.value, locals_
                    ):
                        if isinstance(sub.target, ast.Name):
                            locals_.add(sub.target.id)

        def is_set(expr: ast.AST) -> bool:
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in project.set_attrs
                and expr.attr not in ctx.non_set_attrs
            ):
                return True
            return _is_set_expr(expr, locals_)

        # Comprehensions consumed whole by an order-insensitive reducer
        # (``all(x in y for x in some_set)``) are deterministic no matter
        # how the set iterates — exempt them.
        reduced: Set[ast.AST] = set()
        for sub in _walk_scope(scope):
            if isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                if name in _UNORDERED_REDUCERS and len(sub.args) == 1:
                    reduced.add(sub.args[0])

        for sub in _walk_scope(scope):
            if isinstance(sub, (ast.For, ast.AsyncFor)) and is_set(sub.iter):
                yield _finding(
                    ctx, sub.iter, "RPR006", _set_iter_msg(sub.iter),
                    fix=_sorted_wrap_fix(ctx, sub.iter),
                )
            elif isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                if sub in reduced and not isinstance(sub, (ast.ListComp, ast.DictComp)):
                    continue
                for gen in sub.generators:
                    if is_set(gen.iter):
                        yield _finding(
                            ctx, gen.iter, "RPR006", _set_iter_msg(gen.iter),
                            fix=_sorted_wrap_fix(ctx, gen.iter),
                        )
            elif isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                if name in _ORDERED_CONSUMERS and sub.args and is_set(sub.args[0]):
                    if name == "list":
                        # list(s) -> sorted(s): same list out, stable order.
                        arg_seg = _segment(ctx, sub.args[0])
                        fix = (
                            (sub.lineno, sub.col_offset, sub.end_lineno,
                             sub.end_col_offset, f"sorted({arg_seg})")
                            if arg_seg is not None and sub.end_lineno is not None
                            else None
                        )
                    else:
                        fix = _sorted_wrap_fix(ctx, sub.args[0])
                    yield _finding(ctx, sub, "RPR006", _set_iter_msg(sub.args[0]), fix=fix)


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk *scope* without descending into nested function/class scopes."""
    # Functions directly in scope.body must be filtered here too — they get
    # their own scope pass, and descending into them from the enclosing
    # scope would report every finding in their bodies twice.
    stack = [
        n
        for n in scope.body
        if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
    ]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _set_iter_msg(expr: ast.AST) -> str:
    name = _dotted(expr)
    what = f"`{name}`" if name else "a set expression"
    return f"unsorted iteration over set {what}"


def _segment(ctx: FileContext, node: ast.AST) -> Optional[str]:
    try:
        return ast.get_source_segment(ctx.source, node)
    except Exception:
        return None


def _sorted_wrap_fix(
    ctx: FileContext, expr: ast.AST
) -> Optional[Tuple[int, int, int, int, str]]:
    """Autofix span wrapping *expr* in ``sorted(...)``."""
    seg = _segment(ctx, expr)
    if seg is None or getattr(expr, "end_lineno", None) is None:
        return None
    return (expr.lineno, expr.col_offset, expr.end_lineno, expr.end_col_offset,
            f"sorted({seg})")


# ---------------------------------------------------------------------------
# RPR007 — bare print() in library code
# ---------------------------------------------------------------------------

#: basenames that ARE user-facing terminals: CLI entry points may print.
_PRINT_EXEMPT_BASENAMES = ("cli.py", "__main__.py")
#: directories whose whole purpose is terminal output.
_PRINT_EXEMPT_DIRS = ("experiments",)


def _print_rule_applies(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    # Library scope only: src/repro/** (tests and benchmarks may print).
    try:
        i = parts.index("repro")
    except ValueError:
        return False
    if i == 0 or parts[i - 1] != "src":
        return False
    inside = parts[i + 1 :]
    if not inside:
        return False
    if any(d in inside[:-1] for d in _PRINT_EXEMPT_DIRS):
        return False
    return inside[-1] not in _PRINT_EXEMPT_BASENAMES


def _check_bare_print(ctx: FileContext) -> Iterator[Finding]:
    if not _print_rule_applies(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield _finding(
                ctx,
                node,
                "RPR007",
                "bare `print()` in library code bypasses the event/log layer",
            )


# ---------------------------------------------------------------------------
# RPR008 — O(n) copies / relists inside a # hot-path function
# ---------------------------------------------------------------------------

#: marker comment declaring a function performance-critical. Place it on
#: the ``def`` line or on its own comment line directly above the ``def``.
_HOT_MARKER = "# hot-path"
#: decorators that make a function an introspection accessor, exempt from
#: the implicit sim-kernel hot classification.
_ACCESSOR_DECORATORS = ("property", "cached_property")


def _sim_kernel_rule_applies(path: str) -> bool:
    """Is *path* inside the simulation kernel (``src/repro/sim/**``)?"""
    parts = path.replace("\\", "/").split("/")
    try:
        i = parts.index("sim")
    except ValueError:
        return False
    return i >= 2 and parts[i - 1] == "repro" and parts[i - 2] == "src"


def _is_accessor(fn: ast.AST) -> bool:
    for dec in getattr(fn, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _dotted(target)
        if name is not None and name.split(".")[-1] in _ACCESSOR_DECORATORS:
            return True
    return False


def _hot_functions(ctx: FileContext) -> Iterator[ast.AST]:
    lines = ctx.source.splitlines()
    # Kernel files: every function is hot unless it is a dunder
    # (construction, repr) or a @property accessor — those run outside
    # the per-event dispatch loop.
    sim_kernel = _sim_kernel_rule_applies(ctx.path)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if sim_kernel:
            if not (
                (node.name.startswith("__") and node.name.endswith("__"))
                or _is_accessor(node)
            ):
                yield node
                continue
        def_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
        above = lines[node.lineno - 2].strip() if node.lineno >= 2 else ""
        if _HOT_MARKER in def_line or (
            above.startswith("#") and _HOT_MARKER in above
        ):
            yield node


def _check_hot_path_copies(ctx: FileContext) -> Iterator[Finding]:
    fixit = _FIX_SIM_BUCKET if _sim_kernel_rule_applies(ctx.path) else None
    seen: Set[int] = set()  # nested hot functions: report each call once
    for fn in _hot_functions(ctx):
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call) or id(node) in seen:
                continue
            seen.add(id(node))
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("sorted", "list"):
                yield _finding(
                    ctx,
                    node,
                    "RPR008",
                    f"`{func.id}()` copy inside hot-path function `{fn.name}`",
                    fixit=fixit,
                )
            elif isinstance(func, ast.Attribute) and func.attr == "list":
                target = _dotted(func.value)
                what = f"`{target}.list()`" if target else "`.list()`"
                yield _finding(
                    ctx,
                    node,
                    "RPR008",
                    f"full {what} relist inside hot-path function `{fn.name}`",
                    fixit=fixit,
                )


# ---------------------------------------------------------------------------
# RPR009 — unguarded api.delete / eviction calls
# ---------------------------------------------------------------------------

#: attribute names that remove an object and raise NotFound when it is
#: already gone. ``try_delete`` is the tolerant sibling and is exempt.
_REVOKE_ATTRS = ("delete", "evict")


def _handles_notfound(fn: ast.AST) -> bool:
    for sub in ast.walk(fn):
        if isinstance(sub, ast.ExceptHandler) and sub.type is not None:
            types = (
                sub.type.elts if isinstance(sub.type, ast.Tuple) else [sub.type]
            )
            for t in types:
                name = _dotted(t) or ""
                if "NotFound" in name or "Conflict" in name:
                    return True
    return False


def _revoke_rule_applies(path: str) -> bool:
    # Library scope only: src/repro/**. Tests and benchmarks delete under
    # single-writer control, where NotFound really is an error worth raising.
    parts = path.replace("\\", "/").split("/")
    try:
        i = parts.index("repro")
    except ValueError:
        return False
    return i > 0 and parts[i - 1] == "src"


def _check_unguarded_delete(ctx: FileContext) -> Iterator[Finding]:
    if not _revoke_rule_applies(ctx.path):
        return
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if _handles_notfound(fn):
            continue
        for sub in ast.walk(fn):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            if sub.func.attr not in _REVOKE_ATTRS:
                continue
            receiver = _dotted(sub.func.value)
            if receiver is None or "api" not in _segments(receiver):
                continue
            fix = None
            if sub.func.attr == "delete" and getattr(sub.func, "end_lineno", None):
                # mechanical helper substitution: delete -> try_delete
                # (same signature, NotFound-tolerant).
                fix = (
                    sub.func.lineno, sub.func.col_offset,
                    sub.func.end_lineno, sub.func.end_col_offset,
                    f"{receiver}.try_delete",
                )
            yield _finding(
                ctx,
                sub,
                "RPR009",
                f"`{receiver}.{sub.func.attr}(...)` with no NotFound/Conflict "
                "handling in scope",
                fix=fix,
            )


# ---------------------------------------------------------------------------
# RPR010 — federation writes that bypass the fence / retry wrappers
# ---------------------------------------------------------------------------

#: mutating verbs on an apiserver or kubeshare client handle. ``list`` /
#: ``get`` reads are allowed (the health prober and summarizer read
#: directly); writes must go through the sanctioned wrappers.
_FEDERATION_WRITE_ATTRS = (
    "create",
    "update",
    "patch",
    "delete",
    "try_delete",
    "submit",
)
#: modules that ARE the sanctioned wrappers: rpc.py implements the fenced
#: and retried calls, records.py implements GlobalRegistry's CAS.
_FEDERATION_EXEMPT_BASENAMES = ("rpc.py", "records.py")


def _federation_rule_applies(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    try:
        i = parts.index("federation")
    except ValueError:
        return False
    if i == 0 or parts[i - 1] != "repro":
        return False
    return parts[-1] not in _FEDERATION_EXEMPT_BASENAMES


def _check_federation_writes(ctx: FileContext) -> Iterator[Finding]:
    if not _federation_rule_applies(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in _FEDERATION_WRITE_ATTRS:
            continue
        receiver = _dotted(node.func.value)
        if receiver is None:
            continue
        segments = _segments(receiver)
        if "api" not in segments and "kubeshare" not in segments:
            continue
        yield _finding(
            ctx,
            node,
            "RPR010",
            f"direct `{receiver}.{node.func.attr}(...)` bypasses the "
            "generation fence and retry layer",
        )


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def _finding(
    ctx: FileContext,
    node: ast.AST,
    rule_id: str,
    message: str,
    fix: Optional[Tuple[int, int, int, int, str]] = None,
    fixit: Optional[str] = None,
) -> Finding:
    info = _RULE_BY_ID[rule_id]
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        message=message,
        fixit=fixit if fixit is not None else info.fixit,
        fix=fix,
    )


def run_rules(ctx: FileContext, project: ProjectContext) -> List[Finding]:
    """All findings for one file (noqa filtering happens in the linter)."""
    findings: List[Finding] = []
    findings.extend(_check_wall_clock(ctx))
    findings.extend(_check_rng(ctx))
    findings.extend(_check_module_state(ctx))
    findings.extend(_check_lost_update(ctx))
    findings.extend(_check_fenced_factories(ctx))
    findings.extend(_check_set_iteration(ctx, project))
    findings.extend(_check_bare_print(ctx))
    findings.extend(_check_hot_path_copies(ctx))
    findings.extend(_check_unguarded_delete(ctx))
    findings.extend(_check_federation_writes(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings

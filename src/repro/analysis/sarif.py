"""SARIF 2.1.0 output for the RPR linter (GitHub code-scanning format).

One static schema subset, kept deliberately small: a single ``run`` with
the full rule catalogue in ``tool.driver.rules`` and one ``result`` per
finding, carrying a stable ``partialFingerprints`` entry (the same
fingerprint the baseline uses, so code scanning and the baseline agree
on finding identity across line shifts).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .baseline import fingerprints
from .rules import ALL_RULES, Finding

__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/kubeshare-repro"


def _rule_descriptor(rule) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": rule.title.title().replace(" ", "").replace("-", "")[:64] or rule.id,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": f"Fix: {rule.fixit}"},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Build the SARIF log object for *findings*."""
    rule_index = {rule.id: i for i, rule in enumerate(ALL_RULES)}
    results: List[Dict[str, Any]] = []
    for finding, fp in zip(findings, fingerprints(findings)):
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index.get(finding.rule_id, -1),
                "level": "error",
                "message": {"text": f"{finding.message} (fix: {finding.fixit})"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"reproLintFingerprint/v1": fp},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": "1.0.0",
                        "rules": [_rule_descriptor(r) for r in ALL_RULES],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True) + "\n"

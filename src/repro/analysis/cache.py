"""Content-hash keyed lint cache (``.repro-lint-cache``).

Two tiers, each keyed by the file's content hash so a re-run over an
unchanged tree never re-parses anything:

* **facts** — the serialized :class:`~repro.analysis.callgraph.FileFacts`
  record (function/class/factory summaries + set-attribute facts). Valid
  on content hash alone: facts are a pure function of one file.
* **findings** — the raw (pre-suppression) per-file findings from the
  file-local rules and RPR013. These additionally depend on the
  project-wide set-attribute table (RPR006 consults it), so each entry
  stores the set-attrs digest it was computed under; if another file's
  edit changes that table, findings are recomputed (from a fresh parse)
  while facts for unchanged files still come from the cache.

The whole-program passes (RPR011/012) always recompute from facts —
they are global by nature but cheap once parsing is amortized away.

``ENGINE_VERSION`` is part of the cache envelope; bump it whenever rule
or collector semantics change so stale caches self-invalidate.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .callgraph import FileFacts
from .rules import Finding

__all__ = ["ENGINE_VERSION", "LintCache", "DEFAULT_CACHE_PATH", "content_hash", "set_attrs_digest"]

ENGINE_VERSION = "rpr-engine-1"
DEFAULT_CACHE_PATH = ".repro-lint-cache"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def set_attrs_digest(set_attrs: Sequence[str]) -> str:
    return hashlib.sha1("\n".join(sorted(set_attrs)).encode("utf-8")).hexdigest()[:16]


def _finding_to_dict(f: Finding) -> Dict[str, Any]:
    return {
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "rule_id": f.rule_id,
        "message": f.message,
        "fixit": f.fixit,
        "fix": list(f.fix) if f.fix is not None else None,
    }


def _finding_from_dict(d: Dict[str, Any]) -> Finding:
    fix = d.get("fix")
    return Finding(
        path=d["path"],
        line=d["line"],
        col=d["col"],
        rule_id=d["rule_id"],
        message=d["message"],
        fixit=d["fixit"],
        fix=tuple(fix) if fix is not None else None,
    )


class LintCache:
    """Load/store per-file facts and findings keyed by content hash."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.enabled = path is not None
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if not self.enabled:
            return
        p = Path(path)
        if p.exists():
            try:
                data = json.loads(p.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if data.get("engine") == ENGINE_VERSION:
                self._entries = data.get("files", {})

    # -- facts ------------------------------------------------------------

    def get_facts(self, path: str, sha: str) -> Optional[FileFacts]:
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != sha or "facts" not in entry:
            return None
        try:
            facts = FileFacts.from_dict(entry["facts"])
        except (KeyError, TypeError):
            return None
        self.hits += 1
        return facts

    def put_facts(self, path: str, sha: str, facts: FileFacts) -> None:
        if not self.enabled:
            return
        entry = self._entries.get(path)
        if entry is None or entry.get("sha") != sha:
            entry = {"sha": sha}
            self._entries[path] = entry
        entry["facts"] = facts.to_dict()
        self._dirty = True
        self.misses += 1

    # -- findings ---------------------------------------------------------

    def get_findings(
        self, path: str, sha: str, attrs_digest: str
    ) -> Optional[List[Finding]]:
        entry = self._entries.get(path)
        if (
            entry is None
            or entry.get("sha") != sha
            or entry.get("attrs_digest") != attrs_digest
            or "findings" not in entry
        ):
            return None
        try:
            return [_finding_from_dict(d) for d in entry["findings"]]
        except (KeyError, TypeError):
            return None

    def put_findings(
        self, path: str, sha: str, attrs_digest: str, findings: Sequence[Finding]
    ) -> None:
        if not self.enabled:
            return
        entry = self._entries.setdefault(path, {"sha": sha})
        if entry.get("sha") != sha:
            entry.clear()
            entry["sha"] = sha
        entry["attrs_digest"] = attrs_digest
        entry["findings"] = [_finding_to_dict(f) for f in findings]
        self._dirty = True

    # -- persistence ------------------------------------------------------

    def prune(self, live_paths: Sequence[str]) -> None:
        """Drop entries for files no longer being linted."""
        live = set(live_paths)
        stale = [p for p in self._entries if p not in live]
        for p in stale:
            del self._entries[p]
            self._dirty = True

    def save(self) -> None:
        if not self.enabled or not self._dirty:
            return
        payload = {"engine": ENGINE_VERSION, "files": self._entries}
        try:
            Path(self.path).write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout must not break linting

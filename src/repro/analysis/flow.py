"""Interprocedural dataflow passes over the project call graph.

Three whole-program rules, built on :mod:`repro.analysis.callgraph`:

RPR011 **taint propagation** — a wall-clock or unseeded-RNG value that
    *escapes* its producer: a helper whose return value is (transitively)
    derived from ``time.time()``/``random.random()`` called from
    simulated code, or a tainted value passed as an argument into a
    simulated function. Subsumes the cross-function escapes RPR001/002
    cannot see (they flag only the direct source expression).

RPR012 **fence escape analysis** — an *unfenced* ``APIServer`` handle
    reaching a leader-controller write site. Where RPR005 pattern-matches
    the factory body, RPR012 follows the handle through aliasing,
    attribute storage (``self._api = api`` in ``__init__``) and
    constructor forwarding (``Controller(Helper(api))``) to any class
    that writes through it, and flags the factory-side constructor
    argument that let the handle in.

RPR013 **yield-point atomicity** — a read-modify-write on shared
    etcd/pool/registry/apiserver state that *spans* a ``yield`` inside a
    process function: the value read before the yield is stale by the
    time the write lands (another process ran in between). This is the
    static twin of the dynamic race detector (`repro.analysis.race`),
    which only sees interleavings a particular seed produces.

All three are under-approximate: an unresolvable call contributes no
edge, so they miss rather than invent (DESIGN.md §13 spells out the
soundness limits).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    ATOMICITY_EXEMPT_VERBS,
    FileFacts,
    ProjectIndex,
    SHARED_READ_VERBS,
    SHARED_WRITE_VERBS,
    _walk_function,
    shared_receiver,
)
from .rules import _RULE_BY_ID, FileContext, Finding, _dotted

__all__ = [
    "taint_map",
    "fence_sink_params",
    "project_findings",
    "check_yield_atomicity",
    "library_scope",
    "taint_sink_scope",
]


def _norm_parts(path: str) -> List[str]:
    return path.replace("\\", "/").split("/")


def library_scope(path: str) -> bool:
    """Library code the flow rules police: ``src/repro/**`` plus bare
    fixture paths (so the rule tests can drive single blobs). Tests and
    benchmarks are exempt — they run under single-writer control and
    measure host time on purpose."""
    parts = _norm_parts(path)
    if "tests" in parts or "benchmarks" in parts:
        return False
    if "repro" in parts:
        i = parts.index("repro")
        return i > 0 and parts[i - 1] == "src"
    return "src" not in parts


def taint_sink_scope(path: str) -> bool:
    """Where a wall-clock/RNG-tainted value counts as *escaping into
    simulated code*. Experiment drivers, the perf harness, and CLI entry
    points measure host time by design and are exempt."""
    if not library_scope(path):
        return False
    parts = _norm_parts(path)
    if "experiments" in parts or "perf" in parts:
        return False
    return parts[-1] not in ("cli.py", "__main__.py")


def _finding(
    path: str, line: int, col: int, rule_id: str, message: str,
    fix: Optional[Tuple[int, int, int, int, str]] = None,
) -> Finding:
    return Finding(
        path=path, line=line, col=col, rule_id=rule_id,
        message=message, fixit=_RULE_BY_ID[rule_id].fixit, fix=fix,
    )


# ---------------------------------------------------------------------------
# RPR011 — interprocedural taint
# ---------------------------------------------------------------------------


def taint_map(index: ProjectIndex) -> Dict[str, str]:
    """function qualname -> root source (``time.time``…) for every
    function whose return value is (transitively) clock/RNG-derived."""
    tainted: Dict[str, str] = {}
    for fn in index.functions.values():
        if fn.direct_taint is not None:
            tainted[fn.qualname] = fn.direct_taint
    changed = True
    while changed:
        changed = False
        for fn in index.functions.values():
            if fn.qualname in tainted:
                continue
            for ref in fn.return_callees:
                callee = index.resolve_function(ref)
                if callee is not None and callee.qualname in tainted:
                    tainted[fn.qualname] = tainted[callee.qualname]
                    changed = True
                    break
    return tainted


def _taint_findings(index: ProjectIndex) -> Iterator[Finding]:
    tainted = taint_map(index)
    for facts in index.files.values():
        caller_in_scope = taint_sink_scope(facts.path)
        for fn in facts.functions:
            for site in fn.call_sites:
                callee = index.resolve_function(site.callee)
                if callee is None or callee.qualname == fn.qualname:
                    continue
                if caller_in_scope and callee.qualname in tainted:
                    root = tainted[callee.qualname]
                    yield _finding(
                        facts.path, site.line, site.col, "RPR011",
                        f"`{site.display}()` returns a value tainted by "
                        f"`{root}` — wall-clock/RNG escapes into simulated code",
                    )
                    continue
                # argument flow: a tainted value produced *outside* sim
                # scope injected into a simulated function.
                if caller_in_scope:
                    continue  # direct sources inside scope are RPR001/002
                callee_path = index.func_paths.get(callee.qualname)
                if callee_path is None or not taint_sink_scope(callee_path):
                    continue
                arg_root: Optional[str] = site.arg_direct_taint
                if arg_root is None:
                    for ref in site.arg_callees:
                        arg_fn = index.resolve_function(ref)
                        if arg_fn is not None and arg_fn.qualname in tainted:
                            arg_root = tainted[arg_fn.qualname]
                            break
                if arg_root is not None:
                    yield _finding(
                        facts.path, site.line, site.col, "RPR011",
                        f"passes a `{arg_root}`-tainted argument into "
                        f"simulated `{site.display}()`",
                    )


# ---------------------------------------------------------------------------
# RPR012 — fence escape
# ---------------------------------------------------------------------------


def fence_sink_params(index: ProjectIndex) -> Dict[str, Set[str]]:
    """class qualname -> constructor params through which an apiserver
    write is (transitively) issued."""
    sinks: Dict[str, Set[str]] = {q: set() for q in index.classes}
    changed = True
    while changed:
        changed = False
        for cls in index.classes.values():
            cur = sinks[cls.qualname]
            stores = index.merged_stores(cls)
            write_attrs = index.merged_write_attrs(cls)
            for param, attrs in stores.items():
                if param not in cur and set(attrs) & write_attrs:
                    cur.add(param)
                    changed = True
            for fwd in cls.forwards:
                if fwd.param in cur:
                    continue
                target = index.resolve_class(fwd.class_ref)
                if target is None:
                    continue
                tparam = index.init_param_name(target, fwd.arg_index, fwd.kw)
                if tparam is not None and tparam in sinks.get(target.qualname, set()):
                    cur.add(fwd.param)
                    changed = True
    return sinks


def _fence_findings(index: ProjectIndex) -> Iterator[Finding]:
    sinks = fence_sink_params(index)
    for facts in index.files.values():
        if not library_scope(facts.path):
            continue
        for factory in facts.factories:
            for arg in factory.ctor_args:
                if arg.fenced or not arg.apiish:
                    continue
                cls = index.resolve_class(arg.class_ref)
                if cls is None:
                    continue
                param = index.init_param_name(cls, arg.arg_index, arg.kw)
                if param is None:
                    continue
                if arg.inner_class_ref is not None:
                    # Controller(Helper(api)): flag when Helper stores the
                    # handle and Controller writes through that slot.
                    inner = index.resolve_class(arg.inner_class_ref)
                    if inner is None or not inner.stores:
                        continue
                    stored = set(index.merged_stores(cls).get(param, []))
                    if stored & index.merged_write_attrs(cls):
                        yield _finding(
                            facts.path, arg.line, arg.col, "RPR012",
                            f"unfenced apiserver handle laundered through "
                            f"`{arg.expr}` reaches a write site in "
                            f"`{cls.name}`",
                        )
                    continue
                if param in sinks.get(cls.qualname, set()):
                    yield _finding(
                        facts.path, arg.line, arg.col, "RPR012",
                        f"unfenced apiserver handle `{arg.expr}` reaches a "
                        f"write site through `{cls.name}({param}=...)`",
                    )


def project_findings(index: ProjectIndex) -> List[Finding]:
    """All whole-program findings (RPR011 + RPR012), sorted."""
    findings = list(_taint_findings(index))
    findings.extend(_fence_findings(index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


# ---------------------------------------------------------------------------
# RPR013 — yield-point atomicity (per-file, call-graph assisted)
# ---------------------------------------------------------------------------

#: abstract state per shared receiver: FRESH = read since the last yield
#: on this path; STALE = a yield intervened since the read.
_FRESH, _STALE = "fresh", "stale"


def _handles_conflict(fn: ast.AST) -> bool:
    for sub in _walk_function(fn, into_body=True):
        if isinstance(sub, ast.ExceptHandler) and sub.type is not None:
            types = sub.type.elts if isinstance(sub.type, ast.Tuple) else [sub.type]
            for t in types:
                name = _dotted(t) or ""
                if "Conflict" in name or "CasFailure" in name:
                    return True
    return False


def _iter_functions(tree: ast.Module) -> Iterator[Tuple[ast.AST, Optional[str]]]:
    """(function node, enclosing class name) for module-level functions
    and class methods (nested defs are skipped, matching the collector)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for meth in node.body:
                if isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield meth, node.name


def check_yield_atomicity(ctx: FileContext, facts: FileFacts) -> Iterator[Finding]:
    """RPR013: flag read-modify-writes on shared state spanning a yield."""
    if not library_scope(ctx.path):
        return
    class_facts = {c.name: c for c in facts.classes}
    for fn, cls_name in _iter_functions(ctx.tree):
        has_yield = any(
            isinstance(n, (ast.Yield, ast.YieldFrom))
            for n in _walk_function(fn, into_body=True)
        )
        if not has_yield or _handles_conflict(fn):
            continue
        cfacts = class_facts.get(cls_name) if cls_name else None
        interp = _AtomicityInterp(fn, cfacts)
        interp.exec_block(fn.body, {})
        for node, key in interp.reported:
            yield _finding(
                ctx.path,
                getattr(node, "lineno", fn.lineno),
                getattr(node, "col_offset", 0) + 1,
                "RPR013",
                f"read-modify-write on shared `{key}` spans a yield "
                f"point in `{fn.name}` — the value read before the "
                "yield is stale by the time this writes",
            )


class _AtomicityInterp:
    """Path-sensitive walk of one generator function.

    Branch arms are explored independently (a read in the `then` arm
    never pairs with a write in the `else` arm), ``return`` kills its
    path, and loop bodies run twice so a loop-carried stale read (read →
    yield at the bottom → write at the top of the next iteration) is
    caught. ``yield from self._helper(...)`` contributes its yield but
    not the helper's read/write summary — the helper is a generator
    analyzed on its own.
    """

    def __init__(self, fn: ast.AST, cfacts) -> None:
        self.cfacts = cfacts
        self._seen: set = set()  # (id(node), key) — dedupe across loop passes
        self.reported: List[Tuple[ast.AST, str]] = []
        #: call nodes that are the direct operand of a ``yield from``.
        self._delegated = {
            id(n.value)
            for n in _walk_function(fn, into_body=True)
            if isinstance(n, ast.YieldFrom) and isinstance(n.value, ast.Call)
        }

    # -- events -----------------------------------------------------------

    def _expr_events(self, expr: ast.AST) -> List[Tuple[int, int, str, Optional[str], ast.AST]]:
        events: List[Tuple[int, int, str, Optional[str], ast.AST]] = []
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            pos = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                events.append((*pos, "yield", None, node))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = _dotted(node.func.value)
                verb = node.func.attr
                if receiver == "self" and self.cfacts is not None:
                    if id(node) in self._delegated:
                        continue  # the delegated generator reports itself
                    for key in self.cfacts.method_shared_reads.get(verb, []):
                        events.append((*pos, "read", key, node))
                    for key in self.cfacts.method_shared_writes.get(verb, []):
                        events.append((*pos, "write", key, node))
                    continue
                key = shared_receiver(receiver)
                if key is None or verb in ATOMICITY_EXEMPT_VERBS:
                    continue
                if verb in SHARED_READ_VERBS:
                    events.append((*pos, "read", key, node))
                elif verb in SHARED_WRITE_VERBS:
                    events.append((*pos, "write", key, node))
            elif isinstance(node, ast.Subscript):
                key = shared_receiver(_dotted(node.value))
                if key is None:
                    continue
                if isinstance(node.ctx, ast.Load):
                    events.append((*pos, "read", key, node))
                elif isinstance(node.ctx, ast.Store):
                    events.append((*pos, "write", key, node))
        events.sort(key=lambda e: (e[0], e[1]))
        return events

    def _apply(self, events, state: Dict[str, str]) -> None:
        for _, _, kind, key, node in events:
            if kind == "yield":
                for k, v in state.items():
                    if v == _FRESH:
                        state[k] = _STALE
            elif kind == "read":
                state[key] = _FRESH
            elif kind == "write":
                if state.get(key) == _STALE:
                    mark = (id(node), key)
                    if mark not in self._seen:
                        self._seen.add(mark)
                        self.reported.append((node, key))
                # A write consumes the pending read: a later write is only
                # a read-modify-write if it does its own read first (blind
                # writes such as `create` never arm the staleness trigger).
                state.pop(key, None)

    # -- statements -------------------------------------------------------

    def exec_block(
        self, stmts: Sequence[ast.stmt], state: Dict[str, str]
    ) -> Optional[Dict[str, str]]:
        """Run *stmts* over *state*; ``None`` means the path left the block."""
        for stmt in stmts:
            state = self._exec_stmt(stmt, state)
            if state is None:
                return None
        return state

    def _exec_stmt(self, stmt: ast.stmt, state: Dict[str, str]) -> Optional[Dict[str, str]]:
        header = _stmt_header_exprs(stmt)
        for expr in header:
            self._apply(self._expr_events(expr), state)
        if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
            return None
        if isinstance(stmt, ast.If):
            s1 = self.exec_block(stmt.body, dict(state))
            s2 = self.exec_block(stmt.orelse, dict(state))
            return _merge(s1, s2)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            s: Optional[Dict[str, str]] = dict(state)
            for _ in range(2):  # second pass exposes loop-carried staleness
                if s is None:
                    break
                s = self.exec_block(stmt.body, dict(s))
            merged = _merge(dict(state), s)  # the loop may run zero times
            if stmt.orelse:
                merged = self.exec_block(stmt.orelse, merged or dict(state))
            return merged if merged is not None else dict(state)
        if isinstance(stmt, ast.Try):
            body_out = self.exec_block(stmt.body, dict(state))
            outs = [body_out]
            for handler in stmt.handlers:
                outs.append(self.exec_block(handler.body, dict(state)))
            merged: Optional[Dict[str, str]] = None
            for out in outs:
                merged = _merge(merged, out)
            if stmt.finalbody:
                merged = self.exec_block(stmt.finalbody, merged or dict(state))
            return merged
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.exec_block(stmt.body, state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested scopes are analyzed on their own
        return state


def _stmt_header_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """Expressions evaluated by *stmt* itself (not its nested blocks)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return [stmt]


def _merge(
    s1: Optional[Dict[str, str]], s2: Optional[Dict[str, str]]
) -> Optional[Dict[str, str]]:
    """Join two branch out-states (``None`` = the path did not fall through)."""
    if s1 is None:
        return s2
    if s2 is None:
        return s1
    out: Dict[str, str] = {}
    for key in sorted(set(s1) | set(s2)):
        a, b = s1.get(key), s2.get(key)
        out[key] = _STALE if _STALE in (a, b) else _FRESH
    return out

"""Sim-aware linter driver: ``python -m repro.analysis.lint src tests benchmarks``.

Walks the given files/directories, parses every ``.py`` file once (or
pulls its facts from the content-hash cache), runs the file-local RPR
rules (:mod:`repro.analysis.rules`), the per-file yield-atomicity pass,
and the whole-program dataflow passes (:mod:`repro.analysis.flow` over
:mod:`repro.analysis.callgraph`), and prints one line per finding::

    src/repro/core/devmgr.py:185:29: RPR006 unsorted iteration over set
    `vgpu.attached` (fix: iterate sorted(...): ...)

Exit status is 1 if any unsuppressed finding remains, else 0.

Suppressions are inline, flake8-style, and must name the rule::

    t0 = time.perf_counter()  # noqa: RPR001 - measuring host wall time (Fig 11)

A bare ``# noqa`` (no codes) also suppresses, but the reviewed style is
to name the rule and justify the exception; foreign codes
(``# noqa: BLE001``) do **not** suppress RPR findings. Suppression
comments are found with :mod:`tokenize`, so a ``# noqa`` *inside a
string literal* (lint-rule fixture strings, docstrings) is inert.

Files whose *purpose* is to violate a rule (tests of raw etcd CAS
semantics, conflict-retry tests) can disable named rules file-wide::

    # repro-lint: disable=RPR004 - this file tests raw put/CAS semantics

Production modes::

    --format sarif            SARIF 2.1.0 for GitHub code scanning
    --baseline FILE           fail only on findings not in the baseline
    --write-baseline FILE     accept the current findings as the baseline
    --changed-since REF       report only files changed since a git ref
    --fix                     apply the mechanical fix-its in place
    --check-suppressions      report stale `# noqa: RPRxxx` comments
    --no-cache                bypass the .repro-lint-cache content cache
"""

from __future__ import annotations

# repro-lint: disable=RPR007 - this module IS the lint CLI; findings go to stdout

import argparse
import ast
import io
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import baseline as baseline_mod
from . import flow
from .cache import DEFAULT_CACHE_PATH, LintCache, content_hash, set_attrs_digest
from .callgraph import FileFacts, ProjectIndex, collect_file_facts
from .fixes import apply_fixes
from .rules import ALL_RULES, FileContext, Finding, ProjectContext, run_rules
from .sarif import render_sarif

__all__ = [
    "lint_paths",
    "lint_source",
    "run_analysis",
    "AnalysisResult",
    "stale_suppressions",
    "main",
]

_CODE_RE = re.compile(r"[A-Z]+[0-9]+")
_NOQA_RE = re.compile(r"#\s*noqa(?P<codes>:[^#]*)?", re.IGNORECASE)
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9, ]+)")


def _comment_tokens(source: str) -> Iterable[Tuple[int, str]]:
    """(line, text) for every real COMMENT token in *source*.

    Tokenizing (rather than regex-scanning raw lines) is what keeps a
    ``# noqa`` inside a string literal — lint-rule fixture snippets,
    docstrings quoting suppression syntax — from suppressing findings on
    that line.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to treating nothing as a comment: the file failed to
        # tokenize, and it will already be reported as a parse error.
        return


def _noqa_map(source: str) -> Dict[int, Set[str]]:
    """line -> set of suppressed codes; the empty set means 'all codes'."""
    out: Dict[int, Set[str]] = {}
    for lineno, comment in _comment_tokens(source):
        m = _NOQA_RE.search(comment)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = set()  # bare noqa: suppress everything
        else:
            out[lineno] = set(_CODE_RE.findall(codes))
    return out


def _file_pragma(source: str) -> Set[str]:
    """Codes disabled file-wide via ``# repro-lint: disable=...``."""
    out: Set[str] = set()
    for _, comment in _comment_tokens(source):
        m = _PRAGMA_RE.search(comment)
        if m is not None:
            out.update(_CODE_RE.findall(m.group("codes")))
    return out


def _suppressed(
    finding: Finding, noqa: Dict[int, Set[str]], file_wide: Set[str]
) -> bool:
    if finding.rule_id in file_wide:
        return True
    codes = noqa.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.rule_id in codes


def _iter_py_files(paths: Sequence[str]) -> Iterable[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield file


class AnalysisResult:
    """Everything one analysis run produced."""

    def __init__(self) -> None:
        #: unsuppressed findings, sorted (what the CLI reports).
        self.findings: List[Finding] = []
        #: every finding before noqa/pragma filtering (stale-suppression
        #: detection and ``--write-baseline`` work on these).
        self.raw_findings: List[Finding] = []
        self.errors: List[str] = []
        self.sources: Dict[str, str] = {}
        self.index: ProjectIndex = ProjectIndex()
        self.cache_hits = 0
        self.cache_misses = 0


def _collect_one(
    path: Path,
    source: str,
    sha: str,
    cache: LintCache,
) -> Tuple[Optional[FileFacts], Optional[FileContext], Optional[str]]:
    """Facts (+ parsed context when a parse happened) for one file."""
    facts = cache.get_facts(str(path), sha)
    if facts is not None:
        return facts, None, None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as err:
        return None, None, f"{path}: {err}"
    ctx = FileContext(str(path), source, tree)
    facts = collect_file_facts(ctx)
    cache.put_facts(str(path), sha, facts)
    return facts, ctx, None


def run_analysis(
    paths: Sequence[str], cache: Optional[LintCache] = None
) -> AnalysisResult:
    """Analyze every ``.py`` file under *paths* (all passes)."""
    cache = cache if cache is not None else LintCache(None)
    result = AnalysisResult()

    records: List[Tuple[Path, str, str, FileFacts, Optional[FileContext]]] = []
    for file in _iter_py_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as err:
            result.errors.append(f"{file}: {err}")
            continue
        sha = content_hash(source)
        facts, ctx, error = _collect_one(file, source, sha, cache)
        if error is not None:
            result.errors.append(error)
            continue
        result.sources[str(file)] = source
        records.append((file, source, sha, facts, ctx))
        result.index.add(facts)

    # project-wide set-attribute table (feeds RPR006) from facts, so
    # cached files contribute without a re-parse.
    project = ProjectContext()
    for _, _, _, facts, _ in records:
        project.set_attrs.update(facts.set_attrs)
    attrs_digest = set_attrs_digest(sorted(project.set_attrs))

    raw: List[Finding] = []
    for file, source, sha, facts, ctx in records:
        cached = cache.get_findings(str(file), sha, attrs_digest)
        if cached is not None:
            raw.extend(cached)
            result.cache_hits += 1
            continue
        result.cache_misses += 1
        if ctx is None:  # facts came from cache but findings did not
            try:
                tree = ast.parse(source, filename=str(file))
            except SyntaxError as err:  # pragma: no cover - caught above
                result.errors.append(f"{file}: {err}")
                continue
            ctx = FileContext(str(file), source, tree)
        file_findings = run_rules(ctx, project)
        file_findings.extend(flow.check_yield_atomicity(ctx, facts))
        file_findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
        cache.put_findings(str(file), sha, attrs_digest, file_findings)
        raw.extend(file_findings)

    # whole-program passes: always recomputed, purely over facts.
    raw.extend(flow.project_findings(result.index))
    raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    result.raw_findings = raw

    noqa_by_path: Dict[str, Dict[int, Set[str]]] = {}
    pragma_by_path: Dict[str, Set[str]] = {}
    for f in raw:
        if f.path not in noqa_by_path:
            source = result.sources.get(f.path, "")
            noqa_by_path[f.path] = _noqa_map(source)
            pragma_by_path[f.path] = _file_pragma(source)
        if not _suppressed(f, noqa_by_path[f.path], pragma_by_path[f.path]):
            result.findings.append(f)

    cache.prune([str(file) for file, *_ in records])
    cache.save()
    return result


def lint_source(
    source: str, path: str = "<string>", project: ProjectContext | None = None
) -> List[Finding]:
    """Lint one source blob (the unit the fixture tests drive).

    Runs every pass, including the whole-program ones, over a
    single-file project — helpers and callers in the same blob resolve
    against each other.
    """
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    facts = collect_file_facts(ctx)
    if project is None:
        project = ProjectContext()
        project.collect(ctx)
    findings = run_rules(ctx, project)
    findings.extend(flow.check_yield_atomicity(ctx, facts))
    index = ProjectIndex()
    index.add(facts)
    findings.extend(flow.project_findings(index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    noqa = _noqa_map(source)
    file_wide = _file_pragma(source)
    return [f for f in findings if not _suppressed(f, noqa, file_wide)]


def lint_paths(paths: Sequence[str]) -> Tuple[List[Finding], List[str]]:
    """Lint every ``.py`` file under *paths* (no cache).

    Returns ``(findings, errors)`` where *errors* are files that failed
    to parse (reported, and counted as failures).
    """
    result = run_analysis(paths, LintCache(None))
    return result.findings, result.errors


# ---------------------------------------------------------------------------
# stale suppressions
# ---------------------------------------------------------------------------


def stale_suppressions(result: AnalysisResult) -> List[Tuple[str, int, str]]:
    """``(path, line, code)`` for every named RPR suppression that no
    longer suppresses anything: a ``# noqa: RPRxxx`` on a line with no
    RPRxxx finding, or a file-wide pragma code with no finding of that
    code anywhere in the file. Bare ``# noqa`` comments and foreign
    codes are not judged."""
    by_path_line: Dict[Tuple[str, int], Set[str]] = {}
    by_path: Dict[str, Set[str]] = {}
    for f in result.raw_findings:
        by_path_line.setdefault((f.path, f.line), set()).add(f.rule_id)
        by_path.setdefault(f.path, set()).add(f.rule_id)

    rpr_ids = {r.id for r in ALL_RULES}
    stale: List[Tuple[str, int, str]] = []
    for path, source in sorted(result.sources.items()):
        for lineno, comment in _comment_tokens(source):
            m = _NOQA_RE.search(comment)
            if m is not None and m.group("codes"):
                for code in _CODE_RE.findall(m.group("codes")):
                    if code not in rpr_ids:
                        continue
                    if code not in by_path_line.get((path, lineno), set()):
                        stale.append((path, lineno, code))
            m = _PRAGMA_RE.search(comment)
            if m is not None:
                for code in _CODE_RE.findall(m.group("codes")):
                    if code in rpr_ids and code not in by_path.get(path, set()):
                        stale.append((path, lineno, code))
    return stale


# ---------------------------------------------------------------------------
# --explain-rules (docs/rules.md generator)
# ---------------------------------------------------------------------------


def explain_rules() -> str:
    out = [
        "# RPR rule catalogue",
        "",
        "<!-- Generated by `python -m repro.analysis.lint --explain-rules` —",
        "     do not edit by hand. -->",
        "",
        "Sim-aware static analysis rules enforced over `src/`, `tests/`, and",
        "`benchmarks/`. File-local rules (RPR001–010) see one AST at a time;",
        "RPR011–013 are whole-program dataflow passes over the project call",
        "graph (DESIGN.md §13). Suppress a finding inline with",
        "`# noqa: RPRxxx - justification`, or file-wide with",
        "`# repro-lint: disable=RPRxxx - justification`.",
        "",
    ]
    for rule in ALL_RULES:
        out.append(f"## {rule.id} — {rule.title}")
        out.append("")
        out.append(f"**Why.** {rule.rationale}")
        out.append("")
        out.append(f"**Fix.** {rule.fixit}")
        out.append("")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Sim-aware static analysis (RPR rule catalogue).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--explain-rules",
        action="store_true",
        help="print the rule catalogue as markdown (docs/rules.md) and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        help="output format (sarif = SARIF 2.1.0 for code scanning)",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="accept the current findings: write them as the new baseline and exit",
    )
    parser.add_argument(
        "--changed-since",
        metavar="REF",
        help="diff-aware mode: only report findings in files changed since REF",
    )
    parser.add_argument(
        "--fix", action="store_true", help="apply mechanical fix-its in place"
    )
    parser.add_argument(
        "--check-suppressions",
        action="store_true",
        help="report stale `# noqa: RPRxxx` / pragma suppressions and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the lint result cache"
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=DEFAULT_CACHE_PATH,
        help=f"cache file location (default: {DEFAULT_CACHE_PATH})",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"        why: {rule.rationale}")
            print(f"        fix: {rule.fixit}")
        return 0
    if args.explain_rules:
        print(explain_rules())
        return 0

    cache = LintCache(None if args.no_cache else args.cache)
    result = run_analysis(args.paths, cache)

    if args.check_suppressions:
        stale = stale_suppressions(result)
        for path, line, code in stale:
            print(f"{path}:{line}: stale suppression for {code} (no such finding)")
        if stale:
            print(f"\n{len(stale)} stale suppression(s)")
            return 1
        return 0

    if args.fix:
        changed = apply_fixes(result.findings)
        for path, n in sorted(changed.items()):
            print(f"fixed: {path} ({n} edit(s))")
        if changed:
            # re-analyze so the report reflects the rewritten tree
            result = run_analysis(args.paths, cache)

    if args.write_baseline:
        baseline_mod.write_baseline(args.write_baseline, result.findings)
        print(f"baseline: wrote {len(result.findings)} finding(s) to {args.write_baseline}")
        return 0

    findings = result.findings
    if args.baseline:
        accepted = baseline_mod.load_baseline(args.baseline)
        findings = baseline_mod.filter_baseline(findings, accepted)

    if args.changed_since:
        changed_set = baseline_mod.changed_files(args.changed_since)
        if changed_set is None:
            print(
                f"warning: `git diff {args.changed_since}` failed; "
                "reporting the full tree",
                file=sys.stderr,
            )
        else:
            findings = baseline_mod.restrict_to_changed(findings, changed_set)

    for error in result.errors:
        print(f"error: {error}", file=sys.stderr)

    if args.format == "sarif":
        report = render_sarif(findings)
    else:
        lines = [f.render() for f in findings]
        if findings or result.errors:
            lines.append("")
            lines.append(
                f"{len(findings)} finding(s), {len(result.errors)} parse error(s)"
            )
        report = "\n".join(lines) + ("\n" if lines else "")

    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    elif report:
        sys.stdout.write(report)

    return 1 if (findings or result.errors) else 0


if __name__ == "__main__":
    sys.exit(main())

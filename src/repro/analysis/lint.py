"""Sim-aware linter driver: ``python -m repro.analysis.lint src tests benchmarks``.

Walks the given files/directories, parses every ``.py`` file once, runs
the RPR rule catalogue (:mod:`repro.analysis.rules`) in two passes —
pass 1 collects cross-file facts (set-typed attributes), pass 2 checks —
and prints one line per finding::

    src/repro/core/devmgr.py:185:29: RPR006 unsorted iteration over set
    `vgpu.attached` (fix: iterate sorted(...): ...)

Exit status is 1 if any unsuppressed finding remains, else 0.

Suppressions are inline, flake8-style, and must name the rule::

    t0 = time.perf_counter()  # noqa: RPR001 - measuring host wall time (Fig 11)

A bare ``# noqa`` (no codes) also suppresses, but the reviewed style is
to name the rule and justify the exception; foreign codes
(``# noqa: BLE001``) do **not** suppress RPR findings.

Files whose *purpose* is to violate a rule (tests of raw etcd CAS
semantics, conflict-retry tests) can disable named rules file-wide::

    # repro-lint: disable=RPR004 - this file tests raw put/CAS semantics
"""

from __future__ import annotations

# repro-lint: disable=RPR007 - this module IS the lint CLI; findings go to stdout

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .rules import ALL_RULES, FileContext, Finding, ProjectContext, run_rules

__all__ = ["lint_paths", "lint_source", "main"]

_NOQA_RE = re.compile(r"#\s*noqa(?P<codes>:[^#]*)?", re.IGNORECASE)
_CODE_RE = re.compile(r"[A-Z]+[0-9]+")
_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z0-9, ]+)")


def _noqa_map(source: str) -> Dict[int, Set[str]]:
    """line -> set of suppressed codes; the empty set means 'all codes'."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = set()  # bare noqa: suppress everything
        else:
            out[lineno] = set(_CODE_RE.findall(codes))
    return out


def _file_pragma(source: str) -> Set[str]:
    """Codes disabled file-wide via ``# repro-lint: disable=...``."""
    out: Set[str] = set()
    for m in _PRAGMA_RE.finditer(source):
        out.update(_CODE_RE.findall(m.group("codes")))
    return out


def _suppressed(
    finding: Finding, noqa: Dict[int, Set[str]], file_wide: Set[str]
) -> bool:
    if finding.rule_id in file_wide:
        return True
    codes = noqa.get(finding.line)
    if codes is None:
        return False
    return not codes or finding.rule_id in codes


def _iter_py_files(paths: Sequence[str]) -> Iterable[Path]:
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            resolved = file.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield file


def lint_source(
    source: str, path: str = "<string>", project: ProjectContext | None = None
) -> List[Finding]:
    """Lint one source blob (the unit the fixture tests drive)."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path, source, tree)
    if project is None:
        project = ProjectContext()
        project.collect(ctx)
    findings = run_rules(ctx, project)
    noqa = _noqa_map(source)
    file_wide = _file_pragma(source)
    return [f for f in findings if not _suppressed(f, noqa, file_wide)]


def lint_paths(paths: Sequence[str]) -> Tuple[List[Finding], List[str]]:
    """Lint every ``.py`` file under *paths*.

    Returns ``(findings, errors)`` where *errors* are files that failed
    to parse (reported, and counted as failures).
    """
    files: List[Tuple[Path, str, ast.Module]] = []
    errors: List[str] = []
    for file in _iter_py_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError) as err:
            errors.append(f"{file}: {err}")
            continue
        files.append((file, source, tree))

    project = ProjectContext()
    contexts = [FileContext(str(file), source, tree) for file, source, tree in files]
    for ctx in contexts:
        project.collect(ctx)

    findings: List[Finding] = []
    for ctx in contexts:
        noqa = _noqa_map(ctx.source)
        file_wide = _file_pragma(ctx.source)
        findings.extend(
            f
            for f in run_rules(ctx, project)
            if not _suppressed(f, noqa, file_wide)
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, errors


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Sim-aware static analysis (RPR rule catalogue).",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"        why: {rule.rationale}")
            print(f"        fix: {rule.fixit}")
        return 0

    findings, errors = lint_paths(args.paths)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    total = len(findings) + len(errors)
    if total:
        print(f"\n{len(findings)} finding(s), {len(errors)} parse error(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Registry of reset hooks for process-global mutable state.

The GPUID-counter bug class: a module-level counter (or cache, or table)
survives across simulated scenarios in one Python process, so a run's
outcome depends on what ran before it — replays diverge, test results
shift when tests are reordered. Any module that must keep such state
registers a reset hook here; scenario entry points (the tests' and
benchmarks' autouse fixtures) call :func:`reset_all` instead of
hand-listing every counter, so new state can never be forgotten.

The linter's RPR003 rule enforces the contract statically: module-level
mutable state without a registered reset (or an explicit suppression) is
a lint error.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

__all__ = ["register_reset", "reset_all", "registered", "unregister_reset"]

#: The registry itself is process-global mutable state by necessity — it
#: is the reset mechanism, is append-mostly, and resetting it would
#: unregister every hook.
_RESETS: Dict[str, Callable[[], None]] = {}


def register_reset(name: str, hook: Optional[Callable[[], None]] = None):
    """Register *hook* to run on every :func:`reset_all`.

    *name* identifies the state being reset (convention:
    ``"<module>.<state>"``); re-registering a name replaces its hook,
    which keeps module reloads idempotent. Usable as a decorator::

        @register_reset("repro.core.vgpu.gpuid_counter")
        def reset_gpuid_counter() -> None: ...
    """
    if hook is None:

        def decorator(fn: Callable[[], None]) -> Callable[[], None]:
            _RESETS[name] = fn
            return fn

        return decorator
    _RESETS[name] = hook
    return hook


def unregister_reset(name: str) -> None:
    """Drop a hook (tests of the registry itself)."""
    _RESETS.pop(name, None)


def registered() -> Tuple[str, ...]:
    """Names of every registered reset hook, sorted."""
    return tuple(sorted(_RESETS))


def reset_all() -> Tuple[str, ...]:
    """Run every registered hook (sorted by name); returns what ran."""
    names = registered()
    for name in names:
        _RESETS[name]()
    return names

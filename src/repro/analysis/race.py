"""Dynamic race detector: happens-before tracking over the apiserver.

The static rules (:mod:`repro.analysis.rules`) catch hazardous *code
shapes*; this detector catches hazardous *executions*. It instruments
:class:`~repro.cluster.etcd.Etcd` (every component's single source of
truth) and the per-node token backends, and maintains three runtime
invariants:

* **No lost updates** — every overwrite of ``/registry/...`` must be
  issued by an actor (simulation process) that *read* the revision it is
  replacing. A blind ``put``, or a CAS whose base resourceVersion was
  never observed by the writer (a laundered RV), is flagged the moment
  it commits — the write pattern that silently discards a concurrent
  writer's changes under chaos schedules.
* **No double-bound vGPUs** — at most one RUNNING placeholder pod per
  physical GPU UUID (KubeShare's GPUID ↔ UUID mapping must be a
  bijection).
* **No token over-grants** — the sum of admitted ``gpu_request`` on one
  vGPU never exceeds device capacity (1.0), and a node's token daemon
  never has two simultaneously valid tokens for one device.

Opt-in: the chaos and failover benchmarks call :func:`install_from_env`
and run instrumented when ``REPRO_RACE_DETECT=1`` (CI smoke jobs set
it). With ``fail_fast=True`` (the default) a violation raises
:class:`RaceViolation` at the offending write — loudly, inside the
simulation step that caused it.

Actors are identified by live simulation :class:`~repro.sim.Process`
objects (``env.active_process``), so two reconcile workers with the same
name are still distinct actors; code running outside any process (test
setup) is the ``"<main>"`` actor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

__all__ = ["RaceDetector", "RaceViolation", "Violation", "install", "install_from_env"]

#: Environment variable that opts benchmarks into detection.
ENV_FLAG = "REPRO_RACE_DETECT"

_CAPACITY = 1.0
_EPS = 1e-6
_TERMINAL_PHASES = ("Succeeded", "Failed")


class RaceViolation(AssertionError):
    """Raised on the first violation when ``fail_fast`` is set, and by
    :meth:`RaceDetector.check` when any violation was recorded."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    kind: str  # "lost-update" | "double-bind" | "token-overgrant"
    at: float  # virtual time
    actor: str
    subject: str  # etcd key, GPU UUID, or device UUID
    detail: str

    def render(self) -> str:
        return f"[t={self.at:.3f}] {self.kind} by {self.actor}: {self.subject} — {self.detail}"


def _phase(obj: Any) -> str:
    phase = getattr(getattr(obj, "status", None), "phase", None)
    return getattr(phase, "value", phase) or ""


class RaceDetector:
    """Per-actor happens-before tracker plus vGPU/token invariant state.

    Attach with :func:`install` (or set ``etcd.tracker`` / a backend's
    ``tracker`` by hand); every hook is duck-typed so the instrumented
    modules need no import of this package.
    """

    LOST_UPDATE = "lost-update"
    DOUBLE_BIND = "double-bind"
    TOKEN_OVERGRANT = "token-overgrant"

    def __init__(self, env: Any, fail_fast: bool = True) -> None:
        self.env = env
        self.fail_fast = fail_fast
        self.violations: List[Violation] = []
        #: actor -> key -> set of observed mod_revisions. Keyed by the
        #: Process object itself (identity), so same-named workers stay
        #: distinct actors.
        self._observed: Dict[Any, Dict[str, Set[int]]] = {}
        #: RUNNING placeholder pod key -> physical UUID it pins.
        self._holders: Dict[str, str] = {}
        #: SharePod key -> (gpuid, admitted gpu_request), active only.
        self._admitted: Dict[str, Tuple[str, float]] = {}
        self.reads_total = 0
        self.writes_total = 0

    # -- actor identity ----------------------------------------------------
    def _actor(self) -> Any:
        proc = getattr(self.env, "active_process", None)
        return proc if proc is not None else "<main>"

    @staticmethod
    def _actor_name(actor: Any) -> str:
        return getattr(actor, "name", None) or str(actor)

    # -- etcd hooks --------------------------------------------------------
    def record_read(self, key: str, kv: Any) -> None:
        """An actor observed (key, mod_revision) via get/range."""
        self.reads_total += 1
        self._observed.setdefault(self._actor(), {}).setdefault(key, set()).add(
            kv.mod_revision
        )

    def record_write(self, key: str, prev: Any, kv: Any, blind: bool) -> None:
        """A write committed; *prev* is the overwritten KeyValue or None."""
        self.writes_total += 1
        actor = self._actor()
        if prev is not None:
            seen = self._observed.get(actor, {}).get(key, ())
            if prev.mod_revision not in seen:
                how = "blind put" if blind else "compare-and-swap"
                self._flag(
                    self.LOST_UPDATE,
                    actor,
                    key,
                    f"{how} over revision {prev.mod_revision} which this actor "
                    "never read — a concurrent writer's change is silently lost",
                )
        # The writer holds the returned KV, so it has observed the new RV.
        self._observed.setdefault(actor, {}).setdefault(key, set()).add(
            kv.mod_revision
        )
        self._apply_state(key, kv.value, actor)

    def record_delete(self, key: str, prev: Any) -> None:
        """A key was removed; clear invariant state derived from it."""
        self._holders.pop(key, None)
        self._admitted.pop(key, None)

    # -- invariant state ---------------------------------------------------
    def _apply_state(self, key: str, value: Any, actor: Any) -> None:
        if value is None:
            return
        if key.startswith("/registry/Pod/"):
            self._apply_pod(key, value, actor)
        elif key.startswith("/registry/SharePod/"):
            self._apply_sharepod(key, value, actor)

    def _apply_pod(self, key: str, pod: Any, actor: Any) -> None:
        from ..core.vgpu import PLACEHOLDER_PREFIX  # deferred: no import cycle

        name = getattr(getattr(pod, "metadata", None), "name", "")
        if not name.startswith(PLACEHOLDER_PREFIX):
            return
        uuid = None
        if _phase(pod) == "Running":
            env_block = getattr(pod.status, "container_env", {}) or {}
            visible = env_block.get("NVIDIA_VISIBLE_DEVICES", "")
            uuid = visible.split(",")[0] if visible else None
        if uuid is None:
            self._holders.pop(key, None)
            return
        self._holders[key] = uuid
        holders = sorted(k for k, u in self._holders.items() if u == uuid)
        if len(holders) > 1:
            self._flag(
                self.DOUBLE_BIND,
                actor,
                uuid,
                f"{len(holders)} RUNNING placeholder pods pin this physical "
                f"GPU: {', '.join(holders)}",
            )

    def _apply_sharepod(self, key: str, sp: Any, actor: Any) -> None:
        gpuid = getattr(getattr(sp, "spec", None), "gpu_id", None)
        request = float(getattr(sp.spec, "gpu_request", 0.0) or 0.0)
        active = gpuid is not None and _phase(sp) not in _TERMINAL_PHASES
        if not active:
            self._admitted.pop(key, None)
            return
        self._admitted[key] = (gpuid, request)
        total = sum(r for g, r in self._admitted.values() if g == gpuid)
        if total > _CAPACITY + _EPS:
            members = sorted(k for k, (g, _) in self._admitted.items() if g == gpuid)
            self._flag(
                self.TOKEN_OVERGRANT,
                actor,
                gpuid,
                f"admitted gpu_request totals {total:.3f} > {_CAPACITY:.1f} "
                f"across {', '.join(members)} — token quotas are over-granted",
            )

    # -- token backend hook ------------------------------------------------
    def record_token_grant(self, device_uuid: str, token: Any, prev: Any) -> None:
        """A node's token daemon granted *token*; *prev* is the device's
        previously tracked token (None if none)."""
        if prev is not None and getattr(prev, "valid", False):
            self._flag(
                self.TOKEN_OVERGRANT,
                self._actor(),
                device_uuid,
                f"token granted to {getattr(token, 'client_id', '?')!r} while "
                f"{getattr(prev, 'client_id', '?')!r} still holds a valid token",
            )

    # -- reporting ---------------------------------------------------------
    def _flag(self, kind: str, actor: Any, subject: str, detail: str) -> None:
        violation = Violation(
            kind=kind,
            at=float(getattr(self.env, "now", 0.0)),
            actor=self._actor_name(actor),
            subject=subject,
            detail=detail,
        )
        self.violations.append(violation)
        if self.fail_fast:
            raise RaceViolation(violation.render())

    def report(self) -> str:
        if not self.violations:
            return "race detector: no violations"
        lines = [f"race detector: {len(self.violations)} violation(s)"]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)

    def check(self) -> None:
        """Raise :class:`RaceViolation` if anything was recorded."""
        if self.violations:
            raise RaceViolation(self.report())


def install(cluster: Any, fail_fast: bool = True) -> RaceDetector:
    """Attach a detector to a cluster's etcd and every node's backend."""
    detector = RaceDetector(cluster.env, fail_fast=fail_fast)
    cluster.api.etcd.tracker = detector
    for node in cluster.nodes:
        backend = getattr(node, "backend", None)
        if backend is not None:
            backend.tracker = detector
    return detector


def install_from_env(cluster: Any, fail_fast: bool = True) -> Optional[RaceDetector]:
    """:func:`install` iff ``REPRO_RACE_DETECT`` is set (CI smoke jobs)."""
    if not os.environ.get(ENV_FLAG):
        return None
    return install(cluster, fail_fast=fail_fast)

"""Finding baseline + diff-aware mode for the RPR linter.

CI wants "fail only on *new* findings": a committed
``analysis-baseline.json`` records the fingerprint of every accepted
pre-existing finding, and ``--baseline`` filters those out of the exit
status. ``--changed-since <ref>`` additionally restricts reporting to
files touched since a git ref, so PR lint runs are proportional to the
diff — on an unchanged tree diff-aware mode reports nothing.

Fingerprints are deliberately *line-independent*: ``sha1(rule_id |
normalized-path | message | occurrence-index)``, where the occurrence
index disambiguates identical messages in one file. Inserting unrelated
lines above a finding does not churn the baseline; changing the code
that produces the finding does.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from .rules import Finding

__all__ = [
    "fingerprint_key",
    "fingerprints",
    "load_baseline",
    "write_baseline",
    "filter_baseline",
    "changed_files",
]

BASELINE_VERSION = 1


def _norm(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Stable fingerprint per finding (order-aligned with the input)."""
    counts: Dict[str, int] = {}
    out: List[str] = []
    for f in findings:
        base = f"{f.rule_id}|{_norm(f.path)}|{f.message}"
        n = counts.get(base, 0)
        counts[base] = n + 1
        out.append(hashlib.sha1(f"{base}|{n}".encode("utf-8")).hexdigest()[:20])
    return out


def fingerprint_key(finding: Finding, occurrence: int = 0) -> str:
    base = f"{finding.rule_id}|{_norm(finding.path)}|{finding.message}"
    return hashlib.sha1(f"{base}|{occurrence}".encode("utf-8")).hexdigest()[:20]


def load_baseline(path: str) -> Set[str]:
    """Fingerprints recorded in the baseline file (empty if absent)."""
    p = Path(path)
    if not p.exists():
        return set()
    data = json.loads(p.read_text(encoding="utf-8"))
    return set(data.get("findings", {}).keys())


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """(Re)write the baseline to accept exactly *findings*."""
    entries: Dict[str, Dict[str, object]] = {}
    for f, fp in zip(findings, fingerprints(findings)):
        entries[fp] = {
            "rule": f.rule_id,
            "path": _norm(f.path),
            "message": f.message,
        }
    payload = {
        "version": BASELINE_VERSION,
        "count": len(entries),
        "findings": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def filter_baseline(
    findings: Sequence[Finding], accepted: Set[str]
) -> List[Finding]:
    """Findings whose fingerprint is NOT in the baseline."""
    return [
        f for f, fp in zip(findings, fingerprints(findings)) if fp not in accepted
    ]


def changed_files(ref: str, cwd: Optional[str] = None) -> Optional[Set[str]]:
    """Paths changed since *ref* per ``git diff --name-only`` (normalized,
    repo-relative). ``None`` when git is unavailable or *ref* is unknown —
    callers should fall back to full-tree mode rather than silently
    passing."""
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return {_norm(line) for line in proc.stdout.splitlines() if line.strip()}


def restrict_to_changed(
    findings: Sequence[Finding], changed: Set[str]
) -> List[Finding]:
    """Keep findings located in one of the changed files."""
    return [f for f in findings if _norm(f.path) in changed]

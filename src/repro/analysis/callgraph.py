"""Project-wide symbol table and call graph for the whole-program passes.

The file-local RPR rules (:mod:`repro.analysis.rules`) see one AST at a
time; the interprocedural passes (:mod:`repro.analysis.flow`) need to
know *what a call resolves to* across module boundaries. This module
builds that view in two stages:

1. **Collection** — :func:`collect_file_facts` walks one parsed file and
   distills everything the global passes need into a serializable
   :class:`FileFacts` record: function summaries (params, taint-relevant
   return shapes, every call site), class summaries (init params,
   ``self.x = param`` stores, constructor forwarding, write-through
   attributes), and ``HAControllerGroup`` factory bodies. Facts are
   plain dicts/lists/strings so the lint cache can persist them keyed by
   file content hash — an unchanged file is never re-parsed.
2. **Resolution** — :class:`ProjectIndex` ingests every file's facts and
   answers qualified-name queries: module functions through the import
   table, ``self.method`` through the class and its (project-local)
   bases, ``obj.method`` through annotation- and constructor-based type
   inference, and factory indirection recorded at collection time.

Callee references are encoded as strings:

``"pkg.mod.func"``
    an import-resolved dotted name (module function or class
    constructor),
``"pkg.mod.Cls::method"``
    a method on a statically known class (``self.method`` inside the
    class, or a receiver whose type was inferred).

Soundness limits (documented in DESIGN.md §13): resolution is
best-effort — dynamic dispatch through containers, ``getattr``, and
monkey-patching are invisible; an unresolvable call simply contributes
no edge. The passes built on top are therefore *under*-approximate
(they miss, they don't invent), which is the right polarity for a
lint gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .rules import FileContext, _dotted, _is_set_annotation

__all__ = [
    "FileFacts",
    "FunctionFacts",
    "CallSiteFacts",
    "ClassFacts",
    "ForwardFacts",
    "FactoryFacts",
    "FactoryCtorArg",
    "ProjectIndex",
    "collect_file_facts",
    "module_qualname",
]

#: direct wall-clock sources (mirrors RPR001's table).
WALL_CLOCK_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
}
WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")

#: mutating verbs on an apiserver/etcd-like handle (fence escape sinks).
WRITE_VERBS = (
    "create",
    "update",
    "patch",
    "delete",
    "try_delete",
    "put",
    "put_if",
    "bind",
    "submit",
    "evict",
)


def module_qualname(path: str) -> str:
    """Dotted module name for *path* (``src/repro/core/devmgr.py`` →
    ``repro.core.devmgr``; a bare fixture name keeps its stem)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p) or "<module>"


def _direct_taint_source(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """Name of the wall-clock / unseeded-RNG source *node* calls, if any."""
    if not isinstance(node, ast.Call):
        return None
    resolved = ctx.resolve(_dotted(node.func))
    if resolved is None:
        return None
    if resolved in WALL_CLOCK_SOURCES or any(
        resolved == s or resolved.endswith("." + s) for s in WALL_CLOCK_SUFFIXES
    ):
        return resolved
    if resolved.startswith("random.") and resolved != "random.Random":
        return resolved
    if resolved == "random.Random" and not node.args and not node.keywords:
        return resolved
    if resolved.startswith("numpy.random.") and resolved not in (
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
    ):
        return resolved
    return None


# ---------------------------------------------------------------------------
# facts records (everything JSON-serializable via to_dict/from_dict)
# ---------------------------------------------------------------------------


@dataclass
class CallSiteFacts:
    """One call expression inside a function body."""

    line: int
    col: int
    callee: str  # callee reference (see module docstring)
    display: str  # as written in source, for messages
    arg_callees: List[str] = field(default_factory=list)
    arg_direct_taint: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "callee": self.callee,
            "display": self.display,
            "arg_callees": list(self.arg_callees),
            "arg_direct_taint": self.arg_direct_taint,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CallSiteFacts":
        return cls(**d)


@dataclass
class FunctionFacts:
    """Taint-relevant summary of one function or method."""

    qualname: str
    name: str
    cls: Optional[str]  # enclosing class qualname
    params: List[str]
    is_generator: bool
    #: source name when a return expression reads the clock/RNG directly.
    direct_taint: Optional[str]
    #: callee references appearing in return position (directly or via a
    #: local that a return statement hands back).
    return_callees: List[str]
    call_sites: List[CallSiteFacts]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "cls": self.cls,
            "params": list(self.params),
            "is_generator": self.is_generator,
            "direct_taint": self.direct_taint,
            "return_callees": list(self.return_callees),
            "call_sites": [c.to_dict() for c in self.call_sites],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FunctionFacts":
        d = dict(d)
        d["call_sites"] = [CallSiteFacts.from_dict(c) for c in d["call_sites"]]
        return cls(**d)


@dataclass
class ForwardFacts:
    """``__init__`` forwarding a parameter into another constructor."""

    param: str
    class_ref: str
    arg_index: Optional[int]  # positional (0-based, self excluded) …
    kw: Optional[str]  # … or keyword

    def to_dict(self) -> Dict[str, Any]:
        return {
            "param": self.param,
            "class_ref": self.class_ref,
            "arg_index": self.arg_index,
            "kw": self.kw,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ForwardFacts":
        return cls(**d)


@dataclass
class ClassFacts:
    """Fence-escape-relevant summary of one class."""

    qualname: str
    name: str
    bases: List[str]
    init_params: List[str]
    #: init param -> attribute names it is stored under (``self.a = p``).
    stores: Dict[str, List[str]]
    #: init params forwarded into another class's constructor.
    forwards: List[ForwardFacts]
    #: attributes through which some method issues a write verb
    #: (``self.<attr>....create(...)``), including one level of
    #: ``self.helper()`` indirection within the class.
    write_attrs: List[str]
    #: attribute -> inferred class reference (``self.a = Cls(...)``).
    attr_types: Dict[str, str]
    #: method name -> shared-state receivers it reads / writes (used by
    #: the yield-atomicity pass to see through ``self.helper()`` calls).
    method_shared_reads: Dict[str, List[str]]
    method_shared_writes: Dict[str, List[str]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "bases": list(self.bases),
            "init_params": list(self.init_params),
            "stores": {k: list(v) for k, v in self.stores.items()},
            "forwards": [f.to_dict() for f in self.forwards],
            "write_attrs": list(self.write_attrs),
            "attr_types": dict(self.attr_types),
            "method_shared_reads": {k: list(v) for k, v in self.method_shared_reads.items()},
            "method_shared_writes": {k: list(v) for k, v in self.method_shared_writes.items()},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClassFacts":
        d = dict(d)
        d["forwards"] = [ForwardFacts.from_dict(f) for f in d["forwards"]]
        return cls(**d)


@dataclass
class FactoryCtorArg:
    """A constructor argument observed inside an HA factory body."""

    line: int
    col: int
    class_ref: str
    arg_index: Optional[int]
    kw: Optional[str]
    expr: str  # source text of the argument (for the message)
    fenced: bool  # rooted at the factory's fenced-client parameter
    apiish: bool  # smells like an apiserver handle
    #: set when the argument is itself a constructor call that received
    #: an unfenced api-ish handle (two-constructor laundering).
    inner_class_ref: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "class_ref": self.class_ref,
            "arg_index": self.arg_index,
            "kw": self.kw,
            "expr": self.expr,
            "fenced": self.fenced,
            "apiish": self.apiish,
            "inner_class_ref": self.inner_class_ref,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FactoryCtorArg":
        return cls(**d)


@dataclass
class FactoryFacts:
    """One ``HAControllerGroup(...)`` call site and its factory body."""

    line: int
    col: int
    ctor_args: List[FactoryCtorArg]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "ctor_args": [a.to_dict() for a in self.ctor_args],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FactoryFacts":
        d = dict(d)
        d["ctor_args"] = [FactoryCtorArg.from_dict(a) for a in d["ctor_args"]]
        return cls(**d)


@dataclass
class FileFacts:
    """Everything the global passes need from one file."""

    path: str
    module: str
    #: cross-file set-attribute facts (feeds rules.ProjectContext).
    set_attrs: List[str]
    functions: List[FunctionFacts]
    classes: List[ClassFacts]
    factories: List[FactoryFacts]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "set_attrs": sorted(self.set_attrs),
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "factories": [f.to_dict() for f in self.factories],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FileFacts":
        d = dict(d)
        d["functions"] = [FunctionFacts.from_dict(f) for f in d["functions"]]
        d["classes"] = [ClassFacts.from_dict(c) for c in d["classes"]]
        d["factories"] = [FactoryFacts.from_dict(f) for f in d["factories"]]
        return cls(**d)


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------

#: shared mutable state the atomicity pass cares about (root identifiers,
#: underscore-stripped): etcd keyspace, apiserver, vGPU pools, registries.
SHARED_ROOTS = {"etcd", "api", "apiserver", "pool", "registry", "store"}
SHARED_READ_VERBS = {"get", "range", "list", "snapshot", "keys", "pods", "nodes"}
SHARED_WRITE_VERBS = {
    "put",
    "update",
    "patch",
    "create",
    "delete",
    "add",
    "remove",
    "discard",
    "append",
    "pop",
    "bind",
    "submit",
}
#: sanctioned cross-yield write idioms the atomicity pass must not flag:
#: CAS (``put_if``), tolerant delete (``try_delete``), and the
#: server-side mutator (``patch(kind, name, mutate)`` re-reads current
#: state before applying, so it cannot act on a stale snapshot).
ATOMICITY_EXEMPT_VERBS = {"put_if", "try_delete", "patch"}


def shared_receiver(dotted: Optional[str]) -> Optional[str]:
    """Normalized key for a shared-state receiver, else ``None``.

    ``self._etcd`` and ``_etcd`` normalize to the same key so a method
    summary matches the call site in its caller.
    """
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts and parts[0] == "self":
        parts = parts[1:]
    if not parts:
        return None
    stripped = [p.lstrip("_") or p for p in parts]
    if not any(s in SHARED_ROOTS for s in stripped):
        return None
    return ".".join(stripped)


class _Collector:
    """Single-file facts collector."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = module_qualname(ctx.path)
        #: module-level function and class names (for bare-name calls).
        self.module_funcs: Set[str] = {
            n.name for n in ctx.tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.module_classes: Set[str] = {
            n.name for n in ctx.tree.body if isinstance(n, ast.ClassDef)
        }

    # -- name plumbing ----------------------------------------------------

    def resolve_ref(self, dotted: Optional[str], local_types: Dict[str, str],
                    cls: Optional[ast.ClassDef]) -> Optional[str]:
        """Best-effort callee reference for a call target."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head == "self" and cls is not None:
            if rest and "." not in rest:
                return f"{self.module}.{cls.name}::{rest}"
            # ``self.attr.method``: look through the attr type if inferred.
            if rest:
                attr, _, meth = rest.partition(".")
                attr_ty = local_types.get(f"self.{attr}")
                if attr_ty and meth and "." not in meth:
                    return f"{attr_ty}::{meth}"
            return None
        if head in local_types and rest and "." not in rest:
            return f"{local_types[head]}::{rest}"
        resolved = self.ctx.resolve(dotted)
        if resolved is None:
            return None
        if "." not in dotted:  # bare name
            if dotted in self.module_funcs or dotted in self.module_classes:
                return f"{self.module}.{dotted}"
        head2 = resolved.split(".")[0]
        if head2 in self.module_funcs or head2 in self.module_classes:
            return f"{self.module}.{resolved}"
        return resolved

    def type_of(self, expr: ast.AST, local_types: Dict[str, str]) -> Optional[str]:
        """Inferred class reference for an expression, if any."""
        name = _dotted(expr)
        if name is not None and name in local_types:
            return local_types[name]
        if isinstance(expr, ast.Call):
            ref = self.resolve_ref(_dotted(expr.func), local_types, None)
            if ref is not None and "::" not in ref and ref.split(".")[-1][:1].isupper():
                return ref
        return None

    def _annotation_ref(self, annotation: Optional[ast.AST]) -> Optional[str]:
        if annotation is None:
            return None
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Constant) and isinstance(base.value, str):
            # string annotation: resolve its dotted text
            return self.ctx.resolve(base.value)
        name = _dotted(base)
        if name is None:
            return None
        resolved = self.ctx.resolve(name)
        if resolved is None:
            return None
        if "." not in name and name in self.module_classes:
            return f"{self.module}.{name}"
        return resolved

    # -- per-function -----------------------------------------------------

    def _local_types(self, fn: ast.AST, cls: Optional[ast.ClassDef]) -> Dict[str, str]:
        """name (or ``self.attr``) -> inferred class reference."""
        types: Dict[str, str] = {}
        args = fn.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ref = self._annotation_ref(arg.annotation)
            if ref is not None:
                types[arg.arg] = ref
        for sub in _walk_function(fn):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                ref = self.resolve_ref(_dotted(sub.value.func), types, cls)
                if ref is None or "::" in ref or not ref.split(".")[-1][:1].isupper():
                    continue
                for target in sub.targets:
                    tname = _dotted(target)
                    if tname is not None:
                        types[tname] = ref
            elif isinstance(sub, ast.AnnAssign):
                tname = _dotted(sub.target)
                ref = self._annotation_ref(sub.annotation)
                if tname is not None and ref is not None:
                    types[tname] = ref
        return types

    def collect_function(
        self, fn: ast.AST, cls: Optional[ast.ClassDef], class_attr_types: Dict[str, str]
    ) -> FunctionFacts:
        ctx = self.ctx
        local_types = dict(class_attr_types)
        local_types.update(self._local_types(fn, cls))
        qual = (
            f"{self.module}.{cls.name}.{fn.name}" if cls is not None else f"{self.module}.{fn.name}"
        )
        params = [a.arg for a in fn.args.args if a.arg not in ("self", "cls")]
        is_gen = any(
            isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_function(fn, into_body=True)
        )

        # taint-relevant locals: name -> (direct source, callee refs)
        assigned: Dict[str, Tuple[Optional[str], List[str]]] = {}
        for sub in _walk_function(fn):
            if isinstance(sub, ast.Assign):
                direct, refs = self._expr_taint(sub.value, local_types, cls)
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        assigned[target.id] = (direct, refs)

        direct_taint: Optional[str] = None
        return_callees: List[str] = []
        for sub in _walk_function(fn):
            values: List[ast.AST] = []
            if isinstance(sub, ast.Return) and sub.value is not None:
                values.append(sub.value)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
                # generators hand values back through yield as well
                values.append(sub.value)
            for value in values:
                direct, refs = self._expr_taint(value, local_types, cls)
                # a returned name inherits what was assigned to it
                for name_node in ast.walk(value):
                    if isinstance(name_node, ast.Name) and name_node.id in assigned:
                        d2, r2 = assigned[name_node.id]
                        direct = direct or d2
                        refs = refs + r2
                direct_taint = direct_taint or direct
                return_callees.extend(refs)

        call_sites: List[CallSiteFacts] = []
        for node in _walk_function(fn):
            if not isinstance(node, ast.Call):
                continue
            display = _dotted(node.func)
            if display is None:
                continue
            ref = self.resolve_ref(display, local_types, cls)
            if ref is None:
                continue
            arg_callees: List[str] = []
            arg_direct: Optional[str] = None
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                d, refs = self._expr_taint(arg, local_types, cls)
                arg_direct = arg_direct or d
                arg_callees.extend(refs)
                # names flowing in as arguments inherit their assignment
                for name_node in ast.walk(arg):
                    if isinstance(name_node, ast.Name) and name_node.id in assigned:
                        d2, r2 = assigned[name_node.id]
                        arg_direct = arg_direct or d2
                        arg_callees.extend(r2)
            call_sites.append(
                CallSiteFacts(
                    line=node.lineno,
                    col=node.col_offset + 1,
                    callee=ref,
                    display=display,
                    arg_callees=arg_callees,
                    arg_direct_taint=arg_direct,
                )
            )
        return FunctionFacts(
            qualname=qual,
            name=fn.name,
            cls=f"{self.module}.{cls.name}" if cls is not None else None,
            params=params,
            is_generator=is_gen,
            direct_taint=direct_taint,
            return_callees=sorted(set(return_callees)),
            call_sites=call_sites,
        )

    def _expr_taint(
        self, expr: ast.AST, local_types: Dict[str, str], cls: Optional[ast.ClassDef]
    ) -> Tuple[Optional[str], List[str]]:
        """(direct source, callee refs) reachable inside *expr*."""
        direct: Optional[str] = None
        refs: List[str] = []
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            source = _direct_taint_source(self.ctx, node)
            if source is not None:
                direct = direct or source
                continue
            ref = self.resolve_ref(_dotted(node.func), local_types, cls)
            if ref is not None:
                refs.append(ref)
        return direct, refs

    # -- per-class --------------------------------------------------------

    def collect_class(self, cls: ast.ClassDef) -> ClassFacts:
        bases: List[str] = []
        for base in cls.bases:
            ref = self._annotation_ref(base)
            if ref is not None:
                bases.append(ref)
        init = next(
            (n for n in cls.body if isinstance(n, ast.FunctionDef) and n.name == "__init__"),
            None,
        )
        init_params: List[str] = []
        stores: Dict[str, List[str]] = {}
        forwards: List[ForwardFacts] = []
        attr_types: Dict[str, str] = {}
        if init is not None:
            init_params = [a.arg for a in init.args.args if a.arg != "self"]
            local_types = self._local_types(init, cls)
            aliases: Dict[str, str] = {}  # local name -> init param it aliases
            # ast.walk is breadth-first; aliases must be seen before use,
            # so process the assignments in source order.
            assigns = sorted(
                (s for s in _walk_function(init) if isinstance(s, ast.Assign)),
                key=lambda s: (s.lineno, s.col_offset),
            )
            for sub in assigns:
                value_name = _dotted(sub.value)
                src_param = None
                if value_name in init_params:
                    src_param = value_name
                elif value_name in aliases:
                    src_param = aliases[value_name]
                for target in sub.targets:
                    if isinstance(target, ast.Name) and src_param is not None:
                        aliases[target.id] = src_param
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if src_param is not None:
                            stores.setdefault(src_param, []).append(target.attr)
                        ty = self.type_of(sub.value, local_types)
                        if ty is not None:
                            attr_types[target.attr] = ty
            for sub in _walk_function(init):
                for node in ast.walk(sub):
                    if not isinstance(node, ast.Call):
                        continue
                    ref = self.resolve_ref(_dotted(node.func), local_types, cls)
                    if ref is None or "::" in ref or not ref.split(".")[-1][:1].isupper():
                        continue
                    for i, arg in enumerate(node.args):
                        name = _dotted(arg)
                        param = aliases.get(name, name) if name else None
                        if param in init_params:
                            forwards.append(ForwardFacts(param, ref, i, None))
                    for kw in node.keywords:
                        name = _dotted(kw.value)
                        param = aliases.get(name, name) if name else None
                        if param in init_params and kw.arg is not None:
                            forwards.append(ForwardFacts(param, ref, None, kw.arg))
            # annotated attribute types on the class body
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ref = self._annotation_ref(node.annotation)
                if ref is not None:
                    attr_types.setdefault(node.target.id, ref)

        # write-through attributes + per-method shared-state summaries
        write_attrs: Set[str] = set()
        method_shared_reads: Dict[str, List[str]] = {}
        method_shared_writes: Dict[str, List[str]] = {}
        method_write_attrs: Dict[str, Set[str]] = {}
        method_calls: Dict[str, Set[str]] = {}
        for meth in cls.body:
            if not isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            w_attrs: Set[str] = set()
            calls: Set[str] = set()
            reads: Set[str] = set()
            writes: Set[str] = set()
            for node in _walk_function(meth, into_body=True):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                receiver = _dotted(node.func.value)
                if receiver is None:
                    continue
                verb = node.func.attr
                if verb in WRITE_VERBS and receiver.startswith("self."):
                    w_attrs.add(receiver.split(".")[1])
                if receiver == "self":
                    calls.add(verb)
                key = shared_receiver(receiver)
                if key is not None:
                    if verb in SHARED_READ_VERBS:
                        reads.add(key)
                    if verb in SHARED_WRITE_VERBS and verb not in ATOMICITY_EXEMPT_VERBS:
                        writes.add(key)
            method_write_attrs[meth.name] = w_attrs
            method_calls[meth.name] = calls
            method_shared_reads[meth.name] = sorted(reads)
            method_shared_writes[meth.name] = sorted(writes)
        # one level of self.helper() indirection
        for meth, attrs in method_write_attrs.items():
            write_attrs.update(attrs)
        for meth, calls in method_calls.items():
            for callee in sorted(calls):
                write_attrs.update(method_write_attrs.get(callee, set()))
                method_shared_reads[meth] = sorted(
                    set(method_shared_reads[meth]) | set(method_shared_reads.get(callee, []))
                )
                method_shared_writes[meth] = sorted(
                    set(method_shared_writes[meth]) | set(method_shared_writes.get(callee, []))
                )

        return ClassFacts(
            qualname=f"{self.module}.{cls.name}",
            name=cls.name,
            bases=bases,
            init_params=init_params,
            stores=stores,
            forwards=forwards,
            write_attrs=sorted(write_attrs),
            attr_types=attr_types,
            method_shared_reads=method_shared_reads,
            method_shared_writes=method_shared_writes,
        )

    # -- factories --------------------------------------------------------

    def collect_factories(self) -> List[FactoryFacts]:
        functions = {
            n.name: n for n in ast.walk(self.ctx.tree) if isinstance(n, ast.FunctionDef)
        }
        out: List[FactoryFacts] = []
        for node in ast.walk(self.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None or name.split(".")[-1] != "HAControllerGroup":
                continue
            factory: Optional[ast.AST] = None
            if len(node.args) >= 4:
                factory = node.args[3]
            for kw in node.keywords:
                if kw.arg == "factory":
                    factory = kw.value
            if isinstance(factory, ast.Name):
                factory = functions.get(factory.id)
            if not isinstance(factory, (ast.FunctionDef, ast.Lambda)):
                continue
            params = factory.args.args
            client = params[0].arg if params else None
            body = factory.body if isinstance(factory.body, list) else [factory.body]
            local_types = self._local_types(factory, None)
            aliases = self._factory_aliases(body, client)
            ctor_args: List[FactoryCtorArg] = []
            for stmt in body:
                for sub in ast.walk(stmt if isinstance(stmt, ast.AST) else stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    ref = self.resolve_ref(_dotted(sub.func), local_types, None)
                    if ref is None or "::" in ref or not ref.split(".")[-1][:1].isupper():
                        continue
                    for i, arg in enumerate(sub.args):
                        rec = self._factory_arg(arg, ref, i, None, client, aliases, local_types)
                        if rec is not None:
                            ctor_args.append(rec)
                    for kw in sub.keywords:
                        if kw.arg is None:
                            continue
                        rec = self._factory_arg(
                            kw.value, ref, None, kw.arg, client, aliases, local_types
                        )
                        if rec is not None:
                            ctor_args.append(rec)
            out.append(
                FactoryFacts(line=node.lineno, col=node.col_offset + 1, ctor_args=ctor_args)
            )
        return out

    def _factory_aliases(self, body: List[ast.AST], client: Optional[str]) -> Dict[str, str]:
        """local name -> root dotted expression it aliases (one level)."""
        aliases: Dict[str, str] = {}
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    value_name = _dotted(sub.value)
                    if value_name is None:
                        continue
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = aliases.get(value_name, value_name)
        return aliases

    def _factory_arg(
        self,
        arg: ast.AST,
        class_ref: str,
        index: Optional[int],
        kw: Optional[str],
        client: Optional[str],
        aliases: Dict[str, str],
        local_types: Dict[str, str],
    ) -> Optional[FactoryCtorArg]:
        name = _dotted(arg)
        inner_ref: Optional[str] = None
        if name is None and isinstance(arg, ast.Call):
            # nested constructor: Controller(Helper(api)) — record the outer
            # slot when the inner ctor swallows an unfenced api-ish handle.
            inner = self.resolve_ref(_dotted(arg.func), local_types, None)
            if inner is None or "::" in inner or not inner.split(".")[-1][:1].isupper():
                return None
            inner_unfenced = False
            for sub_arg in list(arg.args) + [k.value for k in arg.keywords]:
                sub_name = _dotted(sub_arg)
                if sub_name is None:
                    continue
                root = aliases.get(sub_name, sub_name)
                if client is not None and (root == client or root.startswith(client + ".")):
                    continue
                if _apiish(root, local_types):
                    inner_unfenced = True
            if not inner_unfenced:
                return None
            try:
                expr = ast.unparse(arg)
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                expr = "<ctor>"
            return FactoryCtorArg(
                line=arg.lineno,
                col=arg.col_offset + 1,
                class_ref=class_ref,
                arg_index=index,
                kw=kw,
                expr=expr,
                fenced=False,
                apiish=True,
                inner_class_ref=inner,
            )
        if name is None:
            return None
        root = aliases.get(name, name)
        fenced = client is not None and (root == client or root.startswith(client + "."))
        apiish = _apiish(root, local_types)
        if not apiish:
            return None
        return FactoryCtorArg(
            line=arg.lineno,
            col=arg.col_offset + 1,
            class_ref=class_ref,
            arg_index=index,
            kw=kw,
            expr=name,
            fenced=fenced,
            apiish=apiish,
        )


def _apiish(root_dotted: str, local_types: Dict[str, str]) -> bool:
    """Does this expression smell like an apiserver handle?"""
    ty = local_types.get(root_dotted)
    if ty is not None:
        last = ty.split(".")[-1]
        if last == "APIServer":
            return True
        if last == "FencedAPIServer":
            return False
    segs = [p.lstrip("_") or p for p in root_dotted.split(".")]
    return any(s in ("api", "apiserver") for s in segs)


def _walk_function(fn: ast.AST, into_body: bool = False) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs.

    ``into_body=True`` also yields nodes inside expressions (full walk of
    each statement); the default yields each sub-statement/expression node
    exactly once, skipping nested function/class scopes either way.
    """
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def collect_file_facts(ctx: FileContext) -> FileFacts:
    """Distill one parsed file into its serializable facts record."""
    collector = _Collector(ctx)
    functions: List[FunctionFacts] = []
    classes: List[ClassFacts] = []

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(collector.collect_function(node, None, {}))
        elif isinstance(node, ast.ClassDef):
            facts = collector.collect_class(node)
            classes.append(facts)
            attr_types = {f"self.{a}": t for a, t in facts.attr_types.items()}
            for meth in node.body:
                if isinstance(meth, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(collector.collect_function(meth, node, attr_types))

    # set-attribute facts for rules.ProjectContext (so cached files need
    # no re-parse to contribute their cross-file facts)
    set_attrs: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
            target = node.target
            if isinstance(target, ast.Attribute):
                set_attrs.add(target.attr)
            elif isinstance(target, ast.Name) and _in_class_body(ctx.tree, node):
                set_attrs.add(target.id)
        elif isinstance(node, ast.Assign) and _is_set_literal(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    set_attrs.add(target.attr)

    return FileFacts(
        path=ctx.path,
        module=collector.module,
        set_attrs=sorted(set_attrs),
        functions=functions,
        classes=classes,
        factories=collector.collect_factories(),
    )


def _is_set_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_literal(node.left) or _is_set_literal(node.right)
    return False


def _in_class_body(tree: ast.Module, node: ast.AST) -> bool:
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and node in cls.body:
            return True
    return False


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------


class ProjectIndex:
    """Project-wide symbol table + call graph over collected facts."""

    def __init__(self) -> None:
        self.files: Dict[str, FileFacts] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        #: function qualname -> path of the file that defines it.
        self.func_paths: Dict[str, str] = {}
        self.classes: Dict[str, ClassFacts] = {}
        #: bare class name -> qualnames (fallback when the reference was
        #: recorded under a re-exported path, e.g. ``repro.core.DevMgr``).
        self._class_by_name: Dict[str, List[str]] = {}
        self._func_by_suffix: Dict[str, List[str]] = {}

    def add(self, facts: FileFacts) -> None:
        self.files[facts.path] = facts
        for fn in facts.functions:
            self.functions[fn.qualname] = fn
            self.func_paths[fn.qualname] = facts.path
        for cls in facts.classes:
            self.classes[cls.qualname] = cls
            self._class_by_name.setdefault(cls.name, []).append(cls.qualname)
        for fn in facts.functions:
            suffix = ".".join(fn.qualname.split(".")[-2:])
            self._func_by_suffix.setdefault(suffix, []).append(fn.qualname)

    # -- lookups ----------------------------------------------------------

    def resolve_class(self, ref: Optional[str]) -> Optional[ClassFacts]:
        if ref is None:
            return None
        cls = self.classes.get(ref)
        if cls is not None:
            return cls
        candidates = self._class_by_name.get(ref.split(".")[-1], [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def resolve_function(self, ref: Optional[str]) -> Optional[FunctionFacts]:
        """Resolve a callee reference to a function summary."""
        if ref is None:
            return None
        if "::" in ref:
            cls_ref, _, meth = ref.partition("::")
            cls = self.resolve_class(cls_ref)
            seen: Set[str] = set()
            while cls is not None and cls.qualname not in seen:
                seen.add(cls.qualname)
                fn = self.functions.get(f"{cls.qualname}.{meth}")
                if fn is not None:
                    return fn
                cls = self.resolve_class(cls.bases[0]) if cls.bases else None
            return None
        fn = self.functions.get(ref)
        if fn is not None:
            return fn
        # re-exported module path: fall back on the trailing two segments
        # only when unambiguous.
        suffix = ".".join(ref.split(".")[-2:])
        candidates = self._func_by_suffix.get(suffix, [])
        if len(candidates) == 1:
            return self.functions[candidates[0]]
        return None

    def init_param_name(self, cls: ClassFacts, index: Optional[int], kw: Optional[str]) -> Optional[str]:
        if kw is not None:
            return kw if kw in cls.init_params else None
        if index is not None and index < len(cls.init_params):
            return cls.init_params[index]
        return None

    def merged_stores(self, cls: ClassFacts) -> Dict[str, List[str]]:
        """``stores`` including single-inheritance base chains."""
        out: Dict[str, List[str]] = {}
        seen: Set[str] = set()
        cur: Optional[ClassFacts] = cls
        while cur is not None and cur.qualname not in seen:
            seen.add(cur.qualname)
            for param, attrs in cur.stores.items():
                out.setdefault(param, []).extend(attrs)
            cur = self.resolve_class(cur.bases[0]) if cur.bases else None
        return out

    def merged_write_attrs(self, cls: ClassFacts) -> Set[str]:
        out: Set[str] = set()
        seen: Set[str] = set()
        cur: Optional[ClassFacts] = cls
        while cur is not None and cur.qualname not in seen:
            seen.add(cur.qualname)
            out.update(cur.write_attrs)
            cur = self.resolve_class(cur.bases[0]) if cur.bases else None
        return out

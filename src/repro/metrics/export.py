"""Export measured results as CSV / JSON for external plotting.

The bench harness prints ASCII tables; this module writes the same data
in machine-readable form so figures can be regenerated with any plotting
tool (nothing in this repository depends on matplotlib).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence, Union

from .collector import TimeSeries

__all__ = ["rows_to_csv", "series_to_csv", "results_to_json", "write_text"]

Cell = Union[str, float, int, bool, None]


def rows_to_csv(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]]
) -> str:
    """Render header + rows as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if c is None else c for c in row])
    return buf.getvalue()


def series_to_csv(series: TimeSeries, value_name: str = "value") -> str:
    """Render a time series as two-column CSV."""
    return rows_to_csv(
        ["time_s", value_name], zip(series.times, series.values)
    )


def _jsonable(value: Any) -> Any:
    if isinstance(value, TimeSeries):
        return {"name": value.name, "times": value.times, "values": value.values}
    if hasattr(value, "__dict__"):
        return {k: _jsonable(v) for k, v in vars(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def results_to_json(results: Any, indent: int = 2) -> str:
    """Serialize experiment result objects (dataclasses, TimeSeries,
    nested containers) to JSON text."""
    return json.dumps(_jsonable(results), indent=indent, default=str)


def write_text(path: Union[str, Path], text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path

"""Metric collection primitives: time series, counters, gauges."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries", "MetricsRegistry"]


@dataclass
class TimeSeries:
    """An append-only (time, value) series with numpy views."""

    name: str = ""
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards: {t} < {self.times[-1]}")
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    # -- summaries --------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window_mean(self, t0: float, t1: float) -> float:
        """Mean of samples in the half-open window ``[t0, t1)``.

        ``t1`` is exclusive so adjacent windows partition the samples: a
        sample recorded exactly at ``t1`` belongs to the next window,
        never to both. An empty window yields 0.0.
        """
        if t1 < t0:
            raise ValueError(f"window ends before it starts: [{t0}, {t1})")
        t, v = self.as_arrays()
        mask = (t >= t0) & (t < t1)
        return float(np.mean(v[mask])) if mask.any() else 0.0

    def resample(self, step: float) -> "TimeSeries":
        """Bucket-average onto a regular grid (for plotting/comparison).

        Buckets are the half-open intervals ``[start + i*step,
        start + (i+1)*step)`` anchored at the first sample. Bucket indices
        come from a direct floor division (not from float-accumulated
        edges), so a sample sitting exactly on an edge always lands in the
        bucket it opens, and the final partial bucket is averaged exactly
        like every full one instead of merging into its neighbour when
        ``end - start`` is a multiple of ``step``.
        """
        if step <= 0:
            raise ValueError("step must be > 0")
        out = TimeSeries(name=self.name)
        if not self.times:
            return out
        t, v = self.as_arrays()
        start = t[0]
        # The 1e-9 nudge snaps samples that float error left a hair below
        # an edge (e.g. (t-start)/step == 2.9999999999999996) up onto it.
        idx = np.floor((t - start) / step + 1e-9).astype(np.int64)
        for i in np.unique(idx):
            mask = idx == i
            out.record(float(start + i * step), float(v[mask].mean()))
        return out


class MetricsRegistry:
    """A named bag of counters and time series."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.series: Dict[str, TimeSeries] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name=name)
        return self.series[name]

    def record(self, name: str, t: float, v: float) -> None:
        self.timeseries(name).record(t, v)

"""Metric collection primitives: time series, counters, gauges."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries", "MetricsRegistry"]


@dataclass
class TimeSeries:
    """An append-only (time, value) series with numpy views."""

    name: str = ""
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards: {t} < {self.times[-1]}")
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    # -- summaries --------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window_mean(self, t0: float, t1: float) -> float:
        """Mean of samples with t0 <= t < t1."""
        t, v = self.as_arrays()
        mask = (t >= t0) & (t < t1)
        return float(np.mean(v[mask])) if mask.any() else 0.0

    def resample(self, step: float) -> "TimeSeries":
        """Bucket-average onto a regular grid (for plotting/comparison)."""
        if step <= 0:
            raise ValueError("step must be > 0")
        out = TimeSeries(name=self.name)
        if not self.times:
            return out
        t, v = self.as_arrays()
        start, end = t[0], t[-1]
        edges = np.arange(start, end + step, step)
        idx = np.digitize(t, edges) - 1
        for i in range(len(edges)):
            mask = idx == i
            if mask.any():
                out.record(float(edges[i]), float(v[mask].mean()))
        return out


class MetricsRegistry:
    """A named bag of counters and time series."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.series: Dict[str, TimeSeries] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name=name)
        return self.series[name]

    def record(self, name: str, t: float, v: float) -> None:
        self.timeseries(name).record(t, v)

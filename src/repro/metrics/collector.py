"""Metric collection primitives: time series, counters, gauges, histograms."""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TimeSeries", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BOUNDARIES"]

#: Prometheus-style latency bucket upper bounds (seconds). 10.0 doubles as
#: the default schedule-latency SLO threshold, so the SLO engine can read
#: good/total straight off the cumulative bucket counts.
DEFAULT_LATENCY_BOUNDARIES: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


@dataclass
class TimeSeries:
    """An append-only (time, value) series with numpy views."""

    name: str = ""
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(f"time went backwards: {t} < {self.times[-1]}")
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    # -- summaries --------------------------------------------------------
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def max(self) -> float:
        return float(np.max(self.values)) if self.values else 0.0

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def window_mean(self, t0: float, t1: float) -> float:
        """Mean of samples in the half-open window ``[t0, t1)``.

        ``t1`` is exclusive so adjacent windows partition the samples: a
        sample recorded exactly at ``t1`` belongs to the next window,
        never to both. An empty window yields 0.0.
        """
        if t1 < t0:
            raise ValueError(f"window ends before it starts: [{t0}, {t1})")
        t, v = self.as_arrays()
        mask = (t >= t0) & (t < t1)
        return float(np.mean(v[mask])) if mask.any() else 0.0

    def resample(self, step: float) -> "TimeSeries":
        """Bucket-average onto a regular grid (for plotting/comparison).

        Buckets are the half-open intervals ``[start + i*step,
        start + (i+1)*step)`` anchored at the first sample. Bucket indices
        come from a direct floor division (not from float-accumulated
        edges), so a sample sitting exactly on an edge always lands in the
        bucket it opens, and the final partial bucket is averaged exactly
        like every full one instead of merging into its neighbour when
        ``end - start`` is a multiple of ``step``.
        """
        if step <= 0:
            raise ValueError("step must be > 0")
        out = TimeSeries(name=self.name)
        if not self.times:
            return out
        t, v = self.as_arrays()
        start = t[0]
        # The 1e-9 nudge snaps samples that float error left a hair below
        # an edge (e.g. (t-start)/step == 2.9999999999999996) up onto it.
        idx = np.floor((t - start) / step + 1e-9).astype(np.int64)
        for i in np.unique(idx):
            mask = idx == i
            out.record(float(start + i * step), float(v[mask].mean()))
        return out


class Histogram:
    """A streaming fixed-boundary histogram with Prometheus semantics.

    ``boundaries`` are inclusive upper bounds (``le``); an implicit +Inf
    bucket catches overflow, so ``bucket_counts`` has ``len(boundaries)+1``
    entries and cumulative counts reproduce the ``_bucket``/``_sum``/
    ``_count`` exposition exactly. On top of the bucketed view the
    histogram keeps exact per-window percentile summaries (window edges
    aligned to virtual time, ``[k*window, (k+1)*window)``) plus a capped
    reservoir of raw samples for exact whole-run p50/p95/p99 — enough to
    plot Fig 10-style latency CDFs without post-processing.

    Observation time must be monotonic (same instant allowed), matching
    :class:`TimeSeries`; values land purely by comparison, so identical
    observations always produce identical state — no wall clock, no
    randomness.
    """

    __slots__ = (
        "name", "boundaries", "bucket_counts", "sum", "count", "window",
        "windows", "samples_dropped", "_last_t", "_win_start", "_win_samples",
        "_samples", "_max_samples",
    )

    def __init__(
        self,
        name: str = "",
        boundaries: Sequence[float] = DEFAULT_LATENCY_BOUNDARIES,
        window: float = 10.0,
        max_samples: int = 100_000,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must be strictly increasing: {bounds}")
        if window <= 0:
            raise ValueError("window must be > 0")
        self.name = name
        self.boundaries = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.window = float(window)
        #: closed per-window summaries (dicts with start/end/count/percentiles).
        self.windows: List[Dict[str, float]] = []
        self.samples_dropped = 0
        self._last_t: Optional[float] = None
        self._win_start: Optional[float] = None
        self._win_samples: List[float] = []
        self._samples: List[float] = []
        self._max_samples = max_samples

    def observe(self, t: float, v: float) -> None:
        t, v = float(t), float(v)
        if self._last_t is not None and t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._last_t = t
        if self._win_start is None:
            self._win_start = math.floor(t / self.window) * self.window
        elif t >= self._win_start + self.window:
            self._close_window()
            self._win_start = math.floor(t / self.window) * self.window
        self.bucket_counts[bisect_left(self.boundaries, v)] += 1
        self.sum += v
        self.count += 1
        self._win_samples.append(v)
        if len(self._samples) < self._max_samples:
            self._samples.append(v)
        else:
            self.samples_dropped += 1

    def _close_window(self) -> None:
        if self._win_samples and self._win_start is not None:
            self.windows.append(
                _window_summary(
                    self._win_start, self._win_start + self.window, self._win_samples
                )
            )
        self._win_samples = []

    # -- views -------------------------------------------------------------
    def cumulative_le(self, bound: float) -> int:
        """Observations ``<= bound``; ``bound`` must be a bucket boundary."""
        try:
            idx = self.boundaries.index(float(bound))
        except ValueError:
            raise ValueError(
                f"{bound} is not a bucket boundary of {self.name or 'histogram'}: "
                f"{self.boundaries}"
            ) from None
        return sum(self.bucket_counts[: idx + 1])

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over the retained raw samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    def to_dict(self) -> Dict[str, object]:
        windows = list(self.windows)
        if self._win_samples and self._win_start is not None:
            # Include the still-open window so end-of-run snapshots never
            # silently drop the tail of the run.
            windows.append(
                _window_summary(
                    self._win_start, self._win_start + self.window, self._win_samples
                )
            )
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.sum,
            "count": self.count,
            "window": self.window,
            "windows": windows,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": max(self._samples) if self._samples else 0.0,
            "samples_dropped": self.samples_dropped,
        }


def _window_summary(start: float, end: float, samples: List[float]) -> Dict[str, float]:
    ordered = sorted(samples)
    n = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(max(0, math.ceil(q * n) - 1), n - 1)]

    return {
        "start": start,
        "end": end,
        "count": n,
        "sum": math.fsum(ordered),
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "max": ordered[-1],
    }


class MetricsRegistry:
    """A named bag of counters, time series, and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name=name)
        return self.series[name]

    def record(self, name: str, t: float, v: float) -> None:
        self.timeseries(name).record(t, v)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Sequence[float]] = None,
        window: Optional[float] = None,
    ) -> Histogram:
        """Get-or-create; boundaries only apply on first creation and must
        match on later lookups that restate them."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(
                name=name,
                boundaries=boundaries or DEFAULT_LATENCY_BOUNDARIES,
                window=window if window is not None else 10.0,
            )
            self.histograms[name] = hist
        elif boundaries is not None and tuple(float(b) for b in boundaries) != hist.boundaries:
            raise ValueError(f"histogram {name!r} already exists with different boundaries")
        return hist

    def observe(
        self,
        name: str,
        t: float,
        v: float,
        boundaries: Optional[Sequence[float]] = None,
        window: Optional[float] = None,
    ) -> None:
        self.histogram(name, boundaries=boundaries, window=window).observe(t, v)

"""Plain-text reporting: the tables and series the bench harness prints.

Every benchmark regenerates its paper table/figure as rows/series printed
through these helpers, so `pytest benchmarks/ --benchmark-only -s` shows
the reproduced numbers next to the timing results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from .collector import TimeSeries

__all__ = ["ascii_table", "format_series", "format_percent", "banner"]

Cell = Union[str, float, int, None]


def _fmt(cell: Cell, precision: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table."""
    str_rows = [[_fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def format_series(
    series: TimeSeries, precision: int = 2, max_points: int = 20
) -> str:
    """Render a time series as aligned `t: v` pairs, downsampled to at most
    *max_points* evenly spaced samples."""
    n = len(series)
    if n == 0:
        return f"{series.name or 'series'}: (empty)"
    idx = range(n) if n <= max_points else [int(i * n / max_points) for i in range(max_points)]
    pairs = [
        f"t={series.times[i]:.0f}s: {series.values[i]:.{precision}f}" for i in idx
    ]
    head = f"{series.name or 'series'} ({n} samples)"
    return head + "\n  " + "\n  ".join(pairs)


def format_percent(value: float, precision: int = 1) -> str:
    return f"{100.0 * value:.{precision}f}%"


def banner(text: str, width: int = 72) -> str:
    """Section banner for bench output."""
    pad = max(0, width - len(text) - 2)
    left = pad // 2
    return f"{'=' * left} {text} {'=' * (pad - left)}"

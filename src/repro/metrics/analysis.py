"""Workload-level performance analysis (the paper's §5.1 metrics).

"The main performance matrix of our evaluation is the system throughput
and GPU utilization. The system throughput is the number of completed jobs
per time interval. Since the total jobs is fixed in a workload, the job
throughput is also inversely proportional to the overall execution time
(i.e., makespan) of a workload."
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..workloads.jobs import JobStats
from .collector import TimeSeries

__all__ = [
    "makespan",
    "throughput_jobs_per_minute",
    "completion_series",
    "mean_job_duration",
    "slowdown",
]


def _finished(stats: Iterable[JobStats]) -> List[JobStats]:
    return [s for s in stats if s.finished_at is not None and not s.failed]


def makespan(stats: Sequence[JobStats]) -> float:
    """Time from the first submission to the last completion."""
    done = _finished(stats)
    if not done:
        return 0.0
    start = min(s.submitted_at if s.submitted_at is not None else s.started_at for s in done)
    end = max(s.finished_at for s in done)
    return end - start


def throughput_jobs_per_minute(stats: Sequence[JobStats]) -> float:
    """Completed jobs per minute over the workload's makespan."""
    done = _finished(stats)
    span = makespan(stats)
    if span <= 0:
        return 0.0
    return 60.0 * len(done) / span


def completion_series(stats: Sequence[JobStats], step: float = 60.0) -> TimeSeries:
    """Completions per *step*-second interval over time."""
    done = sorted(s.finished_at for s in _finished(stats))
    out = TimeSeries(name="completions")
    if not done:
        return out
    edges = np.arange(0.0, done[-1] + step, step)
    counts, _ = np.histogram(done, bins=edges)
    for t, c in zip(edges[:-1], counts):
        out.record(float(t), float(c))
    return out


def mean_job_duration(stats: Sequence[JobStats]) -> float:
    done = [s.duration for s in _finished(stats) if s.duration is not None]
    return float(np.mean(done)) if done else 0.0


def slowdown(stats: JobStats, standalone_duration: float) -> Optional[float]:
    """Execution time relative to the standalone run (Figure 12 metric)."""
    if stats.duration is None or standalone_duration <= 0:
        return None
    return stats.duration / standalone_duration

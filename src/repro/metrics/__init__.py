"""Metrics: collection, analysis and plain-text reporting."""

from .analysis import (
    completion_series,
    makespan,
    mean_job_duration,
    slowdown,
    throughput_jobs_per_minute,
)
from .collector import DEFAULT_LATENCY_BOUNDARIES, Histogram, MetricsRegistry, TimeSeries
from .export import results_to_json, rows_to_csv, series_to_csv, write_text
from .reporting import ascii_table, banner, format_percent, format_series

__all__ = [
    "TimeSeries",
    "Histogram",
    "DEFAULT_LATENCY_BOUNDARIES",
    "MetricsRegistry",
    "makespan",
    "throughput_jobs_per_minute",
    "completion_series",
    "mean_job_duration",
    "slowdown",
    "ascii_table",
    "format_series",
    "format_percent",
    "banner",
    "rows_to_csv",
    "series_to_csv",
    "results_to_json",
    "write_text",
]

"""Generation-fenced global records: the federation's source of truth.

Every federated SharePod is represented by one :class:`FederationRecord`
in the federation's *own* apiserver. The record carries two pieces of
fencing state:

* ``spec.cluster`` — which member currently owns the placement;
* ``spec.generation`` — bumped by *every* (re)placement, never reused.

A placement is only real if a member-cluster SharePod copy exists whose
``federation.kubeshare/generation`` annotation equals the record's current
generation. Rescheduling away from a Dead cluster therefore works like a
fencing token handoff: the placer CAS-advances the generation *first*
(:meth:`GlobalRegistry.advance` — optimistic concurrency on the record's
resourceVersion), then submits the new copy. A partition healing
mid-reschedule cannot double-place: the healed cluster's old copy carries
a stale generation, and the recovery reconciler deletes it on sight
(:meth:`repro.federation.placer.GlobalPlacer._reconcile_recovered`).

This module and :mod:`repro.federation.rpc` are the only sanctioned write
paths of the federation tier — lint rule RPR010 flags apiserver writes
anywhere else under ``repro.federation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cluster.apiserver import APIServer, Conflict, NotFound
from ..cluster.objects import ObjectMeta

__all__ = [
    "ANN_RECORD",
    "ANN_GENERATION",
    "StaleGeneration",
    "RecordSpec",
    "RecordStatus",
    "FederationRecord",
    "GlobalRegistry",
]

#: member-side SharePod annotation: name of the owning federation record.
ANN_RECORD = "federation.kubeshare/record"
#: member-side SharePod annotation: the record generation this copy carries.
ANN_GENERATION = "federation.kubeshare/generation"


class StaleGeneration(Exception):
    """A fenced federation write lost the generation race.

    Retrying cannot help — some other actor already advanced the record
    (a concurrent reschedule, or the record moved on while this side was
    partitioned). The caller must drop its intent.
    """


@dataclass
class RecordSpec:
    """Where a federated SharePod lives and how to rebuild it."""

    #: owning member cluster, or ``None`` before the first placement.
    cluster: Optional[str] = None
    #: fencing token: bumped by every placement, never reused.
    generation: int = 0
    #: ``make_sharepod`` kwargs to (re)build a copy on any member. A
    #: ``workload_factory`` entry is called per copy so rescheduled runs
    #: get a fresh workload instance.
    template: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RecordStatus:
    phase: str = "Pending"  # Pending | Placed | Completed | Failed
    message: str = ""


@dataclass
class FederationRecord:
    """One federated SharePod, stored in the federation apiserver."""

    metadata: ObjectMeta
    spec: RecordSpec = field(default_factory=RecordSpec)
    status: RecordStatus = field(default_factory=RecordStatus)

    kind = "FederationRecord"

    @property
    def name(self) -> str:
        return self.metadata.name

    def clone(self) -> "FederationRecord":
        return FederationRecord(
            metadata=self.metadata.clone(),
            spec=RecordSpec(
                cluster=self.spec.cluster,
                generation=self.spec.generation,
                template=dict(self.spec.template),
            ),
            status=RecordStatus(
                phase=self.status.phase, message=self.status.message
            ),
        )


class GlobalRegistry:
    """CAS-fenced CRUD over :class:`FederationRecord` objects.

    All mutations go through the federation apiserver's optimistic
    concurrency, so two racing placers (or a placer racing a recovery
    reconciler) resolve deterministically — one CAS wins, the loser sees
    :class:`StaleGeneration`.
    """

    TERMINAL = ("Completed", "Failed")

    def __init__(self, api: APIServer) -> None:
        self.api = api
        api.register_crd("FederationRecord")

    # -- reads -------------------------------------------------------------
    def get(self, name: str, namespace: str = "default") -> Optional[FederationRecord]:
        return self.api.get("FederationRecord", name, namespace)

    def list(self) -> List[FederationRecord]:
        return self.api.list("FederationRecord")

    def assigned_to(self, cluster: str) -> List[FederationRecord]:
        """Live records currently placed on *cluster*, sorted by key."""
        return sorted(
            (
                r
                for r in self.list()
                if r.spec.cluster == cluster and r.status.phase not in self.TERMINAL
            ),
            key=lambda r: r.metadata.key,
        )

    # -- writes (the sanctioned path) --------------------------------------
    def create(
        self, name: str, template: Dict[str, Any], namespace: str = "default"
    ) -> FederationRecord:
        record = FederationRecord(
            metadata=ObjectMeta(name=name, namespace=namespace),
            spec=RecordSpec(cluster=None, generation=0, template=dict(template)),
        )
        return self.api.create(record)

    def advance(
        self,
        name: str,
        new_cluster: str,
        expect_generation: int,
        namespace: str = "default",
    ) -> FederationRecord:
        """CAS-bump the record's generation and move it to *new_cluster*.

        The generation fence: callers pass the generation they *observed*;
        if the record moved on meanwhile (a concurrent reschedule, a
        healed partition's reconciler) the CAS or the explicit check fails
        and :class:`StaleGeneration` is raised — the caller's placement
        intent is dead and must not be acted on.
        """
        record = self.get(name, namespace)
        if record is None:
            raise StaleGeneration(f"record {namespace}/{name} is gone")
        if record.spec.generation != expect_generation:
            raise StaleGeneration(
                f"record {namespace}/{name} is at generation "
                f"{record.spec.generation}, caller expected {expect_generation}"
            )
        if record.status.phase in self.TERMINAL:
            raise StaleGeneration(
                f"record {namespace}/{name} is terminal ({record.status.phase})"
            )
        record.spec.generation += 1
        record.spec.cluster = new_cluster
        record.status.phase = "Placed"
        try:
            return self.api.update(record)
        except (Conflict, NotFound) as err:
            raise StaleGeneration(str(err)) from None

    def complete(
        self,
        name: str,
        generation: int,
        phase: str,
        message: str = "",
        namespace: str = "default",
    ) -> bool:
        """Mark the record terminal — only if *generation* is still current.

        A completion report from a stale copy (the fenced-off side of a
        healed partition) is ignored: its generation lost the race, so its
        outcome is not the record's outcome.
        """
        done = {"ok": False}

        def mutate(record: FederationRecord) -> None:
            if (
                record.spec.generation == generation
                and record.status.phase not in self.TERMINAL
            ):
                record.status.phase = phase
                record.status.message = message
                done["ok"] = True

        try:
            self.api.patch("FederationRecord", name, mutate, namespace)
        except NotFound:
            return False
        return done["ok"]

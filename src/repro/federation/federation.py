"""The federation tier: N autonomous KubeShare clusters, one global placer.

A :class:`Federation` owns its *own* control plane — an
:class:`~repro.cluster.etcd.Etcd` + :class:`~repro.cluster.apiserver.APIServer`
pair holding :class:`~repro.federation.records.FederationRecord` objects
and member heartbeat leases — plus N :class:`MemberCluster` wrappers, each
a full :class:`~repro.cluster.cluster.Cluster` with its own apiserver,
etcd, and leader-elected :class:`~repro.core.ha.HAKubeShare` control
plane, all sharing one simulation :class:`~repro.sim.Environment`.

Whole-cluster failure semantics (the chaos engine's new fault kinds):

* :meth:`MemberCluster.outage` (``CLUSTER_OUTAGE``) — the member's
  apiserver and every node go dark. Its SharePods die with the nodes; the
  prober declares it Dead and the placer evacuates.
* :meth:`MemberCluster.partition` (``FEDERATION_PARTITION``) — only the
  federation↔member *link* breaks. The member keeps scheduling and
  running its local SharePods (static stability); the federation sees
  Suspect, then Dead if the partition outlives ``dead_after``, and the
  generation fence guarantees a heal mid-reschedule cannot double-place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..cluster.apiserver import APIServer, ServiceUnavailable
from ..cluster.cluster import Cluster, ClusterConfig
from ..cluster.etcd import Etcd
from ..cluster.objects import PodPhase
from ..core.ha import HAKubeShare
from ..obs import runtime as obs
from ..sim import Environment
from .health import ClusterHealthProber
from .link import ClusterLink
from .placer import GlobalPlacer
from .records import ANN_GENERATION, ANN_RECORD, GlobalRegistry
from .rpc import FederationRPC

__all__ = ["FederationConfig", "MemberCluster", "Federation"]

_TERMINAL = (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass
class FederationConfig:
    """Knobs for :class:`Federation` construction."""

    #: member cluster names, in placement tiebreak order.
    members: Tuple[str, ...] = ("alpha", "beta", "gamma")
    nodes_per_cluster: int = 2
    gpus_per_node: int = 2
    #: HA replicas per member control-plane controller.
    replicas: int = 2
    #: federation→member link latency, seconds.
    link_latency: float = 0.02
    #: health prober parameters (see ClusterHealthProber).
    probe_interval: float = 0.5
    probe_timeout: float = 0.25
    suspect_after: int = 2
    dead_after: float = 8.0
    #: placer requeue delay when no cluster fits.
    defer_delay: float = 0.5
    #: how often terminal member copies are folded back into records.
    sync_interval: float = 1.0
    #: extra ClusterConfig overrides applied to every member.
    cluster_overrides: Dict[str, Any] = field(default_factory=dict)


class MemberCluster:
    """One autonomous KubeShare cluster enrolled in a federation."""

    def __init__(
        self,
        env: Environment,
        name: str,
        config: FederationConfig,
    ) -> None:
        self.env = env
        self.name = name
        self.cluster = Cluster(
            env,
            ClusterConfig(
                nodes=config.nodes_per_cluster,
                gpus_per_node=config.gpus_per_node,
                node_prefix=f"{name}-",
                **config.cluster_overrides,
            ),
        )
        self.kubeshare = HAKubeShare(self.cluster, replicas=config.replicas)
        self.link = ClusterLink(env, name, latency=config.link_latency)
        self.outages_total = 0

    @property
    def api(self) -> APIServer:
        return self.cluster.api

    def start(self) -> "MemberCluster":
        self.cluster.start()
        self.kubeshare.start()
        return self

    # -- failure injection -------------------------------------------------
    def outage(self, duration: Optional[float] = None) -> None:
        """The whole cluster goes dark: apiserver down, every node crashed.

        With ``duration=None`` the outage is permanent (the DR capstone's
        "cluster killed mid-burst"); otherwise nodes power back on and the
        apiserver returns after *duration* seconds.
        """
        self.outages_total += 1
        span = math.inf if duration is None else duration
        self.api.set_outage(span)
        for node in self.cluster.nodes:
            node.crash()
        if duration is not None:
            self.env.process(
                self._recover_after(duration), name=f"cluster-recover:{self.name}"
            )

    def _recover_after(self, duration: float) -> Generator:
        yield self.env.timeout(duration)
        for node in self.cluster.nodes:
            self.env.process(
                node.restart(), name=f"cluster-restart:{self.name}/{node.name}"
            )

    def partition(self, duration: float) -> None:
        """Break only the federation↔member link (static stability case)."""
        self.link.partition(duration)


class Federation:
    """The global control tier over N member clusters."""

    def __init__(
        self,
        env: Optional[Environment] = None,
        config: Optional[FederationConfig] = None,
    ) -> None:
        self.env = env or Environment()
        self.config = config or FederationConfig()
        self.etcd = Etcd(self.env)
        self.api = APIServer(self.env, self.etcd)
        self.registry = GlobalRegistry(self.api)
        self.members: Dict[str, MemberCluster] = {
            name: MemberCluster(self.env, name, self.config)
            for name in self.config.members
        }
        self.rpc = FederationRPC(self.env, self.registry)
        self.prober = ClusterHealthProber(
            self,
            probe_interval=self.config.probe_interval,
            probe_timeout=self.config.probe_timeout,
            suspect_after=self.config.suspect_after,
            dead_after=self.config.dead_after,
        )
        self.placer = GlobalPlacer(self, defer_delay=self.config.defer_delay)
        self.prober.on_dead = self.placer.on_cluster_dead
        self.prober.on_recovered = self.placer.on_cluster_recovered
        self._sync_proc = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Federation":
        if not self._started:
            for name in sorted(self.members):
                self.members[name].start()
            self.prober.start()
            self.placer.start()
            self._sync_proc = self.env.process(
                self._sync_loop(), name="federation-sync"
            )
            self._started = True
        return self

    def stop(self) -> None:
        self.prober.stop()
        self.placer.stop()
        if self._sync_proc is not None and self._sync_proc.is_alive:
            self._sync_proc.kill()
        self._sync_proc = None
        for name in sorted(self.members):
            self.members[name].kubeshare.stop()

    # -- submission --------------------------------------------------------
    def submit(self, name: str, namespace: str = "default", **template: Any):
        """Register a federated SharePod and queue it for global placement.

        *template* is any set of ``make_sharepod`` kwargs (``gpu_request``,
        ``gpu_mem``, …); pass ``workload_factory`` (a zero-arg callable
        returning a workload) instead of ``workload`` so rescheduled
        copies each get a fresh instance.
        """
        record = self.registry.create(name, template, namespace)
        self.placer.queue.add(name)
        return record

    # -- record/status sync ------------------------------------------------
    def _sync_loop(self) -> Generator:
        """Fold terminal member copies back into their federation records.

        Reads go through the RPC layer (latency + partition behavior); a
        currently unreachable member is simply skipped — its copies are
        folded in after it heals, or its records evacuated if it dies.
        """
        from .link import ClusterUnreachable  # local: avoid shadowing

        while True:
            yield self.env.timeout(self.config.sync_interval)
            for name in sorted(self.members):
                member = self.members[name]
                try:
                    sharepods = yield from self.rpc.call(
                        member.link,
                        member.kubeshare.list,
                        key=f"sync:{name}",
                        retries=1,
                    )
                except ClusterUnreachable:
                    continue
                for sp in sorted(sharepods, key=lambda s: s.metadata.key):
                    record_name = sp.metadata.annotations.get(ANN_RECORD)
                    if record_name is None or sp.status.phase not in _TERMINAL:
                        continue
                    generation = int(
                        sp.metadata.annotations.get(ANN_GENERATION, "0")
                    )
                    phase = (
                        "Completed"
                        if sp.status.phase is PodPhase.SUCCEEDED
                        else "Failed"
                    )
                    if self.registry.complete(
                        record_name,
                        generation,
                        phase,
                        sp.status.message or "",
                        sp.metadata.namespace,
                    ):
                        obs.federation_decision(
                            "complete",
                            f"{sp.metadata.namespace}/{record_name}",
                            f"copy {sp.metadata.name} on {name} reached {phase}",
                        )

    # -- views -------------------------------------------------------------
    def live_copies(self) -> Dict[str, List[Tuple[str, str, int]]]:
        """record name → [(cluster, copy name, generation)] of live copies.

        Scans every *reachable* member apiserver directly; benchmark and
        test assertions use this to prove the no-double-placement
        invariant. Dark clusters are skipped (their copies died with their
        nodes).
        """
        out: Dict[str, List[Tuple[str, str, int]]] = {}
        for name in sorted(self.members):
            member = self.members[name]
            try:
                sharepods = member.api.list("SharePod")
            except ServiceUnavailable:
                continue
            for sp in sharepods:
                record_name = sp.metadata.annotations.get(ANN_RECORD)
                if record_name is None or sp.status.phase in _TERMINAL:
                    continue
                out.setdefault(record_name, []).append(
                    (
                        name,
                        sp.metadata.name,
                        int(sp.metadata.annotations.get(ANN_GENERATION, "0")),
                    )
                )
        return out

    def completed_records(self) -> List[str]:
        """Names of records that reached ``Completed``, sorted."""
        return sorted(
            r.metadata.name
            for r in self.registry.list()
            if r.status.phase == "Completed"
        )
